// Request and result types of the spanning-tree query service.
#pragma once

#include <cstdint>
#include <string>

#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "core/validate.hpp"
#include "graph/types.hpp"

namespace smpst::service {

struct SpanningTreeRequest {
  /// Registry key of the graph to query.
  std::string graph;

  /// Name from core/algorithms.hpp ("bader-cong", "bfs", "sv", ...).
  std::string algorithm = "bader-cong";

  /// When not kInvalidVertex, the returned tree containing this vertex is
  /// re-rooted at it (the "rooted spanning tree from v" query shape).
  VertexId root = kInvalidVertex;

  std::uint64_t seed = 0x5eed;

  /// Deadline measured from submission, covering queue wait plus execution.
  /// Negative = none. 0 = already expired (useful to probe the timeout path).
  std::int64_t timeout_ms = -1;

  /// Run core/validate on the result; failures surface as kError.
  bool validate = false;

  /// Collect TraversalStats (bader-cong only).
  bool want_stats = false;
};

enum class QueryStatus {
  kOk,
  kRejected,         ///< queue full or executor shut down; never executed
  kTimedOut,         ///< deadline expired before or during execution
  kNotFound,         ///< graph name not in the registry
  kInvalidArgument,  ///< unknown algorithm, root out of range, ...
  kError,            ///< validation-on-request failed or unclassified error
  kFailed,           ///< execution threw; retries and degradation exhausted
  kInvalid,          ///< paranoid validation rejected the final result
};

[[nodiscard]] constexpr const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kTimedOut: return "timed-out";
    case QueryStatus::kNotFound: return "not-found";
    case QueryStatus::kInvalidArgument: return "invalid-argument";
    case QueryStatus::kError: return "error";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kInvalid: return "invalid";
  }
  return "unknown";
}

struct QueryResult {
  QueryStatus status = QueryStatus::kError;
  std::string error;  ///< empty unless the status carries a message

  std::string graph;
  std::string algorithm;

  /// Empty unless the traversal ran to completion. A kTimedOut result may
  /// still carry a complete forest: algorithms without a cooperative
  /// cancellation hook finish late, and the deadline verdict is applied
  /// afterwards.
  SpanningForest forest;
  VertexId num_trees = 0;

  bool validated = false;        ///< validate was requested and ran
  ValidationReport validation;   ///< meaningful when validated

  TraversalStats stats;  ///< filled when want_stats and algorithm supports it

  /// Echo of the request's want_stats flag. Renderers gate stats emission on
  /// this, not on whether `stats` happens to hold data (a degraded or retried
  /// run can leave per-thread entries behind that the client never asked for).
  bool stats_requested = false;

  /// Execution attempts consumed (1 = first try succeeded; >1 = retried).
  std::uint32_t attempts = 0;

  /// The result came from the sequential degradation fallback, not the
  /// requested algorithm (every retry of the requested algorithm threw).
  bool degraded = false;

  /// The executor's watchdog hard-cancelled this query for overrunning its
  /// deadline by more than the configured factor.
  bool watchdog_cancelled = false;

  double queue_ms = 0.0;  ///< submission -> dequeue by a worker
  double exec_ms = 0.0;   ///< algorithm run time (all attempts)
  double total_ms = 0.0;  ///< submission -> result ready

  [[nodiscard]] bool ok() const noexcept { return status == QueryStatus::kOk; }
};

}  // namespace smpst::service
