#include "service/codec.hpp"

#include <cstring>

namespace smpst::service {

void LineCodec::feed(const char* data, std::size_t len) {
  if (len == 0) return;
  if (discarding_) {
    // Bytes of an oversized line's tail never enter the buffer: scan the
    // incoming chunk for the resynchronizing newline directly.
    const char* nl = static_cast<const char*>(std::memchr(data, '\n', len));
    if (nl == nullptr) {
      oversized_bytes_ += len;
      return;
    }
    const std::size_t consumed = static_cast<std::size_t>(nl - data) + 1;
    oversized_bytes_ += consumed - 1;
    discarding_ = false;
    data += consumed;
    len -= consumed;
    if (len == 0) return;
  }
  buffer_.append(data, len);
}

LineCodec::Event LineCodec::next(std::string& out) {
  const std::size_t nl = buffer_.find('\n', scan_from_);
  if (nl == std::string::npos) {
    scan_from_ = buffer_.size();
    if (!discarding_ && buffer_.size() > max_line_bytes_) {
      // Cap crossed with no newline in sight: drop what we have, discard the
      // rest of this line as it arrives, tell the caller once.
      oversized_bytes_ = buffer_.size();
      buffer_.clear();
      scan_from_ = 0;
      discarding_ = true;
      out.clear();
      return Event::kOversized;
    }
    return Event::kNone;
  }
  if (nl > max_line_bytes_) {
    // The whole oversized line (newline included) arrived in one buffered
    // run; consume it and report, no discard phase needed.
    oversized_bytes_ = nl;
    buffer_.erase(0, nl + 1);
    scan_from_ = 0;
    out.clear();
    return Event::kOversized;
  }
  out.assign(buffer_, 0, nl);
  if (!out.empty() && out.back() == '\r') out.pop_back();
  buffer_.erase(0, nl + 1);
  scan_from_ = 0;
  return Event::kLine;
}

std::string LineCodec::take_partial() {
  if (discarding_) {
    // The stream ended inside an oversized line; its tail is gone by design.
    discarding_ = false;
    return {};
  }
  std::string out = std::move(buffer_);
  buffer_.clear();
  scan_from_ = 0;
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return out;
}

}  // namespace smpst::service
