#include "service/executor.hpp"

#include <algorithm>
#include <utility>

#include "core/algorithms.hpp"
#include "core/cancellation.hpp"
#include "sched/thread_pool.hpp"
#include "support/cpu.hpp"
#include "support/timer.hpp"

namespace smpst::service {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

QueryExecutor::QueryExecutor(GraphRegistry& registry, ExecutorOptions opts)
    : registry_(registry),
      queue_(std::max<std::size_t>(1, opts.queue_capacity)),
      paused_(opts.start_paused) {
  const std::size_t workers = std::max<std::size_t>(1, opts.num_workers);
  threads_per_query_ =
      opts.threads_per_query != 0
          ? opts.threads_per_query
          : std::max<std::size_t>(1, hardware_threads() / workers);
  pools_.reserve(workers);
  for (std::size_t s = 0; s < workers; ++s) {
    pools_.push_back(std::make_unique<ThreadPool>(threads_per_query_));
  }
  workers_.reserve(workers);
  for (std::size_t s = 0; s < workers; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

QueryExecutor::~QueryExecutor() { shutdown(); }

std::future<QueryResult> QueryExecutor::submit(SpanningTreeRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Item item{std::move(req), {}, std::chrono::steady_clock::now()};
  auto future = item.promise.get_future();
  if (!queue_.try_push(std::move(item))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    QueryResult r;
    r.status = QueryStatus::kRejected;
    r.error = "request queue full";
    r.graph = item.req.graph;
    r.algorithm = item.req.algorithm;
    item.promise.set_value(std::move(r));
    return future;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::vector<std::future<QueryResult>> QueryExecutor::submit_batch(
    std::vector<SpanningTreeRequest> reqs) {
  submitted_.fetch_add(reqs.size(), std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  std::vector<Item> items;
  std::vector<std::future<QueryResult>> futures;
  items.reserve(reqs.size());
  futures.reserve(reqs.size());
  for (auto& req : reqs) {
    items.push_back(Item{std::move(req), {}, now});
    futures.push_back(items.back().promise.get_future());
  }
  if (!queue_.try_push_all(items)) {
    rejected_.fetch_add(items.size(), std::memory_order_relaxed);
    for (auto& item : items) {
      QueryResult r;
      r.status = QueryStatus::kRejected;
      r.error = "request queue cannot take the whole batch";
      r.graph = item.req.graph;
      r.algorithm = item.req.algorithm;
      item.promise.set_value(std::move(r));
    }
    return futures;
  }
  accepted_.fetch_add(futures.size(), std::memory_order_relaxed);
  return futures;
}

void QueryExecutor::resume() {
  {
    std::lock_guard<std::mutex> lk(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void QueryExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  resume();  // a paused worker must still drain and exit
  for (auto& w : workers_) w.join();
}

ServiceStats QueryExecutor::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.not_found = not_found_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.latency = latency_.snapshot();
  s.registry = registry_.stats();
  return s;
}

void QueryExecutor::wait_if_paused() {
  std::unique_lock<std::mutex> lk(pause_mutex_);
  pause_cv_.wait(lk, [&] { return !paused_; });
}

void QueryExecutor::worker_loop(std::size_t slot) {
  for (;;) {
    wait_if_paused();
    Item item;
    if (!queue_.pop(item)) return;
    QueryResult result = execute(item, *pools_[slot]);
    switch (result.status) {
      case QueryStatus::kOk:
        served_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryStatus::kTimedOut:
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryStatus::kNotFound:
        not_found_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    latency_.record_ms(result.total_ms);
    item.promise.set_value(std::move(result));
  }
}

QueryResult QueryExecutor::execute(Item& item, ThreadPool& pool) {
  const SpanningTreeRequest& req = item.req;
  QueryResult r;
  r.graph = req.graph;
  r.algorithm = req.algorithm;
  r.queue_ms = ms_between(item.enqueued, std::chrono::steady_clock::now());

  const bool has_deadline = req.timeout_ms >= 0;
  const auto deadline =
      item.enqueued + std::chrono::milliseconds(has_deadline ? req.timeout_ms
                                                             : 0);
  auto finish = [&](QueryStatus status, std::string error) -> QueryResult& {
    r.status = status;
    r.error = std::move(error);
    r.total_ms = ms_between(item.enqueued, std::chrono::steady_clock::now());
    return r;
  };

  if (!is_algorithm(req.algorithm)) {
    return finish(QueryStatus::kInvalidArgument,
                  "unknown algorithm: " + req.algorithm);
  }
  const std::shared_ptr<const Graph> graph = registry_.get(req.graph);
  if (graph == nullptr) {
    return finish(QueryStatus::kNotFound,
                  "graph not in registry: " + req.graph);
  }
  if (req.root != kInvalidVertex && req.root >= graph->num_vertices()) {
    return finish(QueryStatus::kInvalidArgument, "root vertex out of range");
  }
  // Pre-dispatch admission: an already-expired deadline (notably 0 ms) never
  // starts the traversal, so the timed-out outcome is deterministic.
  CancelToken token;
  if (has_deadline) {
    token.set_deadline(deadline);
    if (std::chrono::steady_clock::now() >= deadline) {
      return finish(QueryStatus::kTimedOut, "deadline expired in queue");
    }
  }

  try {
    WallTimer exec_timer;
    RunOptions run;
    run.seed = req.seed;
    run.cancel = &token;
    run.stats = req.want_stats ? &r.stats : nullptr;
    r.forest = run_algorithm(req.algorithm, *graph, pool, run);
    r.exec_ms = exec_timer.elapsed_millis();
  } catch (const CancelledError&) {
    return finish(QueryStatus::kTimedOut, "deadline expired mid-traversal");
  } catch (const std::exception& e) {
    return finish(QueryStatus::kError, e.what());
  }

  if (req.root != kInvalidVertex) reroot(r.forest, req.root);
  if (req.validate) {
    r.validated = true;
    r.validation = validate_spanning_forest(*graph, r.forest);
    if (!r.validation.ok) {
      return finish(QueryStatus::kError,
                    "validation failed: " + r.validation.error);
    }
  }
  r.num_trees = r.forest.num_trees();
  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    // Completed late (the algorithm may lack a cancellation hook); the forest
    // is kept but the latency contract was missed.
    return finish(QueryStatus::kTimedOut, "completed after deadline");
  }
  return finish(QueryStatus::kOk, {});
}

}  // namespace smpst::service
