#include "service/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/algorithms.hpp"
#include "core/cancellation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "storage/blocked_graph.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"
#include "support/timer.hpp"

namespace smpst::service {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Internal marker: the algorithm completed but produced a forest that fails
/// validation. Retried like a thrown attempt; surfaces as kInvalid when every
/// attempt (including degradation) produces invalid results.
class InvalidResultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

ExecutorOptions sanitized(ExecutorOptions opts) {
  opts.num_workers = std::max<std::size_t>(1, opts.num_workers);
  opts.queue_capacity = std::max<std::size_t>(1, opts.queue_capacity);
  opts.watchdog_poll_ms = std::max<std::size_t>(1, opts.watchdog_poll_ms);
  return opts;
}

bool is_sequential(const std::string& algorithm) {
  return algorithm == "bfs" || algorithm == "dfs";
}

}  // namespace

/// Publishes the in-flight query's CancelToken and hard deadline to the
/// slot's watch entry so the watchdog thread can hard-cancel an overrun; the
/// destructor withdraws it before the token leaves scope.
class QueryExecutor::WatchGuard {
 public:
  WatchGuard(QueryExecutor& executor, std::size_t slot, CancelToken& token,
             bool has_deadline, std::chrono::steady_clock::time_point enqueued,
             std::int64_t timeout_ms)
      : watch_(*executor.watches_[slot]) {
    if (!has_deadline || executor.opts_.watchdog_factor <= 1.0) return;
    const auto budget = std::chrono::duration<double, std::milli>(
        static_cast<double>(timeout_ms) * executor.opts_.watchdog_factor);
    LockGuard<Mutex> lk(watch_.mutex);
    watch_.token = &token;
    watch_.hard_deadline =
        enqueued +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            budget);
    watch_.cancelled = false;
    active_ = true;
  }

  ~WatchGuard() {
    if (!active_) return;
    LockGuard<Mutex> lk(watch_.mutex);
    watch_.token = nullptr;
  }

  WatchGuard(const WatchGuard&) = delete;
  WatchGuard& operator=(const WatchGuard&) = delete;

  [[nodiscard]] bool fired() const {
    LockGuard<Mutex> lk(watch_.mutex);
    return watch_.cancelled;
  }

 private:
  SlotWatch& watch_;
  bool active_ = false;
};

QueryExecutor::QueryExecutor(GraphRegistry& registry, ExecutorOptions opts)
    : registry_(registry),
      opts_(sanitized(opts)),
      queue_(opts_.queue_capacity),
      paused_(opts_.start_paused) {
  const std::size_t workers = opts_.num_workers;
  threads_per_query_ =
      opts_.threads_per_query != 0
          ? opts_.threads_per_query
          : std::max<std::size_t>(1, hardware_threads() / workers);
  pools_.reserve(workers);
  watches_.reserve(workers);
  for (std::size_t s = 0; s < workers; ++s) {
    pools_.push_back(std::make_unique<ThreadPool>(threads_per_query_));
    watches_.push_back(std::make_unique<SlotWatch>());
  }
  workers_.reserve(workers);
  for (std::size_t s = 0; s < workers; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
  if (opts_.watchdog_factor > 1.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

QueryExecutor::~QueryExecutor() { shutdown(); }

void QueryExecutor::reject_inline(Item& item, std::string reason) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  QueryResult r;
  r.status = QueryStatus::kRejected;
  r.error = std::move(reason);
  r.graph = item.req.graph;
  r.algorithm = item.req.algorithm;
  if (item.done) {
    try {
      item.done(r);
    } catch (...) {
      // A throwing completion must not break the submitter.
    }
  }
  item.promise.set_value(std::move(r));
}

/// One accepted request fully completed (promise + completion delivered).
void QueryExecutor::finish_pending() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Empty critical section orders the notify after any drain() caller has
    // entered its wait; without it the last decrement could slip between the
    // waiter's predicate check and its sleep.
    { LockGuard<Mutex> lk(drain_mutex_); }
    drain_cv_.notify_all();
  }
}

std::future<QueryResult> QueryExecutor::submit(SpanningTreeRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Item item{std::move(req), {}, std::chrono::steady_clock::now(), {}, {}};
  auto future = item.promise.get_future();
  bool pushed = false;
  std::string reject_reason = "request queue full";
  // submit() must never throw and must always satisfy the future, even when
  // the queue itself faults (failpoints, allocation failure).
  pending_.fetch_add(1, std::memory_order_acq_rel);
  try {
    pushed = queue_.try_push(std::move(item));
  } catch (const std::exception& e) {
    reject_reason = std::string("admission failure: ") + e.what();
  }
  if (!pushed) {
    reject_inline(item, std::move(reject_reason));
    finish_pending();
  } else {
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

void QueryExecutor::submit(SpanningTreeRequest req, Completion done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Item item{std::move(req), {}, std::chrono::steady_clock::now(),
            std::move(done), {}};
  bool pushed = false;
  std::string reject_reason = "request queue full";
  pending_.fetch_add(1, std::memory_order_acq_rel);
  try {
    pushed = queue_.try_push(std::move(item));
  } catch (const std::exception& e) {
    reject_reason = std::string("admission failure: ") + e.what();
  }
  if (!pushed) {
    reject_inline(item, std::move(reject_reason));
    finish_pending();
  } else {
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::future<QueryResult>> QueryExecutor::submit_batch(
    std::vector<SpanningTreeRequest> reqs) {
  submitted_.fetch_add(reqs.size(), std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  std::vector<Item> items;
  std::vector<std::future<QueryResult>> futures;
  items.reserve(reqs.size());
  futures.reserve(reqs.size());
  for (auto& req : reqs) {
    items.push_back(Item{std::move(req), {}, now, {}, {}});
    futures.push_back(items.back().promise.get_future());
  }
  const std::size_t count = items.size();
  bool pushed = false;
  std::string reject_reason = "request queue cannot take the whole batch";
  pending_.fetch_add(count, std::memory_order_acq_rel);
  try {
    pushed = queue_.try_push_all(items);
  } catch (const std::exception& e) {
    reject_reason = std::string("admission failure: ") + e.what();
  }
  if (!pushed) {
    for (auto& item : items) {
      reject_inline(item, reject_reason);
      finish_pending();
    }
    return futures;
  }
  accepted_.fetch_add(count, std::memory_order_relaxed);
  return futures;
}

void QueryExecutor::submit_batch(std::vector<SpanningTreeRequest> reqs,
                                 std::vector<Completion> dones) {
  if (reqs.size() != dones.size()) {
    throw std::invalid_argument("submit_batch: one completion per request");
  }
  submitted_.fetch_add(reqs.size(), std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  std::vector<Item> items;
  items.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    items.push_back(
        Item{std::move(reqs[i]), {}, now, std::move(dones[i]), {}});
  }
  const std::size_t count = items.size();
  bool pushed = false;
  std::string reject_reason = "request queue cannot take the whole batch";
  pending_.fetch_add(count, std::memory_order_acq_rel);
  try {
    pushed = queue_.try_push_all(items);
  } catch (const std::exception& e) {
    reject_reason = std::string("admission failure: ") + e.what();
  }
  if (!pushed) {
    for (auto& item : items) {
      reject_inline(item, reject_reason);
      finish_pending();
    }
    return;
  }
  accepted_.fetch_add(count, std::memory_order_relaxed);
}

bool QueryExecutor::submit_task(std::function<void()> task) {
  if (!task) return false;
  Item item;
  item.task = std::move(task);
  item.enqueued = std::chrono::steady_clock::now();
  pending_.fetch_add(1, std::memory_order_acq_rel);
  bool pushed = false;
  try {
    pushed = queue_.try_push(std::move(item));
  } catch (const std::exception&) {
    // Injected admission fault: same outcome as a full queue.
  }
  if (!pushed) {
    finish_pending();
    return false;
  }
  return true;
}

bool QueryExecutor::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  LockGuard<Mutex> lk(drain_mutex_);
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (drain_cv_.wait_until(drain_mutex_, deadline) ==
            std::cv_status::timeout &&
        pending_.load(std::memory_order_acquire) != 0) {
      return false;
    }
  }
  return true;
}

void QueryExecutor::resume() {
  {
    LockGuard<Mutex> lk(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void QueryExecutor::shutdown() {
  // acq_rel: the winner's subsequent close/join sequence must not be
  // reordered before the claim, and a losing caller must observe the
  // winner's prior writes before returning into teardown.
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  resume();  // a paused worker must still drain and exit
  for (auto& w : workers_) w.join();
  {
    LockGuard<Mutex> lk(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

ServiceStats QueryExecutor::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.not_found = not_found_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.watchdog_cancels = watchdog_cancels_.load(std::memory_order_relaxed);
  s.latency = latency_.snapshot();
  s.registry = registry_.stats();
  return s;
}

void QueryExecutor::wait_if_paused() {
  LockGuard<Mutex> lk(pause_mutex_);
  while (paused_) pause_cv_.wait(pause_mutex_);
}

void QueryExecutor::watchdog_loop() {
  const auto poll = std::chrono::milliseconds(opts_.watchdog_poll_ms);
  for (;;) {
    {
      // Sleep one poll period, or until shutdown() interrupts the nap. The
      // deadline re-arms each iteration, so a spurious wake just re-sleeps.
      const auto wake_at = std::chrono::steady_clock::now() + poll;
      LockGuard<Mutex> lk(watchdog_mutex_);
      while (!watchdog_stop_ &&
             watchdog_cv_.wait_until(watchdog_mutex_, wake_at) !=
                 std::cv_status::timeout) {
      }
      if (watchdog_stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& watch : watches_) {
      LockGuard<Mutex> wl(watch->mutex);
      if (watch->token != nullptr && !watch->cancelled &&
          now >= watch->hard_deadline) {
        watch->cancelled = true;
        watch->token->request_cancel();
        watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void QueryExecutor::worker_loop(std::size_t slot) {
  obs::trace::label_current_thread("executor-slot", slot);
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& m_queries = reg.counter("service.queries");
  obs::Counter& m_ok = reg.counter("service.served_ok");
  obs::Counter& m_timed_out = reg.counter("service.timed_out");
  obs::Counter& m_failed = reg.counter("service.failed");
  obs::Gauge& m_inflight = reg.gauge("service.inflight");
  obs::LatencyHistogram& m_latency = reg.histogram("service.latency_ms");
  for (;;) {
    wait_if_paused();
    Item item;
    try {
      if (!queue_.pop(item)) return;
    } catch (const std::exception&) {
      // Injected dequeue fault: nothing was taken, so nothing is owed.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    if (item.task) {
      // Offloaded admin work: contained like a completion, bypasses query
      // accounting (it is not a query), still settles pending()/drain().
      try {
        item.task();
      } catch (...) {
      }
      finish_pending();
      continue;
    }
    // The queue-wait span is emitted at dequeue, stamped from the recorded
    // submission time, so traces separate time-in-queue from compute.
    if (obs::trace::enabled()) {
      obs::trace::emit_complete("query.queue_wait",
                                obs::trace::to_trace_ns(item.enqueued),
                                obs::trace::now_ns());
    }
    m_queries.add(1);
    m_inflight.add(1);
    // Containment boundary: no exception may escape the worker thread (it
    // would std::terminate the process) and the promise must always be
    // satisfied with a typed outcome.
    QueryResult result;
    try {
      SMPST_FAILPOINT("service.executor.dequeue");
      result = execute(item, *pools_[slot], slot);
      SMPST_FAILPOINT("service.executor.respond");
    } catch (const std::exception& e) {
      result = QueryResult{};
      result.status = QueryStatus::kFailed;
      result.error = std::string("worker exception: ") + e.what();
      result.graph = item.req.graph;
      result.algorithm = item.req.algorithm;
      result.total_ms =
          ms_between(item.enqueued, std::chrono::steady_clock::now());
    } catch (...) {
      result = QueryResult{};
      result.status = QueryStatus::kFailed;
      result.error = "worker exception of unknown type";
      result.graph = item.req.graph;
      result.algorithm = item.req.algorithm;
      result.total_ms =
          ms_between(item.enqueued, std::chrono::steady_clock::now());
    }
    switch (result.status) {
      case QueryStatus::kOk:
        served_ok_.fetch_add(1, std::memory_order_relaxed);
        m_ok.add(1);
        break;
      case QueryStatus::kTimedOut:
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        m_timed_out.add(1);
        break;
      case QueryStatus::kNotFound:
        not_found_.fetch_add(1, std::memory_order_relaxed);
        m_failed.add(1);
        break;
      case QueryStatus::kInvalid:
        invalid_.fetch_add(1, std::memory_order_relaxed);
        m_failed.add(1);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        m_failed.add(1);
        break;
    }
    latency_.record_ms(result.total_ms);
    m_latency.record_ms(result.total_ms);
    m_inflight.add(-1);
    if (item.done) {
      // Before the promise: set_value moves the result out. A completion that
      // throws is contained here — the worker owes the rest of the queue.
      try {
        item.done(result);
      } catch (...) {
      }
    }
    try {
      item.promise.set_value(std::move(result));
    } catch (const std::exception&) {
      // Future abandoned (promise already satisfied or moved); nothing to do.
    }
    finish_pending();
  }
}

QueryResult QueryExecutor::execute(Item& item, ThreadPool& pool,
                                   std::size_t slot) {
  SMPST_TRACE_SCOPE("query.execute");
  const SpanningTreeRequest& req = item.req;
  QueryResult r;
  r.graph = req.graph;
  r.algorithm = req.algorithm;
  r.stats_requested = req.want_stats;
  r.queue_ms = ms_between(item.enqueued, std::chrono::steady_clock::now());

  const bool has_deadline = req.timeout_ms >= 0;
  const auto deadline =
      item.enqueued + std::chrono::milliseconds(has_deadline ? req.timeout_ms
                                                             : 0);
  auto finish = [&](QueryStatus status, std::string error) -> QueryResult& {
    r.status = status;
    r.error = std::move(error);
    r.total_ms = ms_between(item.enqueued, std::chrono::steady_clock::now());
    return r;
  };

  if (!is_algorithm(req.algorithm)) {
    return finish(QueryStatus::kInvalidArgument,
                  "unknown algorithm: " + req.algorithm);
  }
  // Pre-dispatch admission: an already-expired deadline (notably 0 ms) never
  // starts the traversal, so the timed-out outcome is deterministic.
  CancelToken token;
  if (has_deadline) {
    token.set_deadline(deadline);
    if (std::chrono::steady_clock::now() >= deadline) {
      return finish(QueryStatus::kTimedOut, "deadline expired in queue");
    }
  }
  WatchGuard watch(*this, slot, token, has_deadline, item.enqueued,
                   req.timeout_ms);
  auto timeout_error = [&]() -> std::string {
    if (!watch.fired()) return "deadline expired mid-traversal";
    r.watchdog_cancelled = true;
    return "hard-cancelled by watchdog after overrunning the deadline";
  };

  // Re-roots and (if requested or in paranoid mode) validates the forest the
  // attempt produced; an invalid forest counts as a failed attempt. Generic
  // over the storage backend: `g` is a Graph or a storage::BlockedGraph.
  auto finalize = [&](const auto& g) {
    if (req.root != kInvalidVertex) reroot(r.forest, req.root);
    if (req.validate || opts_.paranoid_validate) {
      SMPST_TRACE_SCOPE("query.validate");
      r.validated = true;
      r.validation = validate_spanning_forest(g, r.forest);
      if (!r.validation.ok) {
        throw InvalidResultError("validation failed: " + r.validation.error);
      }
    }
    r.num_trees = r.forest.num_trees();
  };

  WallTimer exec_timer;
  const std::size_t max_attempts = 1 + opts_.max_retries;
  std::string last_error;
  bool invalid_result = false;
  bool success = false;

  for (std::size_t attempt = 0; attempt < max_attempts && !success;
       ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      auto backoff = std::chrono::milliseconds(
          opts_.retry_backoff_ms << (attempt - 1));
      if (has_deadline) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          r.exec_ms = exec_timer.elapsed_millis();
          return finish(QueryStatus::kTimedOut,
                        "deadline expired between retries (last error: " +
                            last_error + ")");
        }
        backoff = std::min(
            backoff,
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now));
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
    r.attempts = static_cast<std::uint32_t>(attempt + 1);
    try {
      SMPST_FAILPOINT("service.executor.execute");
      const GraphRegistry::GraphHandle graph = registry_.get_any(req.graph);
      if (!graph) {
        r.exec_ms = exec_timer.elapsed_millis();
        return finish(QueryStatus::kNotFound,
                      "graph not in registry: " + req.graph);
      }
      const VertexId n = graph.resident != nullptr
                             ? graph.resident->num_vertices()
                             : graph.blocked->num_vertices();
      if (req.root != kInvalidVertex && req.root >= n) {
        r.exec_ms = exec_timer.elapsed_millis();
        return finish(QueryStatus::kInvalidArgument,
                      "root vertex out of range");
      }
      RunOptions run;
      run.seed = req.seed;
      run.cancel = &token;
      run.stats = req.want_stats ? &r.stats : nullptr;
      // One body for both backends; a blocked entry asked for a kernel with
      // no blocked instantiation (dfs, hcs) throws std::invalid_argument
      // here, burns the attempts fast, and lands in the degradation chain
      // below — which serves it with the blocked sequential BFS.
      auto attempt_on = [&](const auto& g) {
        {
          SMPST_TRACE_SCOPE("query.compute");
          r.forest = run_algorithm(req.algorithm, g, pool, run);
        }
        finalize(g);
      };
      if (graph.resident != nullptr) {
        attempt_on(*graph.resident);
      } else {
        attempt_on(*graph.blocked);
      }
      success = true;
    } catch (const CancelledError&) {
      r.exec_ms = exec_timer.elapsed_millis();
      return finish(QueryStatus::kTimedOut, timeout_error());
    } catch (const InvalidResultError& e) {
      invalid_result = true;
      last_error = e.what();
    } catch (const std::exception& e) {
      invalid_result = false;
      last_error = e.what();
    }
  }

  // Degradation chain: every attempt at the requested (parallel) algorithm
  // threw or produced an invalid forest — serve the query with the sequential
  // baseline rather than failing it.
  if (!success && opts_.degrade_to_sequential &&
      !is_sequential(req.algorithm)) {
    try {
      const GraphRegistry::GraphHandle graph = registry_.get_any(req.graph);
      const VertexId n = graph.resident != nullptr
                             ? graph.resident->num_vertices()
                         : graph.blocked != nullptr
                             ? graph.blocked->num_vertices()
                             : 0;
      if (graph && (req.root == kInvalidVertex || req.root < n)) {
        RunOptions run;
        run.seed = req.seed;
        run.cancel = &token;
        auto degrade_on = [&](const auto& g) {
          {
            SMPST_TRACE_SCOPE("query.compute");
            r.forest = run_algorithm("bfs", g, pool, run);
          }
          finalize(g);
        };
        if (graph.resident != nullptr) {
          degrade_on(*graph.resident);
        } else {
          degrade_on(*graph.blocked);
        }
        r.degraded = true;
        degraded_.fetch_add(1, std::memory_order_relaxed);
        success = true;
      }
    } catch (const CancelledError&) {
      r.exec_ms = exec_timer.elapsed_millis();
      return finish(QueryStatus::kTimedOut, timeout_error());
    } catch (const InvalidResultError& e) {
      invalid_result = true;
      last_error = e.what();
    } catch (const std::exception& e) {
      invalid_result = false;
      last_error = e.what();
    }
  }

  r.exec_ms = exec_timer.elapsed_millis();
  if (!success) {
    return finish(invalid_result ? QueryStatus::kInvalid
                                 : QueryStatus::kFailed,
                  last_error);
  }
  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    // Completed late (the algorithm may lack a cancellation hook); the forest
    // is kept but the latency contract was missed.
    return finish(QueryStatus::kTimedOut, "completed after deadline");
  }
  return finish(QueryStatus::kOk, {});
}

}  // namespace smpst::service
