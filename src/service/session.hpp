// Session — one client's command stream against the query service.
//
// This is the shared dispatch path behind every front end: the stdin loop and
// the TCP server both frame bytes into lines (service/codec.hpp) and feed
// them here. The session parses each line, runs synchronous commands (load /
// gen / stats / metrics / trace / list / evict) inline, submits queries to
// the QueryExecutor through its callback API, and re-serializes responses so
// that they leave in exactly the order the requests arrived — the pipelining
// contract a line protocol needs.
//
// Response invariant: every fed line produces at least one response line, and
// (except for `list`, which emits one line per resident graph plus a summary)
// exactly one. Query responses may be emitted later, from an executor worker
// thread; the session's internal slot buffer holds completed-out-of-order
// responses until their turn.
//
// Overload + drain semantics (docs/SERVICE.md):
//   - a query the executor rejects (bounded queue full) is answered with a
//     typed `overloaded` error carrying a retry_after_ms hint derived from
//     the current queue depth and service latency;
//   - after begin_drain(), new queries and registry mutations are shed with
//     `shutting-down`; read-only commands still answer; queries accepted
//     before the drain complete normally.
//
// Threading: on_line / on_oversized_line / on_eof must be called by one
// thread at a time (the connection's reader). The sink may be invoked from
// that thread or from executor workers, serialized by an internal mutex; it
// must be quick and must not re-enter the session. Sessions are created via
// the `create` factory and held by std::shared_ptr because in-flight
// executor completions keep the session alive past a disconnect — detach()
// turns the sink into a no-op so a dead connection's responses drain into
// the void without blocking the executor.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/executor.hpp"
#include "service/query.hpp"
#include "service/wire.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::service {

struct SessionOptions {
  /// Upper bound accepted for `batch count=K`.
  std::size_t max_batch = 4096;

  /// Invoked (outside the session mutex' critical path) when the client
  /// issues `shutdown`. When unset, `shutdown` behaves like `quit`.
  std::function<void()> on_shutdown;

  /// Run heavy admin commands (load / gen / trace — disk I/O and big
  /// compute) on an executor worker instead of the caller's thread. The TCP
  /// front end enables this so the epoll loop thread never blocks; while an
  /// offloaded command runs, subsequent input events are deferred in arrival
  /// order and replayed via pump_deferred() (see resume_ready()), keeping
  /// the pipelining contract intact. The stdin front end leaves it off:
  /// there, blocking the (dedicated) reader thread is fine.
  bool offload_heavy = false;
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Receives one rendered response line (no trailing newline). Called with
  /// the session mutex held; keep it O(append) and non-reentrant.
  using Sink = std::function<void(std::string&&)>;

  using Options = SessionOptions;

  /// Sessions must be shared_ptr-owned (executor completions capture one).
  [[nodiscard]] static std::shared_ptr<Session> create(
      GraphRegistry& registry, QueryExecutor& executor, Sink sink,
      Options opts = Options());

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds one complete request line (newline already stripped).
  void on_line(std::string line);

  /// Reports a line the codec rejected for exceeding the wire cap; answers
  /// with a typed `too-large` error so the count of responses still matches
  /// the count of (attempted) requests.
  void on_oversized_line(std::size_t observed_bytes);

  /// End of the request stream: finalizes a half-collected batch (the
  /// remaining announced lines are answered with typed truncation errors).
  void on_eof();

  /// Shed new work from now on: queries and registry mutations get
  /// `shutting-down`; in-flight queries still complete and flush.
  void begin_drain() noexcept;

  /// The client asked to end the session (`quit`, or `shutdown` with no
  /// handler installed). The front end should flush and close.
  [[nodiscard]] bool quit_requested() const noexcept;

  /// Responses not yet handed to the sink (queries in flight + out-of-order
  /// completions waiting for their turn).
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until every fed line has been answered, or the timeout elapses.
  [[nodiscard]] bool wait_idle(std::chrono::milliseconds timeout);

  /// Replaces the sink with a no-op: responses for a disconnected client are
  /// dropped (in order) instead of delivered. Idempotent.
  void detach();

  /// True when deferred input events are waiting and no offloaded admin
  /// command is in flight — the reader thread should call pump_deferred().
  /// Only meaningful with offload_heavy; reader-thread callers only.
  [[nodiscard]] bool resume_ready() const;

  /// Replays deferred input events in arrival order until they are exhausted
  /// or another offloaded command starts. Reader-thread callers only.
  void pump_deferred();

 private:
  Session(GraphRegistry& registry, QueryExecutor& executor, Sink sink,
          Options opts);

  struct DeferredEvent {
    enum class Kind { kLine, kOversized, kEof };
    Kind kind = Kind::kLine;
    std::string line;        ///< kLine payload
    std::size_t bytes = 0;   ///< kOversized payload
  };

  [[nodiscard]] std::uint64_t alloc_slot();
  void process_line(std::string line);
  void process_oversized_line(std::size_t observed_bytes);
  void process_eof();
  [[nodiscard]] bool must_defer() const;
  void defer(DeferredEvent ev);
  void offload(std::uint64_t slot, const std::string& cmd, Fields f);
  void deliver(std::uint64_t slot, std::vector<std::string> lines);
  void deliver_one(std::uint64_t slot, std::string line);
  void complete_query(std::uint64_t slot, const QueryResult& r);
  void dispatch(std::uint64_t slot, const std::string& line);
  void handle_batch_announce(std::uint64_t slot, std::int64_t count);
  void collect_batch_line(const std::string& line);
  void finalize_batch();
  [[nodiscard]] std::vector<std::string> run_sync(const std::string& cmd,
                                                  const Fields& f);
  [[nodiscard]] std::int64_t retry_after_hint_ms();

  GraphRegistry& registry_;
  QueryExecutor& executor_;
  const Options opts_;

  mutable Mutex mutex_{lockdep::rank::kSession};
  Sink sink_ SMPST_GUARDED_BY(mutex_);
  std::uint64_t next_slot_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t flush_slot_ SMPST_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, std::vector<std::string>> ready_
      SMPST_GUARDED_BY(mutex_);
  CondVar idle_cv_;

  std::int64_t retry_hint_ms_ SMPST_GUARDED_BY(mutex_) = 1;
  std::chrono::steady_clock::time_point retry_hint_at_
      SMPST_GUARDED_BY(mutex_){};

  std::atomic<bool> drain_{false};
  std::atomic<bool> quit_{false};

  // Batch collection state; touched only by the reader thread.
  std::size_t batch_remaining_ = 0;
  std::vector<SpanningTreeRequest> batch_reqs_;
  std::vector<std::uint64_t> batch_req_slots_;

  // Offload state (offload_heavy only). admin_inflight_ is set by the reader
  // thread when a heavy command is handed to the executor and cleared by the
  // worker just before it delivers the response; deferred_ is owned by the
  // reader thread exclusively, with deferred_count_ mirroring its size for
  // pending() callers on other threads.
  std::atomic<bool> admin_inflight_{false};
  std::deque<DeferredEvent> deferred_;
  std::atomic<std::size_t> deferred_count_{0};
};

}  // namespace smpst::service
