#include "service/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/wire.hpp"
#include "storage/blocked_graph.hpp"
#include "support/failpoint.hpp"

namespace smpst::service {

namespace {

std::string get(const Fields& f, const std::string& key,
                const std::string& fallback) {
  const auto it = f.find(key);
  return it == f.end() ? fallback : it->second;
}

std::int64_t get_int(const Fields& f, const std::string& key,
                     std::int64_t fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
  }
  if (consumed != it->second.size()) {
    throw std::invalid_argument(key + " must be an integer, got: " +
                                it->second);
  }
  return value;
}

bool get_bool(const Fields& f, const std::string& key, bool fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument(key + " must be a boolean, got: " + it->second);
}

std::string require(const Fields& f, const std::string& key) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) {
    throw std::invalid_argument("missing required field: " + key);
  }
  return it->second;
}

SpanningTreeRequest parse_request(const Fields& f) {
  // A typo in a field name must not silently drop (say) the timeout: reject
  // anything we would otherwise ignore.
  static const char* const known[] = {"cmd",     "graph",      "algo",
                                      "algorithm", "root",     "timeout",
                                      "timeout_ms", "seed",    "validate",
                                      "stats"};
  for (const auto& [key, value] : f) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) throw std::invalid_argument("unknown query field: " + key);
  }
  SpanningTreeRequest req;
  req.graph = require(f, "graph");
  req.algorithm = get(f, "algo", get(f, "algorithm", "bader-cong"));
  if (f.count("root") != 0) {
    // Validate before the narrowing cast: root=-1 would otherwise wrap to
    // kInvalidVertex and silently mean "default root".
    const std::int64_t root = get_int(f, "root", 0);
    if (root < 0 || root >= static_cast<std::int64_t>(kInvalidVertex)) {
      throw std::invalid_argument("root out of range: " +
                                  std::to_string(root));
    }
    req.root = static_cast<VertexId>(root);
  } else {
    req.root = kInvalidVertex;
  }
  req.seed = static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed));
  req.timeout_ms = get_int(f, "timeout", get_int(f, "timeout_ms", -1));
  req.validate = get_bool(f, "validate", false);
  req.want_stats = get_bool(f, "stats", false);
  return req;
}

std::string describe(const GraphRegistry::EntryInfo& e) {
  JsonWriter w;
  w.field("name", e.name);
  w.field("vertices", static_cast<std::uint64_t>(e.vertices));
  w.field("edges", e.edges);
  w.field("bytes", static_cast<std::uint64_t>(e.bytes));
  // Additive: resident entries keep the seed wire shape exactly.
  if (e.blocked) w.field("blocked", true);
  return w.str();
}

bool is_registry_mutation(const std::string& cmd) {
  return cmd == "load" || cmd == "loadblocked" || cmd == "gen" ||
         cmd == "evict";
}

// Commands that block or burn CPU for unbounded time: graph load (disk
// I/O), gen (builds a whole CSR), trace (writes a file). With offload_heavy
// these must leave the reader thread — the TCP server's epoll loop must
// never wait on a disk.
bool is_heavy(const std::string& cmd) {
  return cmd == "load" || cmd == "loadblocked" || cmd == "gen" ||
         cmd == "trace";
}

}  // namespace

std::shared_ptr<Session> Session::create(GraphRegistry& registry,
                                         QueryExecutor& executor, Sink sink,
                                         Options opts) {
  // Not make_shared: the constructor is private and completions rely on
  // shared_from_this, so shared ownership must exist before the first line.
  return std::shared_ptr<Session>(
      new Session(registry, executor, std::move(sink), std::move(opts)));
}

Session::Session(GraphRegistry& registry, QueryExecutor& executor, Sink sink,
                 Options opts)
    : registry_(registry),
      executor_(executor),
      opts_(std::move(opts)),
      sink_(std::move(sink)) {
  if (!sink_) sink_ = [](std::string&&) {};
}

std::uint64_t Session::alloc_slot() {
  LockGuard<Mutex> lk(mutex_);
  return next_slot_++;
}

void Session::deliver(std::uint64_t slot, std::vector<std::string> lines) {
  LockGuard<Mutex> lk(mutex_);
  ready_.emplace(slot, std::move(lines));
  // Release every contiguously-completed slot, in order. The map is keyed by
  // slot, so begin() is always the lowest outstanding completion.
  while (!ready_.empty() && ready_.begin()->first == flush_slot_) {
    for (std::string& line : ready_.begin()->second) {
      // The TCP front end's sink posts into the server mailbox, taking
      // mail_mutex_ (rank kNetMailbox) under our mutex_ (rank kSession) —
      // declare the indirect call so the static lock-order graph sees it.
      // smpst-analyze: calls(smpst::net::TcpServer::post_response)
      sink_(std::move(line));
    }
    ready_.erase(ready_.begin());
    ++flush_slot_;
  }
  if (flush_slot_ == next_slot_) idle_cv_.notify_all();
}

void Session::deliver_one(std::uint64_t slot, std::string line) {
  std::vector<std::string> lines;
  lines.push_back(std::move(line));
  deliver(slot, std::move(lines));
}

std::int64_t Session::retry_after_hint_ms() {
  {
    LockGuard<Mutex> lk(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (now - retry_hint_at_ < std::chrono::milliseconds(100)) {
      return retry_hint_ms_;
    }
  }
  // Recomputed at most every 100 ms per session: a shed storm must not turn
  // the hint into a per-rejection stats() scrape. The hint models "time for
  // the queued backlog to clear one slot": p50 service time times the queue
  // depth per worker slot.
  const ServiceStats s = executor_.stats();
  double p50 = s.latency.count > 0 ? s.latency.percentile(50) : 0.0;
  if (p50 <= 0.0) p50 = 1.0;
  const double backlog_per_slot =
      (static_cast<double>(executor_.queue_depth()) + 1.0) /
      static_cast<double>(executor_.num_workers());
  const auto hint = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(p50 * (backlog_per_slot + 1.0)), 1, 10'000);
  LockGuard<Mutex> lk(mutex_);
  retry_hint_ms_ = hint;
  retry_hint_at_ = std::chrono::steady_clock::now();
  return hint;
}

void Session::complete_query(std::uint64_t slot, const QueryResult& r) {
  std::string line;
  try {
    if (r.status == QueryStatus::kRejected) {
      // Shed path: typed overload signal plus a backoff hint instead of the
      // generic result shape. The failpoint lets chaos runs storm the shed
      // path itself; a throw here is contained below, so the slot always
      // completes and the one-response-per-line invariant holds.
      SMPST_FAILPOINT("service.session.shed");
      obs::MetricsRegistry::instance().counter("service.shed").add(1);
      line = render_error(WireErrorCode::kOverloaded, r.error,
                          retry_after_hint_ms());
    } else {
      line = render_result(r);
    }
  } catch (const std::exception& e) {
    line = render_error(WireErrorCode::kInternal,
                        std::string("response path fault: ") + e.what());
  } catch (...) {
    line = render_error(WireErrorCode::kInternal, "response path fault");
  }
  deliver_one(slot, std::move(line));
}

bool Session::must_defer() const {
  return opts_.offload_heavy &&
         (admin_inflight_.load(std::memory_order_acquire) ||
          !deferred_.empty());
}

void Session::defer(DeferredEvent ev) {
  deferred_.push_back(std::move(ev));
  deferred_count_.fetch_add(1, std::memory_order_release);
}

bool Session::resume_ready() const {
  return opts_.offload_heavy && !deferred_.empty() &&
         !admin_inflight_.load(std::memory_order_acquire);
}

void Session::pump_deferred() {
  // An event replayed here can start another offloaded command, which flips
  // admin_inflight_ back on; the remaining events keep waiting, still in
  // arrival order (process_* never re-defers — only the on_* entry points
  // do, so replay cannot loop on itself).
  while (!deferred_.empty() &&
         !admin_inflight_.load(std::memory_order_acquire)) {
    DeferredEvent ev = std::move(deferred_.front());
    deferred_.pop_front();
    deferred_count_.fetch_sub(1, std::memory_order_release);
    switch (ev.kind) {
      case DeferredEvent::Kind::kLine:
        process_line(std::move(ev.line));
        break;
      case DeferredEvent::Kind::kOversized:
        process_oversized_line(ev.bytes);
        break;
      case DeferredEvent::Kind::kEof:
        process_eof();
        break;
    }
  }
}

void Session::on_line(std::string line) {
  if (must_defer()) {
    DeferredEvent ev;
    ev.kind = DeferredEvent::Kind::kLine;
    ev.line = std::move(line);
    defer(std::move(ev));
    return;
  }
  process_line(std::move(line));
}

void Session::on_oversized_line(std::size_t observed_bytes) {
  if (must_defer()) {
    DeferredEvent ev;
    ev.kind = DeferredEvent::Kind::kOversized;
    ev.bytes = observed_bytes;
    defer(std::move(ev));
    return;
  }
  process_oversized_line(observed_bytes);
}

void Session::on_eof() {
  if (must_defer()) {
    DeferredEvent ev;
    ev.kind = DeferredEvent::Kind::kEof;
    defer(std::move(ev));
    return;
  }
  process_eof();
}

void Session::process_line(std::string line) {
  if (line.empty()) return;  // blank keep-alive, no response owed
  if (quit_.load(std::memory_order_acquire)) {
    deliver_one(alloc_slot(),
                render_error(WireErrorCode::kShuttingDown, "session closed"));
    return;
  }
  if (batch_remaining_ > 0) {
    collect_batch_line(line);
    return;
  }
  dispatch(alloc_slot(), line);
}

void Session::process_oversized_line(std::size_t observed_bytes) {
  obs::MetricsRegistry::instance().counter("service.too_large").add(1);
  const std::uint64_t slot = alloc_slot();
  std::string msg = "request line exceeds " + std::to_string(kMaxLineBytes) +
                    " bytes (got at least " + std::to_string(observed_bytes) +
                    "); discarded through the next newline";
  if (batch_remaining_ > 0) {
    // The oversized line was one of the announced batch positions.
    --batch_remaining_;
    deliver_one(slot, render_error(WireErrorCode::kTooLarge, std::move(msg)));
    if (batch_remaining_ == 0) finalize_batch();
    return;
  }
  deliver_one(slot, render_error(WireErrorCode::kTooLarge, std::move(msg)));
}

void Session::process_eof() {
  while (batch_remaining_ > 0) {
    --batch_remaining_;
    deliver_one(alloc_slot(),
                render_error(WireErrorCode::kBadRequest,
                             "batch truncated by end of input"));
  }
  finalize_batch();
}

void Session::begin_drain() noexcept {
  drain_.store(true, std::memory_order_release);
}

bool Session::quit_requested() const noexcept {
  return quit_.load(std::memory_order_acquire);
}

std::size_t Session::pending() const {
  // Deferred input events count: they are accepted work that has not been
  // answered yet, so close barriers and pipelining backpressure must see
  // them even in the window where every allocated slot has flushed.
  const std::size_t deferred = deferred_count_.load(std::memory_order_acquire);
  LockGuard<Mutex> lk(mutex_);
  return static_cast<std::size_t>(next_slot_ - flush_slot_) + deferred;
}

bool Session::wait_idle(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  LockGuard<Mutex> lk(mutex_);
  while (flush_slot_ != next_slot_) {
    if (idle_cv_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
        flush_slot_ != next_slot_) {
      return false;
    }
  }
  return true;
}

void Session::detach() {
  LockGuard<Mutex> lk(mutex_);
  sink_ = [](std::string&&) {};
}

void Session::dispatch(std::uint64_t slot, const std::string& line) {
  Fields f;
  std::string cmd;
  try {
    f = parse_line(line);
    cmd = require(f, "cmd");
  } catch (const std::exception& e) {
    deliver_one(slot, render_error(WireErrorCode::kBadRequest, e.what()));
    return;
  }
  try {
    if (cmd == "quit" || cmd == "exit") {
      deliver_one(slot,
                  JsonWriter().field("ok", true).field("bye", true).str());
      quit_.store(true, std::memory_order_release);
      return;
    }
    if (cmd == "shutdown") {
      deliver_one(
          slot,
          JsonWriter().field("ok", true).field("draining", true).str());
      begin_drain();
      if (opts_.on_shutdown) {
        opts_.on_shutdown();
      } else {
        quit_.store(true, std::memory_order_release);
      }
      return;
    }
    if (cmd == "query") {
      if (drain_.load(std::memory_order_acquire)) {
        obs::MetricsRegistry::instance().counter("service.drain_shed").add(1);
        deliver_one(slot,
                    render_error(WireErrorCode::kShuttingDown,
                                 "server is draining; no new queries"));
        return;
      }
      SpanningTreeRequest req = parse_request(f);
      auto self = shared_from_this();
      executor_.submit(std::move(req),
                       [self, slot](const QueryResult& r) {
                         self->complete_query(slot, r);
                       });
      return;
    }
    if (cmd == "batch") {
      handle_batch_announce(slot, get_int(f, "count", 0));
      return;
    }
    if (drain_.load(std::memory_order_acquire) && is_registry_mutation(cmd)) {
      obs::MetricsRegistry::instance().counter("service.drain_shed").add(1);
      deliver_one(slot, render_error(WireErrorCode::kShuttingDown,
                                     "server is draining; registry is "
                                     "read-only"));
      return;
    }
    if (opts_.offload_heavy && is_heavy(cmd)) {
      offload(slot, cmd, std::move(f));
      return;
    }
    // On loop-thread (TCP) sessions the heavy commands — load, gen, trace:
    // disk I/O and pool-joining compute — were dispatched to the executor
    // just above, so this inline path runs only the bounded registry/stat
    // commands.  Stdin sessions run everything inline by design (a
    // dedicated reader thread may block).
    // smpst-analyze: allow(SA4): heavy commands took the offload branch above; the inline remainder is bounded registry lookups
    deliver(slot, run_sync(cmd, f));
  } catch (const std::invalid_argument& e) {
    deliver_one(slot, render_error(WireErrorCode::kBadRequest, e.what()));
  } catch (const std::exception& e) {
    deliver_one(slot, render_error(WireErrorCode::kInternal, e.what()));
  } catch (...) {
    // A request must never take the server down, whatever it threw.
    deliver_one(slot,
                render_error(WireErrorCode::kInternal, "unknown exception"));
  }
}

void Session::handle_batch_announce(std::uint64_t slot, std::int64_t count) {
  if (count <= 0) {
    deliver_one(slot, render_error(WireErrorCode::kBadRequest,
                                   "batch needs count>=1"));
    return;
  }
  if (count > static_cast<std::int64_t>(opts_.max_batch)) {
    deliver_one(slot,
                render_error(WireErrorCode::kBadRequest,
                             "batch count too large (max " +
                                 std::to_string(opts_.max_batch) + ")"));
    return;
  }
  batch_remaining_ = static_cast<std::size_t>(count);
  batch_reqs_.clear();
  batch_req_slots_.clear();
  batch_reqs_.reserve(batch_remaining_);
  batch_req_slots_.reserve(batch_remaining_);
  // The announce line itself gets no response line (seed protocol: K
  // announced sub-lines yield exactly K responses); an empty slot keeps the
  // release order intact without emitting anything.
  deliver(slot, {});
}

void Session::collect_batch_line(const std::string& line) {
  const std::uint64_t slot = alloc_slot();
  --batch_remaining_;
  if (line.empty()) {
    deliver_one(slot, render_error(WireErrorCode::kBadRequest,
                                   "empty batch query line"));
  } else {
    try {
      batch_reqs_.push_back(parse_request(parse_line(line)));
      batch_req_slots_.push_back(slot);
    } catch (const std::exception& e) {
      deliver_one(slot, render_error(WireErrorCode::kBadRequest, e.what()));
    }
  }
  if (batch_remaining_ == 0) finalize_batch();
}

void Session::finalize_batch() {
  std::vector<SpanningTreeRequest> reqs = std::move(batch_reqs_);
  std::vector<std::uint64_t> slots = std::move(batch_req_slots_);
  batch_reqs_.clear();
  batch_req_slots_.clear();
  batch_remaining_ = 0;
  if (reqs.empty()) return;
  if (drain_.load(std::memory_order_acquire)) {
    obs::MetricsRegistry::instance()
        .counter("service.drain_shed")
        .add(slots.size());
    for (const std::uint64_t slot : slots) {
      deliver_one(slot, render_error(WireErrorCode::kShuttingDown,
                                     "server is draining; no new queries"));
    }
    return;
  }
  auto self = shared_from_this();
  std::vector<QueryExecutor::Completion> dones;
  dones.reserve(slots.size());
  for (const std::uint64_t slot : slots) {
    dones.push_back([self, slot](const QueryResult& r) {
      self->complete_query(slot, r);
    });
  }
  executor_.submit_batch(std::move(reqs), std::move(dones));
}

void Session::offload(std::uint64_t slot, const std::string& cmd, Fields f) {
  // The slot is already allocated, so the response lands in pipeline order
  // no matter when the worker finishes; input that arrives meanwhile defers
  // (see on_line), preserving dependent-command ordering — a `query` sent
  // after a `gen` still sees the generated graph.
  auto self = shared_from_this();
  admin_inflight_.store(true, std::memory_order_release);
  const bool queued =
      executor_.submit_task([self, slot, cmd, f = std::move(f)] {
        std::vector<std::string> lines;
        try {
          lines = self->run_sync(cmd, f);
        } catch (const std::invalid_argument& e) {
          lines.push_back(render_error(WireErrorCode::kBadRequest, e.what()));
        } catch (const std::exception& e) {
          lines.push_back(render_error(WireErrorCode::kInternal, e.what()));
        } catch (...) {
          lines.push_back(
              render_error(WireErrorCode::kInternal, "unknown exception"));
        }
        // Clear the gate before delivering: the deliver wakes the front
        // end's loop (via the sink), whose next tick replays the deferred
        // input without waiting out a poll period.
        self->admin_inflight_.store(false, std::memory_order_release);
        self->deliver(slot, std::move(lines));
      });
  if (!queued) {
    admin_inflight_.store(false, std::memory_order_release);
    obs::MetricsRegistry::instance().counter("service.shed").add(1);
    deliver_one(slot,
                render_error(WireErrorCode::kOverloaded,
                             "executor queue full; admin command shed",
                             retry_after_hint_ms()));
  }
}

std::vector<std::string> Session::run_sync(const std::string& cmd,
                                           const Fields& f) {
  std::vector<std::string> lines;
  if (cmd == "load" || cmd == "gen") {
    const std::string name = require(f, "name");
    std::shared_ptr<const Graph> graph;
    if (cmd == "load") {
      graph = registry_.load_file(name, require(f, "path"));
    } else {
      const std::int64_t n = get_int(f, "n", 1 << 16);
      if (n < 0 || n >= static_cast<std::int64_t>(kInvalidVertex)) {
        throw std::invalid_argument("n out of range: " + std::to_string(n));
      }
      graph = registry_.generate(
          name, require(f, "family"), static_cast<VertexId>(n),
          static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed)));
    }
    JsonWriter w;
    w.field("ok", true);
    w.field("name", name);
    w.field("vertices", static_cast<std::uint64_t>(graph->num_vertices()));
    w.field("edges", graph->num_edges());
    w.field("bytes", static_cast<std::uint64_t>(graph->memory_bytes()));
    lines.push_back(w.str());
  } else if (cmd == "loadblocked") {
    // Registers an on-disk CSR (tools/csrpack output) behind the block
    // cache; the registry charge is the cache budget, not the CSR size.
    const std::string name = require(f, "name");
    storage::BlockCacheOptions copts;
    const std::int64_t budget = get_int(f, "budget", 0);
    if (budget > 0) copts.budget_bytes = static_cast<std::size_t>(budget);
    const std::int64_t block = get_int(f, "block", 0);
    if (block > 0) copts.block_bytes = static_cast<std::size_t>(block);
    const std::int64_t shards = get_int(f, "shards", 0);
    if (shards > 0) copts.shards = static_cast<std::size_t>(shards);
    const std::string policy = get(f, "policy", "");
    std::shared_ptr<const storage::BlockedGraph> graph;
    try {
      if (!policy.empty()) {
        copts.policy = storage::parse_eviction_policy(policy);
      }
      graph = registry_.open_blocked(name, require(f, "path"), copts);
    } catch (const storage::StorageError& e) {
      // A malformed file, bad cache knob, or unreadable path is the client's
      // input, not a server fault: surface it as kBadRequest.
      throw std::invalid_argument(e.what());
    }
    JsonWriter w;
    w.field("ok", true);
    w.field("name", name);
    w.field("vertices", static_cast<std::uint64_t>(graph->num_vertices()));
    w.field("edges", graph->num_edges());
    w.field("bytes", static_cast<std::uint64_t>(graph->memory_bytes()));
    w.field("csr_bytes", static_cast<std::uint64_t>(graph->csr_bytes()));
    w.field("blocked", true);
    lines.push_back(w.str());
  } else if (cmd == "stats") {
    lines.push_back(render_stats(executor_.stats()));
  } else if (cmd == "metrics") {
    lines.push_back(
        render_metrics(obs::MetricsRegistry::instance().snapshot()));
  } else if (cmd == "trace") {
    const std::string path = require(f, "file");
    // First use turns tracing on, so a session can ask for a trace without
    // restarting under SMPST_TRACE; this drain is then empty and the next
    // one covers the load that follows.
    if (!obs::trace::enabled()) obs::trace::enable();
    std::size_t events = 0;
    const bool ok = obs::trace::write_chrome_trace_file(path, &events);
    JsonWriter w;
    w.field("ok", ok);
    w.field("file", path);
    w.field("events", static_cast<std::uint64_t>(events));
    lines.push_back(w.str());
  } else if (cmd == "list") {
    const auto entries = registry_.list();
    for (const auto& e : entries) lines.push_back(describe(e));
    lines.push_back(JsonWriter()
                        .field("ok", true)
                        .field("entries",
                               static_cast<std::uint64_t>(entries.size()))
                        .str());
  } else if (cmd == "evict") {
    lines.push_back(
        JsonWriter().field("ok", registry_.evict(require(f, "name"))).str());
  } else {
    throw std::invalid_argument("unknown command: " + cmd);
  }
  return lines;
}

}  // namespace smpst::service
