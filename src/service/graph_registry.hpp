// Named, shared, memory-budgeted graph store for the query service.
//
// Graphs are immutable CSR structures (graph/graph.hpp), so many concurrent
// queries can traverse one instance; the registry hands out
// shared_ptr<const Graph> so an in-flight query pins its graph even if the
// entry is evicted or replaced underneath it. Eviction is LRU by a logical
// use tick, triggered when resident bytes exceed the configured budget; the
// most recently inserted entry is never evicted, so a single over-budget
// graph can still be served.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::service {

class GraphRegistry {
 public:
  struct Options {
    /// Resident-set budget in bytes; 0 means unlimited.
    std::size_t memory_budget_bytes = 0;
  };

  struct EntryInfo {
    std::string name;
    std::size_t bytes = 0;
    VertexId vertices = 0;
    EdgeId edges = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< budget evictions + explicit evict()s
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  GraphRegistry() : GraphRegistry(Options{}) {}
  explicit GraphRegistry(Options opts) : opts_(opts) {}

  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Inserts (or replaces) `name`, then evicts least-recently-used entries
  /// while over budget. Returns the stored pointer.
  std::shared_ptr<const Graph> put(const std::string& name, Graph g);

  /// Looks up `name`, refreshing its recency. nullptr on miss.
  std::shared_ptr<const Graph> get(const std::string& name);

  /// Loads a graph from disk (graph/io formats, chosen by extension) and
  /// registers it under `name`. Throws std::runtime_error on I/O failure.
  std::shared_ptr<const Graph> load_file(const std::string& name,
                                         const std::string& path);

  /// Synthesizes a generator-registry family (gen/registry.hpp) and registers
  /// it under `name`. Throws std::invalid_argument for unknown families.
  std::shared_ptr<const Graph> generate(const std::string& name,
                                        const std::string& family, VertexId n,
                                        std::uint64_t seed);

  /// Explicitly removes `name`. Returns false if absent. In-flight queries
  /// holding the shared_ptr keep the graph alive.
  bool evict(const std::string& name);

  /// All resident entries, most recently used first.
  [[nodiscard]] std::vector<EntryInfo> list() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const Graph> graph;
    std::uint64_t last_use = 0;
  };

  void enforce_budget_locked(const std::string& keep) SMPST_REQUIRES(mutex_);

  const Options opts_;
  mutable Mutex mutex_{lockdep::rank::kGraphRegistry};
  std::map<std::string, Entry> entries_ SMPST_GUARDED_BY(mutex_);
  std::uint64_t tick_ SMPST_GUARDED_BY(mutex_) = 0;
  std::size_t resident_bytes_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ SMPST_GUARDED_BY(mutex_) = 0;
};

}  // namespace smpst::service
