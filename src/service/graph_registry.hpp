// Named, shared, memory-budgeted graph store for the query service.
//
// Graphs are immutable CSR structures (graph/graph.hpp), so many concurrent
// queries can traverse one instance; the registry hands out
// shared_ptr<const Graph> so an in-flight query pins its graph even if the
// entry is evicted or replaced underneath it. Eviction is LRU by a logical
// use tick, triggered when resident bytes exceed the configured budget; the
// most recently inserted entry is never evicted, so a single over-budget
// graph can still be served.
//
// Entries come in two flavors. A *resident* entry owns the full in-memory
// CSR and is charged its committed heap (Graph::memory_bytes). A *blocked*
// entry (storage/blocked_graph.hpp) keeps the CSR on disk behind a block
// cache and is charged only its cache budget plus metadata — which is the
// point: a graph far larger than the registry budget can still be served.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "storage/block_cache.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst::service {

class GraphRegistry {
 public:
  struct Options {
    /// Resident-set budget in bytes; 0 means unlimited.
    std::size_t memory_budget_bytes = 0;
  };

  struct EntryInfo {
    std::string name;
    std::size_t bytes = 0;  ///< registry charge, not CSR size for blocked
    VertexId vertices = 0;
    EdgeId edges = 0;
    bool blocked = false;
  };

  /// Backend-agnostic lookup result: exactly one pointer is set for a
  /// registered name (resident for in-memory entries, blocked for on-disk
  /// ones); both null on miss. Holding either keeps the graph alive across
  /// eviction, same as the shared_ptr contract of get().
  struct GraphHandle {
    std::shared_ptr<const Graph> resident;
    std::shared_ptr<const storage::BlockedGraph> blocked;

    explicit operator bool() const noexcept {
      return resident != nullptr || blocked != nullptr;
    }
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< budget evictions + explicit evict()s
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  GraphRegistry() : GraphRegistry(Options{}) {}
  explicit GraphRegistry(Options opts) : opts_(opts) {}

  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Inserts (or replaces) `name`, then evicts least-recently-used entries
  /// while over budget. Returns the stored pointer.
  std::shared_ptr<const Graph> put(const std::string& name, Graph g);

  /// Looks up `name`, refreshing its recency. nullptr on miss. Resident
  /// entries only: a blocked entry answers nullptr here (counted as a miss) —
  /// callers able to serve both backends use get_any().
  std::shared_ptr<const Graph> get(const std::string& name);

  /// Backend-agnostic lookup, refreshing recency. Empty handle on miss.
  GraphHandle get_any(const std::string& name);

  /// Opens an on-disk CSR file (storage::write_csr_file format) as a blocked
  /// entry under `name`, charged at its cache budget rather than full CSR
  /// size. Throws storage::StorageError on a malformed or unreadable file.
  std::shared_ptr<const storage::BlockedGraph> open_blocked(
      const std::string& name, const std::string& path,
      const storage::BlockCacheOptions& cache_opts = {});

  /// Loads a graph from disk (graph/io formats, chosen by extension) and
  /// registers it under `name`. Throws std::runtime_error on I/O failure.
  std::shared_ptr<const Graph> load_file(const std::string& name,
                                         const std::string& path);

  /// Synthesizes a generator-registry family (gen/registry.hpp) and registers
  /// it under `name`. Throws std::invalid_argument for unknown families.
  std::shared_ptr<const Graph> generate(const std::string& name,
                                        const std::string& family, VertexId n,
                                        std::uint64_t seed);

  /// Explicitly removes `name`. Returns false if absent. In-flight queries
  /// holding the shared_ptr keep the graph alive.
  bool evict(const std::string& name);

  /// All resident entries, most recently used first.
  [[nodiscard]] std::vector<EntryInfo> list() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const Graph> graph;  ///< resident backend (may be null)
    std::shared_ptr<const storage::BlockedGraph> blocked;  ///< disk backend
    std::size_t bytes = 0;  ///< charge at insert time (stable per entry)
    std::uint64_t last_use = 0;
  };

  void insert_locked(const std::string& name, Entry entry)
      SMPST_REQUIRES(mutex_);
  void enforce_budget_locked(const std::string& keep) SMPST_REQUIRES(mutex_);

  const Options opts_;
  mutable Mutex mutex_{lockdep::rank::kGraphRegistry};
  std::map<std::string, Entry> entries_ SMPST_GUARDED_BY(mutex_);
  std::uint64_t tick_ SMPST_GUARDED_BY(mutex_) = 0;
  std::size_t resident_bytes_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t insertions_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ SMPST_GUARDED_BY(mutex_) = 0;
};

}  // namespace smpst::service
