// QueryExecutor — the serving loop that turns the invoke-once library into a
// long-lived query engine.
//
// Producers call submit(); requests flow through a bounded MPMC queue
// (admission control: reject-on-full, never unbounded buffering) to a fixed
// set of worker threads. Each worker owns one persistent sched::ThreadPool
// that is reused by every parallel query it executes — thread creation is
// paid once at startup, exactly the property the paper's benchmark harness
// relies on, now extended to a multi-tenant serving context. Deadlines are
// enforced three ways: pre-dispatch (an expired request is never run, so a
// 0 ms deadline deterministically times out), in-flight via the CancelToken
// hooks in the traversal loops, and by a watchdog thread that hard-cancels
// queries overrunning their deadline by more than watchdog_factor.
//
// Execution is exception-safe end to end: worker threads contain every
// exception (a thrown attempt is retried with backoff, then degraded to the
// sequential baseline, and only then surfaced as a typed kFailed outcome),
// and the promise behind every accepted request is always satisfied. With
// paranoid_validate, every successful forest is additionally checked against
// the validation oracle before being reported kOk. See docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "service/bounded_queue.hpp"
#include "service/graph_registry.hpp"
#include "service/query.hpp"
#include "service/service_stats.hpp"
#include "support/thread_annotations.hpp"

namespace smpst {
class CancelToken;
class ThreadPool;
}

namespace smpst::service {

struct ExecutorOptions {
  /// Concurrent query slots; each gets a dedicated worker thread + pool.
  std::size_t num_workers = 2;

  /// ThreadPool size per slot. 0 = hardware threads split evenly across
  /// slots (at least 1).
  std::size_t threads_per_query = 0;

  /// Bounded request-queue depth; submissions beyond it are rejected.
  std::size_t queue_capacity = 64;

  /// When true, workers do not dequeue until resume() — lets tests fill the
  /// queue deterministically.
  bool start_paused = false;

  /// Extra execution attempts after a thrown attempt (0 = fail fast). A
  /// CancelledError (deadline) is never retried.
  std::size_t max_retries = 2;

  /// Backoff before the first retry; doubles per retry, capped by any
  /// remaining deadline budget.
  std::size_t retry_backoff_ms = 1;

  /// After retries are exhausted, run the sequential BFS fallback instead of
  /// failing the query outright (parallel algorithms only).
  bool degrade_to_sequential = true;

  /// A query whose age exceeds watchdog_factor × its deadline is
  /// hard-cancelled by the watchdog thread. <= 1 disables the watchdog.
  double watchdog_factor = 4.0;

  /// Watchdog scan period.
  std::size_t watchdog_poll_ms = 5;

  /// Validate every successful result (even when the request did not ask);
  /// a forest that fails validation surfaces as kInvalid instead of kOk.
  bool paranoid_validate = false;
};

/// Point-in-time service counters plus the latency distribution.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;   ///< kError + kInvalidArgument + kFailed outcomes
  std::uint64_t invalid = 0;  ///< kInvalid (paranoid validation rejections)

  std::uint64_t retries = 0;           ///< retry attempts consumed
  std::uint64_t degraded = 0;          ///< queries served by the fallback
  std::uint64_t watchdog_cancels = 0;  ///< watchdog hard-cancellations

  LatencyHistogram::Snapshot latency;  ///< total_ms of executed requests
  GraphRegistry::Stats registry;
};

class QueryExecutor {
 public:
  /// The registry must outlive the executor.
  explicit QueryExecutor(GraphRegistry& registry, ExecutorOptions opts = {});

  /// Drains already-accepted requests, then joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Never blocks: a request the queue cannot take resolves immediately to
  /// kRejected. The future is always eventually satisfied.
  std::future<QueryResult> submit(SpanningTreeRequest req);

  /// Completion handler for the callback-based submit path. Invoked exactly
  /// once per request — from the worker thread that executed it, or inline
  /// from submit() for a rejected request. It must not block for long (it
  /// runs on the serving path) and must not re-enter the executor.
  using Completion = std::function<void(const QueryResult&)>;

  /// Event-driven submit for network front ends: no future, no waiting
  /// thread. `done` always fires, even on rejection (status kRejected) or
  /// executor shutdown. A throwing completion is contained and counted, never
  /// propagated.
  void submit(SpanningTreeRequest req, Completion done);

  /// Admits the batch atomically: either every request is queued or the whole
  /// batch is rejected (partial admission would make batch latency depend on
  /// its own rejected remainder).
  std::vector<std::future<QueryResult>> submit_batch(
      std::vector<SpanningTreeRequest> reqs);

  /// Callback flavor of submit_batch; `dones` must be the same length as
  /// `reqs` and every entry fires exactly once (kRejected inline when the
  /// batch does not fit).
  void submit_batch(std::vector<SpanningTreeRequest> reqs,
                    std::vector<Completion> dones);

  /// Runs an opaque task on a worker slot. Sessions use this to keep heavy
  /// admin commands (graph load/gen from disk, trace dumps) off the network
  /// loop thread — the loop must never block on file I/O or long compute.
  /// Tasks share the bounded queue with queries (same admission control) and
  /// count toward pending()/drain(), but not query stats. Returns false when
  /// the queue is full or closed; the caller then answers the client itself.
  /// A throwing task is contained, never propagated.
  [[nodiscard]] bool submit_task(std::function<void()> task);

  /// Releases workers when constructed with start_paused.
  void resume();

  /// Stops admissions, drains accepted requests, joins workers. Idempotent.
  void shutdown();

  /// Blocks until every accepted request has completed (its promise satisfied
  /// and completion invoked) or `timeout` elapses; does NOT stop admissions —
  /// the caller is expected to have stopped submitting. Returns true when the
  /// executor went idle within the deadline. The watchdog keeps hard-
  /// cancelling overrunning queries meanwhile, which is what bounds a drain
  /// of deadlined traffic.
  bool drain(std::chrono::milliseconds timeout);

  /// Requests currently queued (admission headroom = capacity - depth).
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_.capacity();
  }

  /// Accepted-but-not-completed requests (queued + in flight).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t threads_per_query() const noexcept {
    return threads_per_query_;
  }

 private:
  struct Item {
    SpanningTreeRequest req;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    Completion done;  ///< optional; invoked exactly once when set
    /// Offloaded admin work; when set, req/promise/done are unused and the
    /// worker runs the task instead of executing a query.
    std::function<void()> task;
  };

  /// Per-slot in-flight query descriptor, published for the watchdog.
  struct SlotWatch {
    Mutex mutex{lockdep::rank::kExecutorSlotWatch};
    /// Non-null while a deadlined query runs.
    CancelToken* token SMPST_GUARDED_BY(mutex) = nullptr;
    std::chrono::steady_clock::time_point hard_deadline
        SMPST_GUARDED_BY(mutex){};
    /// Watchdog fired on the current query.
    bool cancelled SMPST_GUARDED_BY(mutex) = false;
  };

  /// RAII registration of the running query with the slot's watch entry.
  class WatchGuard;

  void worker_loop(std::size_t slot);
  void watchdog_loop();
  QueryResult execute(Item& item, ThreadPool& pool, std::size_t slot);
  void wait_if_paused();
  void reject_inline(Item& item, std::string reason);
  void finish_pending();

  GraphRegistry& registry_;
  const ExecutorOptions opts_;
  std::size_t threads_per_query_ = 1;
  BoundedQueue<Item> queue_;

  Mutex pause_mutex_{lockdep::rank::kExecutorPause};
  CondVar pause_cv_;
  bool paused_ SMPST_GUARDED_BY(pause_mutex_) = false;

  std::atomic<bool> shut_down_{false};
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::vector<std::unique_ptr<SlotWatch>> watches_;
  std::vector<std::thread> workers_;

  Mutex watchdog_mutex_{lockdep::rank::kExecutorWatchdog};
  CondVar watchdog_cv_;
  bool watchdog_stop_ SMPST_GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;

  /// Accepted-but-not-completed count; drain() waits for it to hit zero.
  std::atomic<std::size_t> pending_{0};
  Mutex drain_mutex_{lockdep::rank::kExecutorDrain};
  CondVar drain_cv_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> served_ok_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> watchdog_cancels_{0};
  LatencyHistogram latency_;
};

}  // namespace smpst::service
