// QueryExecutor — the serving loop that turns the invoke-once library into a
// long-lived query engine.
//
// Producers call submit(); requests flow through a bounded MPMC queue
// (admission control: reject-on-full, never unbounded buffering) to a fixed
// set of worker threads. Each worker owns one persistent sched::ThreadPool
// that is reused by every parallel query it executes — thread creation is
// paid once at startup, exactly the property the paper's benchmark harness
// relies on, now extended to a multi-tenant serving context. Deadlines are
// enforced twice: pre-dispatch (an expired request is never run, so a 0 ms
// deadline deterministically times out) and in-flight via the CancelToken
// hooks in the traversal loops.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/bounded_queue.hpp"
#include "service/graph_registry.hpp"
#include "service/query.hpp"
#include "service/service_stats.hpp"

namespace smpst {
class ThreadPool;
}

namespace smpst::service {

struct ExecutorOptions {
  /// Concurrent query slots; each gets a dedicated worker thread + pool.
  std::size_t num_workers = 2;

  /// ThreadPool size per slot. 0 = hardware threads split evenly across
  /// slots (at least 1).
  std::size_t threads_per_query = 0;

  /// Bounded request-queue depth; submissions beyond it are rejected.
  std::size_t queue_capacity = 64;

  /// When true, workers do not dequeue until resume() — lets tests fill the
  /// queue deterministically.
  bool start_paused = false;
};

/// Point-in-time service counters plus the latency distribution.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;  ///< kError + kInvalidArgument outcomes

  LatencyHistogram::Snapshot latency;  ///< total_ms of executed requests
  GraphRegistry::Stats registry;
};

class QueryExecutor {
 public:
  /// The registry must outlive the executor.
  explicit QueryExecutor(GraphRegistry& registry, ExecutorOptions opts = {});

  /// Drains already-accepted requests, then joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Never blocks: a request the queue cannot take resolves immediately to
  /// kRejected. The future is always eventually satisfied.
  std::future<QueryResult> submit(SpanningTreeRequest req);

  /// Admits the batch atomically: either every request is queued or the whole
  /// batch is rejected (partial admission would make batch latency depend on
  /// its own rejected remainder).
  std::vector<std::future<QueryResult>> submit_batch(
      std::vector<SpanningTreeRequest> reqs);

  /// Releases workers when constructed with start_paused.
  void resume();

  /// Stops admissions, drains accepted requests, joins workers. Idempotent.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t threads_per_query() const noexcept {
    return threads_per_query_;
  }

 private:
  struct Item {
    SpanningTreeRequest req;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t slot);
  QueryResult execute(Item& item, ThreadPool& pool);
  void wait_if_paused();

  GraphRegistry& registry_;
  std::size_t threads_per_query_ = 1;
  BoundedQueue<Item> queue_;

  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  std::atomic<bool> shut_down_{false};
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> served_ok_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> failed_{0};
  LatencyHistogram latency_;
};

}  // namespace smpst::service
