#include "service/graph_registry.hpp"

#include <algorithm>
#include <utility>

#include "gen/registry.hpp"
#include "graph/io.hpp"
#include "storage/blocked_graph.hpp"
#include "support/failpoint.hpp"

namespace smpst::service {

void GraphRegistry::insert_locked(const std::string& name, Entry entry) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (!inserted) resident_bytes_ -= it->second.bytes;
  entry.last_use = ++tick_;
  resident_bytes_ += entry.bytes;
  it->second = std::move(entry);
  ++insertions_;
  enforce_budget_locked(name);
}

std::shared_ptr<const Graph> GraphRegistry::put(const std::string& name,
                                                Graph g) {
  SMPST_FAILPOINT("service.registry.put");
  auto stored = std::make_shared<const Graph>(std::move(g));
  Entry entry;
  entry.graph = stored;
  entry.bytes = stored->memory_bytes();
  LockGuard<Mutex> lk(mutex_);
  insert_locked(name, std::move(entry));
  return stored;
}

std::shared_ptr<const storage::BlockedGraph> GraphRegistry::open_blocked(
    const std::string& name, const std::string& path,
    const storage::BlockCacheOptions& cache_opts) {
  // Open outside the lock: header validation and cache setup touch the disk.
  auto stored = std::make_shared<const storage::BlockedGraph>(path, cache_opts);
  Entry entry;
  entry.blocked = stored;
  // The charge is the cache budget plus metadata — NOT the CSR payload. This
  // is what lets a graph bigger than the registry budget stay registered.
  entry.bytes = stored->memory_bytes();
  LockGuard<Mutex> lk(mutex_);
  insert_locked(name, std::move(entry));
  return stored;
}

std::shared_ptr<const Graph> GraphRegistry::get(const std::string& name) {
  SMPST_FAILPOINT("service.registry.get");
  LockGuard<Mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.graph == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_use = ++tick_;
  return it->second.graph;
}

GraphRegistry::GraphHandle GraphRegistry::get_any(const std::string& name) {
  SMPST_FAILPOINT("service.registry.get");
  LockGuard<Mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++misses_;
    return {};
  }
  ++hits_;
  it->second.last_use = ++tick_;
  return {it->second.graph, it->second.blocked};
}

std::shared_ptr<const Graph> GraphRegistry::load_file(const std::string& name,
                                                      const std::string& path) {
  // Build outside the lock: disk I/O and CSR construction are the slow part.
  return put(name, io::load_graph(path));
}

std::shared_ptr<const Graph> GraphRegistry::generate(const std::string& name,
                                                     const std::string& family,
                                                     VertexId n,
                                                     std::uint64_t seed) {
  return put(name, gen::make_family(family, n, seed));
}

bool GraphRegistry::evict(const std::string& name) {
  LockGuard<Mutex> lk(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  resident_bytes_ -= it->second.bytes;
  entries_.erase(it);
  ++evictions_;
  return true;
}

std::vector<GraphRegistry::EntryInfo> GraphRegistry::list() const {
  LockGuard<Mutex> lk(mutex_);
  std::vector<std::pair<std::uint64_t, EntryInfo>> with_tick;
  with_tick.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    EntryInfo info;
    info.name = name;
    info.bytes = entry.bytes;
    if (entry.graph != nullptr) {
      info.vertices = entry.graph->num_vertices();
      info.edges = entry.graph->num_edges();
    } else {
      info.vertices = entry.blocked->num_vertices();
      info.edges = entry.blocked->num_edges();
      info.blocked = true;
    }
    with_tick.push_back({entry.last_use, std::move(info)});
  }
  std::sort(with_tick.begin(), with_tick.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<EntryInfo> result;
  result.reserve(with_tick.size());
  for (auto& [tick, info] : with_tick) result.push_back(std::move(info));
  return result;
}

GraphRegistry::Stats GraphRegistry::stats() const {
  LockGuard<Mutex> lk(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  s.entries = entries_.size();
  return s;
}

void GraphRegistry::enforce_budget_locked(const std::string& keep) {
  if (opts_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > opts_.memory_budget_bytes && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace smpst::service
