// The latency histogram moved to the observability layer (obs/histogram.hpp)
// so it can back both the service's tail-latency report and the process-wide
// MetricsRegistry. This forwarding header keeps the historical service-layer
// spelling working; new code should include obs/histogram.hpp directly.
#pragma once

#include "obs/histogram.hpp"

namespace smpst::service {

using LatencyHistogram = ::smpst::obs::LatencyHistogram;

}  // namespace smpst::service
