// Bounded MPMC blocking queue — the admission-control buffer between request
// producers (submit() callers) and the executor's worker threads.
//
// Unlike sched/work_queue.hpp's SplitQueue (single-owner, steal-from-front,
// built for the traversal inner loop), this queue is a classic
// mutex-and-condvar channel: any thread may push, any thread may pop, and
// capacity is a hard bound — try_push never blocks, it reports "full" so the
// service can shed load instead of queueing unboundedly.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue. Returns false (and leaves `item` untouched) when
  /// the queue is full or closed.
  bool try_push(T&& item) {
    // Fault site before the item moves: a throw leaves `item` with the
    // caller, who can resolve its promise. submit() relies on this.
    SMPST_FAILPOINT("service.bounded_queue.push");
    {
      LockGuard<Mutex> lk(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// All-or-nothing bulk enqueue: either every item fits (and `items` is
  /// moved from) or none is taken. Backs atomic batch admission.
  bool try_push_all(std::vector<T>& items) {
    {
      LockGuard<Mutex> lk(mutex_);
      if (closed_ || items_.size() + items.size() > capacity_) return false;
      for (T& item : items) items_.push_back(std::move(item));
    }
    cv_.notify_all();
    return true;
  }

  /// Blocking dequeue. Returns false once the queue is closed *and* drained;
  /// items pushed before close() are still delivered.
  bool pop(T& out) {
    SMPST_FAILPOINT("service.bounded_queue.pop");
    LockGuard<Mutex> lk(mutex_);
    while (!closed_ && items_.empty()) cv_.wait(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admissions and wakes every blocked consumer.
  void close() {
    {
      LockGuard<Mutex> lk(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    LockGuard<Mutex> lk(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    LockGuard<Mutex> lk(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{lockdep::rank::kBoundedQueue};
  CondVar cv_;
  std::deque<T> items_ SMPST_GUARDED_BY(mutex_);
  bool closed_ SMPST_GUARDED_BY(mutex_) = false;
};

}  // namespace smpst::service
