#include "service/wire.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "service/executor.hpp"
#include "service/query.hpp"

namespace smpst::service {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw WireError("wire: " + what + " at column " + std::to_string(pos + 1));
}

struct JsonScanner {
  const std::string& s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= s.size()) fail("unexpected end of line", pos);
    return s[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos);
    ++pos;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= s.size()) fail("unterminated string", pos);
      const char c = s[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= s.size()) fail("dangling escape", pos);
      const char e = s[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: fail("unsupported escape", pos - 1);
      }
    }
  }

  /// Number, true/false, or null — returned in normalized string form.
  std::string scalar_value() {
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
           std::isspace(static_cast<unsigned char>(s[pos])) == 0) {
      ++pos;
    }
    std::string tok = s.substr(start, pos - start);
    if (tok.empty()) fail("expected a value", start);
    if (tok == "true") return "1";
    if (tok == "false") return "0";
    if (tok == "null") return "";
    // Validate as a JSON number so typos fail loudly.
    std::size_t i = 0;
    if (tok[i] == '-' || tok[i] == '+') ++i;
    bool digits = false;
    bool dot = false;
    bool exp = false;
    for (; i < tok.size(); ++i) {
      const char c = tok[i];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        digits = true;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
      } else if ((c == 'e' || c == 'E') && digits && !exp) {
        exp = true;
        if (i + 1 < tok.size() && (tok[i + 1] == '-' || tok[i + 1] == '+')) {
          ++i;
        }
      } else {
        fail("not a number: " + tok, start);
      }
    }
    if (!digits) fail("not a number: " + tok, start);
    return tok;
  }
};

Fields parse_json_object(const std::string& line) {
  JsonScanner sc{line};
  Fields fields;
  sc.skip_ws();
  sc.expect('{');
  sc.skip_ws();
  if (sc.peek() == '}') return fields;
  while (true) {
    sc.skip_ws();
    const std::string key = sc.string_value();
    sc.skip_ws();
    sc.expect(':');
    sc.skip_ws();
    fields[key] = sc.peek() == '"' ? sc.string_value() : sc.scalar_value();
    sc.skip_ws();
    if (sc.peek() == ',') {
      ++sc.pos;
      continue;
    }
    sc.expect('}');
    sc.skip_ws();
    if (sc.pos != line.size()) fail("trailing characters", sc.pos);
    return fields;
  }
}

Fields parse_word_form(const std::string& line) {
  Fields fields;
  std::size_t pos = 0;
  bool first = true;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
      ++pos;
    }
    if (pos >= line.size()) break;
    const std::size_t start = pos;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) == 0) {
      ++pos;
    }
    const std::string tok = line.substr(start, pos - start);
    const std::size_t eq = tok.find('=');
    if (first) {
      if (eq != std::string::npos) fail("first token must be the command",
                                        start);
      fields["cmd"] = tok;
      first = false;
    } else {
      if (eq == std::string::npos || eq == 0) {
        fail("expected key=value: " + tok, start);
      }
      fields[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }
  if (fields.empty()) fail("empty request", 0);
  return fields;
}

}  // namespace

Fields parse_line(const std::string& line) {
  if (line.size() > kMaxLineBytes) {
    throw WireError("wire: request line exceeds " +
                    std::to_string(kMaxLineBytes) + " bytes (got " +
                    std::to_string(line.size()) + ")");
  }
  std::size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  if (i < line.size() && line[i] == '{') return parse_json_object(line);
  return parse_word_form(line);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::raw(const std::string& name,
                            const std::string& rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + json_escape(name) + "\":" + rendered;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& name,
                              const std::string& value) {
  return raw(name, '"' + json_escape(value) + '"');
}

JsonWriter& JsonWriter::field(const std::string& name, const char* value) {
  return field(name, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, std::int64_t value) {
  return raw(name, std::to_string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, std::uint64_t value) {
  return raw(name, std::to_string(value));
}

JsonWriter& JsonWriter::field(const std::string& name, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return raw(name, buf);
}

JsonWriter& JsonWriter::field(const std::string& name, bool value) {
  return raw(name, value ? "true" : "false");
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

std::string render_error(WireErrorCode code, const std::string& message,
                         std::int64_t retry_after_ms) {
  JsonWriter w;
  w.field("ok", false);
  w.field("code", to_string(code));
  w.field("error", message);
  if (retry_after_ms >= 0) w.field("retry_after_ms", retry_after_ms);
  return w.str();
}

std::string render_result(const QueryResult& r) {
  JsonWriter w;
  w.field("status", to_string(r.status));
  w.field("graph", r.graph);
  w.field("algo", r.algorithm);
  if (!r.error.empty()) w.field("error", r.error);
  if (r.forest.num_vertices() > 0) {
    w.field("vertices", static_cast<std::uint64_t>(r.forest.num_vertices()));
    w.field("trees", static_cast<std::uint64_t>(r.num_trees));
  }
  if (r.validated) w.field("valid", r.validation.ok);
  // Robustness telemetry, emitted only when something unusual happened so
  // the common-case response shape stays unchanged.
  if (r.attempts > 1) {
    w.field("attempts", static_cast<std::uint64_t>(r.attempts));
  }
  if (r.degraded) w.field("degraded", true);
  if (r.watchdog_cancelled) w.field("watchdog_cancelled", true);
  // Gate on the request flag, not on whether stats data is present: a
  // stats=false query must get the plain response shape even when the run
  // left per-thread entries behind.
  if (r.stats_requested) {
    w.field("load_imbalance", r.stats.load_imbalance());
    w.field("steals", r.stats.total_steals());
    w.field("duplicate_expansions", r.stats.duplicate_expansions);
  }
  w.field("queue_ms", r.queue_ms);
  w.field("exec_ms", r.exec_ms);
  w.field("total_ms", r.total_ms);
  return w.str();
}

std::string render_stats(const ServiceStats& s) {
  JsonWriter w;
  w.field("submitted", s.submitted);
  w.field("accepted", s.accepted);
  w.field("rejected", s.rejected);
  w.field("served_ok", s.served_ok);
  w.field("timed_out", s.timed_out);
  w.field("not_found", s.not_found);
  w.field("failed", s.failed);
  w.field("invalid", s.invalid);
  w.field("retries", s.retries);
  w.field("degraded", s.degraded);
  w.field("watchdog_cancels", s.watchdog_cancels);
  w.field("latency_count", s.latency.count);
  w.field("latency_mean_ms", s.latency.mean_ms);
  w.field("latency_p50_ms", s.latency.percentile(50));
  w.field("latency_p95_ms", s.latency.percentile(95));
  w.field("latency_p99_ms", s.latency.percentile(99));
  w.field("latency_p999_ms", s.latency.percentile(99.9));
  w.field("registry_entries", static_cast<std::uint64_t>(s.registry.entries));
  w.field("registry_bytes",
          static_cast<std::uint64_t>(s.registry.resident_bytes));
  w.field("registry_hit_rate", s.registry.hit_rate());
  w.field("registry_evictions", s.registry.evictions);
  return w.str();
}

std::string render_metrics(const obs::MetricsRegistry::Snapshot& m) {
  JsonWriter w;
  for (const auto& c : m.counters) w.field(c.name, c.value);
  for (const auto& g : m.gauges) w.field(g.name, g.value);
  for (const auto& h : m.histograms) {
    w.field(h.name + ".count", h.snapshot.count);
    w.field(h.name + ".mean_ms", h.snapshot.mean_ms);
    w.field(h.name + ".p50_ms", h.snapshot.percentile(50));
    w.field(h.name + ".p95_ms", h.snapshot.percentile(95));
    w.field(h.name + ".p99_ms", h.snapshot.percentile(99));
    w.field(h.name + ".p999_ms", h.snapshot.percentile(99.9));
  }
  return w.str();
}

}  // namespace smpst::service
