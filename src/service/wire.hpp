// Line protocol of the smpst_serve front end.
//
// One request per line, in either of two equivalent shapes:
//   {"cmd":"query","graph":"g1","algo":"bader-cong","timeout":50}
//   query graph=g1 algo=bader-cong timeout=50
// Requests parse to a flat string->string field map (the executor's types do
// the real typing); responses are emitted as one flat JSON object per line.
// The JSON subset is deliberately small — flat objects, string/number/bool/
// null values, standard string escapes — so the server needs no third-party
// dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace smpst::service {

struct QueryResult;
struct ServiceStats;

using Fields = std::map<std::string, std::string>;

/// Malformed request line (bad syntax, oversized input). Derives from
/// std::invalid_argument so pre-existing catch sites keep working.
class WireError : public std::invalid_argument {
 public:
  explicit WireError(const std::string& what) : std::invalid_argument(what) {}
};

/// Hard cap on request-line length; longer lines are rejected up front so a
/// hostile client cannot make the parser chew an unbounded buffer.
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 16;

/// Parses one request line (JSON object or "cmd key=value ..." form) into a
/// field map; the command word lands under key "cmd". Booleans normalize to
/// "1"/"0"; null to "". Throws WireError on malformed input.
Fields parse_line(const std::string& line);

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Accumulates one flat JSON object, e.g.
///   JsonWriter w; w.field("status", "ok"); w.field("ms", 1.25); w.str()
class JsonWriter {
 public:
  JsonWriter& field(const std::string& name, const std::string& value);
  JsonWriter& field(const std::string& name, const char* value);
  JsonWriter& field(const std::string& name, std::int64_t value);
  JsonWriter& field(const std::string& name, std::uint64_t value);
  JsonWriter& field(const std::string& name, double value);
  JsonWriter& field(const std::string& name, bool value);

  /// The completed object, "{...}".
  [[nodiscard]] std::string str() const;

 private:
  JsonWriter& raw(const std::string& name, const std::string& rendered);
  std::string body_;
};

/// One response line for a query result. Per-run traversal stats fields
/// (load_imbalance, steals, duplicate_expansions) are emitted only when the
/// REQUEST asked for them (r.stats_requested), never merely because the
/// result object happens to carry populated per-thread data.
std::string render_result(const QueryResult& r);

/// One response line for the `stats` command: service counters, tail-latency
/// percentiles, registry occupancy.
std::string render_stats(const ServiceStats& s);

/// One response line for the `metrics` command: every registered counter and
/// gauge by name, histograms flattened to <name>.count / <name>.mean_ms /
/// <name>.p50_ms / <name>.p95_ms / <name>.p99_ms. Flat JSON, so parse_line
/// round-trips it.
std::string render_metrics(const obs::MetricsRegistry::Snapshot& m);

}  // namespace smpst::service
