// Line protocol of the smpst_serve front end.
//
// One request per line, in either of two equivalent shapes:
//   {"cmd":"query","graph":"g1","algo":"bader-cong","timeout":50}
//   query graph=g1 algo=bader-cong timeout=50
// Requests parse to a flat string->string field map (the executor's types do
// the real typing); responses are emitted as one flat JSON object per line.
// The JSON subset is deliberately small — flat objects, string/number/bool/
// null values, standard string escapes — so the server needs no third-party
// dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace smpst::service {

struct QueryResult;
struct ServiceStats;

using Fields = std::map<std::string, std::string>;

/// Malformed request line (bad syntax, oversized input). Derives from
/// std::invalid_argument so pre-existing catch sites keep working.
class WireError : public std::invalid_argument {
 public:
  explicit WireError(const std::string& what) : std::invalid_argument(what) {}
};

/// Machine-readable error classes for failure response lines. Every error
/// response carries `"ok":false` plus `"code":"<one of these>"`, so clients
/// branch on the code instead of string-matching prose:
///   kBadRequest    the line parsed or validated wrong; retrying is pointless
///   kTooLarge      the request line exceeded kMaxLineBytes; the rest of the
///                  oversized line was discarded and the stream resynchronized
///                  at the next newline
///   kOverloaded    admission control shed the request (executor queue full
///                  or connection cap); retry after `retry_after_ms`
///   kShuttingDown  the server is draining; finish reading responses for
///                  requests already accepted, then reconnect elsewhere
///   kInternal      contained server-side fault (e.g. injected); the
///                  connection survives, the request did not
enum class WireErrorCode : std::uint8_t {
  kBadRequest,
  kTooLarge,
  kOverloaded,
  kShuttingDown,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(WireErrorCode c) noexcept {
  switch (c) {
    case WireErrorCode::kBadRequest: return "bad-request";
    case WireErrorCode::kTooLarge: return "too-large";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kShuttingDown: return "shutting-down";
    case WireErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// One typed error response line: {"ok":false,"code":...,"error":...} plus
/// "retry_after_ms" when `retry_after_ms` >= 0 (the shed/backoff hint).
std::string render_error(WireErrorCode code, const std::string& message,
                         std::int64_t retry_after_ms = -1);

/// Hard cap on request-line length; longer lines are rejected up front so a
/// hostile client cannot make the parser chew an unbounded buffer.
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 16;

/// Parses one request line (JSON object or "cmd key=value ..." form) into a
/// field map; the command word lands under key "cmd". Booleans normalize to
/// "1"/"0"; null to "". Throws WireError on malformed input.
Fields parse_line(const std::string& line);

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Accumulates one flat JSON object, e.g.
///   JsonWriter w; w.field("status", "ok"); w.field("ms", 1.25); w.str()
class JsonWriter {
 public:
  JsonWriter& field(const std::string& name, const std::string& value);
  JsonWriter& field(const std::string& name, const char* value);
  JsonWriter& field(const std::string& name, std::int64_t value);
  JsonWriter& field(const std::string& name, std::uint64_t value);
  JsonWriter& field(const std::string& name, double value);
  JsonWriter& field(const std::string& name, bool value);

  /// The completed object, "{...}".
  [[nodiscard]] std::string str() const;

 private:
  JsonWriter& raw(const std::string& name, const std::string& rendered);
  std::string body_;
};

/// One response line for a query result. Per-run traversal stats fields
/// (load_imbalance, steals, duplicate_expansions) are emitted only when the
/// REQUEST asked for them (r.stats_requested), never merely because the
/// result object happens to carry populated per-thread data.
std::string render_result(const QueryResult& r);

/// One response line for the `stats` command: service counters, tail-latency
/// percentiles, registry occupancy.
std::string render_stats(const ServiceStats& s);

/// One response line for the `metrics` command: every registered counter and
/// gauge by name, histograms flattened to <name>.count / <name>.mean_ms /
/// <name>.p50_ms / <name>.p95_ms / <name>.p99_ms / <name>.p999_ms. Flat
/// JSON, so parse_line round-trips it.
std::string render_metrics(const obs::MetricsRegistry::Snapshot& m);

}  // namespace smpst::service
