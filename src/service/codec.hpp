// Incremental line framing shared by every front end of the query service.
//
// Both the stdin loop and the TCP server speak "one request per line"; this
// codec is the single hardened path that turns an arbitrary byte stream into
// framed lines. Its robustness properties:
//
//   - the internal buffer is bounded by the wire line cap (kMaxLineBytes):
//     a client that never sends '\n' cannot grow server memory;
//   - an oversized line is reported exactly once (Event::kOversized) and the
//     stream resynchronizes at the next newline — one typed `too-large`
//     response per oversized request, connection survives;
//   - '\r' before '\n' is stripped, so telnet/CRLF clients work;
//   - a final unterminated line is recoverable at EOF via take_partial()
//     (getline semantics: EOF terminates the last line).
//
// Not thread-safe: one codec per connection, driven by its reader.
#pragma once

#include <cstddef>
#include <string>

#include "service/wire.hpp"

namespace smpst::service {

class LineCodec {
 public:
  explicit LineCodec(std::size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  enum class Event {
    kNone,       ///< no complete line buffered; feed more bytes
    kLine,       ///< `out` holds one complete line (newline stripped)
    kOversized,  ///< a line exceeded the cap; its bytes are being discarded
  };

  /// Appends raw bytes from the transport.
  void feed(const char* data, std::size_t len);

  /// Extracts the next framing event. Call repeatedly until kNone.
  /// kOversized is reported once per oversized line, at the moment the cap
  /// is crossed; the line's remaining bytes (through its newline) are
  /// silently discarded as they arrive.
  Event next(std::string& out);

  /// Bytes currently buffered (the partial line in progress).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  /// True while discarding the tail of an oversized line.
  [[nodiscard]] bool discarding() const noexcept { return discarding_; }

  /// Surrenders the trailing unterminated line (for EOF handling). Empty when
  /// the stream ended cleanly on a newline or mid-discard.
  [[nodiscard]] std::string take_partial();

  /// Bytes observed so far of the line behind the most recent kOversized
  /// (grows while its tail is still being discarded). Informational.
  [[nodiscard]] std::size_t last_oversized_bytes() const noexcept {
    return oversized_bytes_;
  }

 private:
  const std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t scan_from_ = 0;   ///< no '\n' before this offset
  bool discarding_ = false;  ///< inside an oversized line's tail
  std::size_t oversized_bytes_ = 0;
};

}  // namespace smpst::service
