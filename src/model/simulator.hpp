// SMP execution simulator: replays *measured* per-thread event counts from an
// instrumented run through the machine cost parameters, producing the
// predicted wall time the same execution would take on a machine with p real
// processors. This is the substitution device (DESIGN.md §5) that lets a
// single-core container reproduce the *shape* of the paper's speedup figures:
// the algorithms, races, steal traffic, and work distribution are all real —
// only the final time synthesis assumes p hardware processors.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instrumentation.hpp"
#include "model/cost_model.hpp"

namespace smpst::model {

/// Predicted time for a traversal run: the slowest thread's memory+op cost
/// (threads run concurrently on a real SMP) plus the serial stub phase and
/// the barrier overhead.
double simulate_traversal_seconds(const TraversalStats& stats,
                                  const MachineParams& machine);

/// Predicted time for an SV run from its measured iteration structure.
double simulate_sv_seconds(const SvStats& stats, VertexId n, EdgeId m,
                           std::size_t p, const MachineParams& machine);

/// Predicted sequential BFS time.
double simulate_bfs_seconds(VertexId n, EdgeId m, const MachineParams& machine);

/// Convenience: predicted speedup of a traversal run over sequential BFS on
/// the same instance.
double simulated_speedup(const TraversalStats& stats, VertexId n, EdgeId m,
                         const MachineParams& machine);

}  // namespace smpst::model
