// The Helman–JáJá SMP complexity model used in §3 of the paper.
//
// A computation is summarized by the triple T(n,p) = <T_M ; T_C ; B>:
//   T_M  maximum number of non-contiguous main-memory accesses by any
//        processor (each is likely a cache miss),
//   T_C  upper bound on any processor's local computation,
//   B    number of barrier synchronizations.
//
// This module provides (a) the closed-form triples the paper derives for the
// sequential baseline, the new traversal algorithm, and Shiloach–Vishkin,
// and (b) a machine-parameter evaluator that converts a triple into seconds
// for a configurable SMP. The evaluator doubles as our Sun E4500 *simulator*:
// this container exposes a single hardware core, so the figure-shape
// reproduction (who wins, by what factor, how curves scale with p) is driven
// through these predictions, parameterized with E4500-like latencies, while
// the real multithreaded runs validate correctness (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.hpp"

namespace smpst::model {

struct CostTriple {
  double mem_accesses = 0.0;  ///< T_M: non-contiguous accesses (per processor)
  double local_ops = 0.0;     ///< T_C: local computation (per processor)
  double barriers = 0.0;      ///< B

  CostTriple& operator+=(const CostTriple& o) {
    mem_accesses += o.mem_accesses;
    local_ops += o.local_ops;
    barriers += o.barriers;
    return *this;
  }
};

struct MachineParams {
  std::string name;
  double noncontig_access_ns;  ///< cost of a cache-missing access
  double local_op_ns;          ///< cost of one unit of local work
  double barrier_ns;           ///< cost of one barrier episode
};

/// Sun Enterprise 4500 (the paper's testbed): 400 MHz UltraSPARC II, ~270 ns
/// observed remote-memory latency, software barriers in the tens of
/// microseconds.
MachineParams sun_e4500();

/// A contemporary commodity multicore for comparison.
MachineParams modern_smp();

/// Seconds predicted for one processor executing `cost` on `machine`.
double predict_seconds(const CostTriple& cost, const MachineParams& machine);

/// Sequential BFS baseline: one non-contiguous access per vertex, two per
/// edge (fetch adjacency + touch colour/parent), no barriers.
CostTriple bfs_cost(VertexId n, EdgeId m);

/// The paper's bound for the new algorithm:
///   T(n,p) <= <n/p + 2m/p + O(p) ; O((n+m)/p) ; 2>.
CostTriple bader_cong_cost(VertexId n, EdgeId m, std::size_t p);

/// The paper's per-iteration SV cost; `iterations` is measured (or log n for
/// the worst case). Each iteration: two graft passes at 2(m/p)+1
/// non-contiguous accesses each, plus shortcut passes of n/p accesses each,
/// with 4 barriers per iteration.
CostTriple sv_cost(VertexId n, EdgeId m, std::size_t p,
                   std::uint64_t iterations,
                   std::uint64_t shortcut_passes_per_iter);

/// Worst-case SV triple with log n iterations (the paper's headline bound).
CostTriple sv_worst_case_cost(VertexId n, EdgeId m, std::size_t p);

}  // namespace smpst::model
