#include "model/virtual_smp.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::model {

namespace {

/// FIFO frontier queue of one virtual processor (pop front, push back,
/// steal-from-front like the real SplitQueue).
class VQueue {
 public:
  [[nodiscard]] std::size_t size() const noexcept {
    return buf_.size() - head_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  void push(VertexId v) { buf_.push_back(v); }

  VertexId pop() {
    SMPST_ASSERT(!empty());
    const VertexId v = buf_[head_++];
    maybe_compact();
    return v;
  }

  /// Moves up to `take` front elements into `thief`.
  std::size_t steal_into(VQueue& thief, std::size_t take) {
    take = std::min(take, size());
    for (std::size_t i = 0; i < take; ++i) thief.push(buf_[head_ + i]);
    head_ += take;
    maybe_compact();  // the victim may never pop again; reclaim here too
    return take;
  }

 private:
  void maybe_compact() {
    if (head_ > 1024 && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<VertexId> buf_;
  std::size_t head_ = 0;
};

}  // namespace

double VirtualRunResult::seconds_on(const MachineParams& machine) const {
  // One cost unit = one non-contiguous access plus its bookkeeping op.
  const double unit_ns = machine.noncontig_access_ns + machine.local_op_ns;
  const double serial = static_cast<double>(stub_cost) * unit_ns;
  const double parallel = makespan * unit_ns;
  const double barriers = 2.0 * machine.barrier_ns;
  return (serial + parallel + barriers) * 1e-9;
}

double VirtualRunResult::load_imbalance() const {
  if (per_thread.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (const auto& t : per_thread) {
    max = std::max(max, t.vertices_processed);
    sum += t.vertices_processed;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max) /
         (static_cast<double>(sum) / static_cast<double>(per_thread.size()));
}

VirtualRunResult virtual_traversal(const Graph& g,
                                   const VirtualRunOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p = std::max<std::size_t>(1, opts.processors);

  VirtualRunResult result;
  result.per_thread.resize(p);
  result.clocks.assign(p, 0.0);
  if (n == 0) return result;

  std::vector<std::uint8_t> colored(n, 0);
  std::vector<VQueue> queues(p);
  Xoshiro256 walk_rng(derive_stream_seed(opts.seed, 0xabc));
  std::vector<Xoshiro256> vp_rng;
  vp_rng.reserve(p);
  for (std::size_t t = 0; t < p; ++t) {
    vp_rng.emplace_back(derive_stream_seed(opts.seed, 0x1000 + t));
  }

  // ---- Phase 1: stub spanning tree (serial; 2 units per walk step). ----
  const std::size_t steps = opts.stub_steps != 0 ? opts.stub_steps : 2 * p;
  const auto start = static_cast<VertexId>(walk_rng.next_bounded(n));
  std::vector<VertexId> stub;
  stub.push_back(start);
  colored[start] = 1;
  VertexId cur = start;
  for (std::size_t s = 0; s < steps; ++s) {
    const auto nbrs = g.neighbors(cur);
    if (nbrs.empty()) break;
    const VertexId next =
        nbrs[static_cast<std::size_t>(walk_rng.next_bounded(nbrs.size()))];
    if (!colored[next]) {
      colored[next] = 1;
      stub.push_back(next);
    }
    cur = next;
  }
  for (std::size_t i = 0; i < stub.size(); ++i) queues[i % p].push(stub[i]);
  result.stub_vertices = stub.size();
  result.stub_cost = 2 * steps;

  // ---- Phase 2: event-driven traversal on p virtual processors. ----
  std::size_t pending = stub.size();  // queued-but-unprocessed vertices
  VertexId cursor = 0;                // next-component root scan

  const auto min_clock_vp = [&]() {
    std::size_t best = 0;
    for (std::size_t t = 1; t < p; ++t) {
      if (result.clocks[t] < result.clocks[best]) best = t;
    }
    return best;
  };

  for (;;) {
    if (pending == 0) {
      // Claim the next uncoloured vertex as a new component root (done by
      // the least-busy processor, as the shared-cursor race would resolve).
      while (cursor < n && colored[cursor]) ++cursor;
      if (cursor >= n) break;  // everything coloured and processed
      const std::size_t t = min_clock_vp();
      colored[cursor] = 1;
      queues[t].push(cursor);
      ++pending;
      ++result.per_thread[t].roots_claimed;
      result.clocks[t] += 1.0;
      continue;
    }

    const std::size_t t = min_clock_vp();
    auto& ts = result.per_thread[t];
    if (!queues[t].empty()) {
      const VertexId v = queues[t].pop();
      const auto nbrs = g.neighbors(v);
      for (VertexId w : nbrs) {
        if (!colored[w]) {
          colored[w] = 1;
          queues[t].push(w);
          ++pending;
          ++ts.enqueues;
        }
      }
      --pending;
      ++ts.vertices_processed;
      ts.edges_scanned += nbrs.size();
      // 1 access per vertex + 1 per directed scan (the colour probe; the
      // adjacency read itself is contiguous CSR). Summed over the run this
      // is n + 2m — exactly the paper's T_M <= n/p + 2m/p accounting, and
      // consistent with bfs_cost() so simulated speedups are comparable.
      result.clocks[t] += 1.0 + static_cast<double>(nbrs.size());
    } else {
      // Steal attempt: random victim, take half its queue.
      ++ts.steal_attempts;
      result.clocks[t] += opts.steal_probe_cost;
      if (p > 1) {
        const auto victim =
            static_cast<std::size_t>(vp_rng[t].next_bounded(p));
        if (victim != t && !queues[victim].empty()) {
          // A thief takes at most half the victim's queue ("steals part of
          // the queue"): emptying a busy processor entirely makes work
          // slosh between idle thieves without being processed.
          const std::size_t half =
              std::max<std::size_t>(1, queues[victim].size() / 2);
          const std::size_t chunk =
              opts.steal_chunk != 0 ? std::min(opts.steal_chunk, half) : half;
          const std::size_t took = queues[victim].steal_into(queues[t], chunk);
          if (took > 0) {
            ++ts.steals_succeeded;
            ts.items_stolen += took;
            result.clocks[t] += static_cast<double>(took);
          }
        }
      }
    }
  }

  result.makespan = *std::max_element(result.clocks.begin(), result.clocks.end());
  for (double c : result.clocks) result.total_work += c;
  return result;
}

}  // namespace smpst::model
