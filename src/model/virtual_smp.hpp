// Deterministic virtual-SMP execution of the Bader–Cong traversal.
//
// Running the real multithreaded implementation on this single-core container
// is the correctness vehicle, but its *load balance* is distorted: the host
// scheduler lets one OS thread race far ahead before the others ever run, so
// instrumented per-thread counters do not reflect what p simultaneous
// processors would do. This module therefore executes the same algorithm —
// stub random walk, per-processor BFS queues, steal-half-from-a-random-victim
// — on p *virtual* processors driven by an event-driven scheduler: each
// virtual processor carries a clock in abstract cost units (1 unit per
// non-contiguous access, following the Helman–JáJá accounting: 1 per vertex
// dequeue + 2 per edge scan), and the next step always goes to the processor
// with the smallest clock, exactly as if they ran concurrently. The makespan
// (maximum clock) times the machine's access latency gives the simulated
// wall time on a p-processor SMP such as the paper's Sun E4500.
//
// The simulation is sequential and deterministic given the seed.
#pragma once

#include <cstdint>

#include "core/instrumentation.hpp"
#include "graph/graph.hpp"
#include "model/cost_model.hpp"

namespace smpst::model {

struct VirtualRunOptions {
  std::size_t processors = 8;
  std::size_t stub_steps = 0;    ///< 0 = 2p, as in the real implementation
  std::size_t steal_chunk = 0;   ///< 0 = half the victim's queue
  std::uint64_t seed = 0x5eed;
  double steal_probe_cost = 8.0; ///< abstract units per steal attempt
};

struct VirtualRunResult {
  std::vector<ThreadStats> per_thread;
  std::vector<double> clocks;    ///< per-processor cost units consumed
  double makespan = 0.0;         ///< max clock (parallel completion time)
  double total_work = 0.0;       ///< sum of clocks (serialized work)
  std::uint64_t stub_vertices = 0;
  std::uint64_t stub_cost = 0;   ///< serial units before the parallel phase

  /// Simulated seconds on `machine`: serial stub + parallel makespan +
  /// the traversal's two barriers.
  [[nodiscard]] double seconds_on(const MachineParams& machine) const;

  /// max/mean of per-processor work; 1.0 = perfectly balanced.
  [[nodiscard]] double load_imbalance() const;
};

/// Executes the traversal on `p` virtual processors. The returned statistics
/// are deterministic for a given (graph, options) pair.
VirtualRunResult virtual_traversal(const Graph& g,
                                   const VirtualRunOptions& opts);

}  // namespace smpst::model
