#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace smpst::model {

MachineParams sun_e4500() {
  return {"Sun E4500 (14x 400MHz UltraSPARC II)",
          /*noncontig_access_ns=*/270.0,
          /*local_op_ns=*/2.5,
          /*barrier_ns=*/20000.0};
}

MachineParams modern_smp() {
  return {"modern commodity SMP",
          /*noncontig_access_ns=*/80.0,
          /*local_op_ns=*/0.4,
          /*barrier_ns=*/3000.0};
}

double predict_seconds(const CostTriple& cost, const MachineParams& machine) {
  const double ns = cost.mem_accesses * machine.noncontig_access_ns +
                    cost.local_ops * machine.local_op_ns +
                    cost.barriers * machine.barrier_ns;
  return ns * 1e-9;
}

CostTriple bfs_cost(VertexId n, EdgeId m) {
  CostTriple c;
  c.mem_accesses = static_cast<double>(n) + 2.0 * static_cast<double>(m);
  c.local_ops = static_cast<double>(n) + static_cast<double>(m);
  c.barriers = 0.0;
  return c;
}

CostTriple bader_cong_cost(VertexId n, EdgeId m, std::size_t p) {
  const auto dp = static_cast<double>(p);
  CostTriple c;
  // Stub phase: O(p) accesses by one processor; traversal: one access per
  // vertex plus two per edge, spread over p processors.
  c.mem_accesses = static_cast<double>(n) / dp +
                   2.0 * static_cast<double>(m) / dp + 2.0 * dp;
  c.local_ops = (static_cast<double>(n) + static_cast<double>(m)) / dp;
  c.barriers = 2.0;
  return c;
}

CostTriple sv_cost(VertexId n, EdgeId m, std::size_t p,
                   std::uint64_t iterations,
                   std::uint64_t shortcut_passes_per_iter) {
  const auto dp = static_cast<double>(p);
  const auto it = static_cast<double>(std::max<std::uint64_t>(1, iterations));
  const auto sc =
      static_cast<double>(std::max<std::uint64_t>(1, shortcut_passes_per_iter));
  CostTriple c;
  // Per iteration: two graft passes, each 2 m/p + 1 non-contiguous accesses,
  // plus `sc` shortcut passes of 2 n/p accesses (read D[v], read D[D[v]]).
  const double graft_mem = 2.0 * (2.0 * static_cast<double>(m) / dp + 1.0);
  const double shortcut_mem = sc * 2.0 * static_cast<double>(n) / dp;
  c.mem_accesses = it * (graft_mem + shortcut_mem);
  c.local_ops =
      it * (static_cast<double>(m) / dp + sc * static_cast<double>(n) / dp);
  c.barriers = 4.0 * it;
  return c;
}

CostTriple sv_worst_case_cost(VertexId n, EdgeId m, std::size_t p) {
  const auto logn = static_cast<std::uint64_t>(
      std::ceil(std::log2(std::max<double>(2.0, n))));
  return sv_cost(n, m, p, logn, logn);
}

}  // namespace smpst::model
