#include "model/simulator.hpp"

#include <algorithm>

namespace smpst::model {

namespace {

/// Per-thread traversal cost from its event counts: one non-contiguous
/// access per processed vertex (dequeue + colour it), one per scanned
/// directed edge (the colour probe; n + 2m in total, the paper's T_M
/// accounting), plus steal overhead.
double thread_cost_seconds(const ThreadStats& t, const MachineParams& m) {
  const double mem = static_cast<double>(t.vertices_processed) +
                     static_cast<double>(t.edges_scanned) +
                     8.0 * static_cast<double>(t.steal_attempts) +
                     static_cast<double>(t.items_stolen);
  const double ops = static_cast<double>(t.vertices_processed) +
                     static_cast<double>(t.edges_scanned);
  return (mem * m.noncontig_access_ns + ops * m.local_op_ns) * 1e-9;
}

}  // namespace

double simulate_traversal_seconds(const TraversalStats& stats,
                                  const MachineParams& machine) {
  double slowest = 0.0;
  for (const auto& t : stats.per_thread) {
    slowest = std::max(slowest, thread_cost_seconds(t, machine));
  }
  // Stub phase is serial: two accesses per random-walk step (pick neighbour,
  // test colour). Two barriers bound the phase transitions.
  const double stub =
      2.0 * static_cast<double>(stats.stub_vertices) *
      machine.noncontig_access_ns * 1e-9;
  const double barriers = 2.0 * machine.barrier_ns * 1e-9;
  return stub + slowest + barriers;
}

double simulate_sv_seconds(const SvStats& stats, VertexId n, EdgeId m,
                           std::size_t p, const MachineParams& machine) {
  const std::uint64_t iters = std::max<std::uint64_t>(1, stats.iterations);
  const std::uint64_t sc_per_iter = std::max<std::uint64_t>(
      1, stats.shortcut_passes / std::max<std::uint64_t>(1, iters));
  return predict_seconds(sv_cost(n, m, p, iters, sc_per_iter), machine);
}

double simulate_bfs_seconds(VertexId n, EdgeId m,
                            const MachineParams& machine) {
  return predict_seconds(bfs_cost(n, m), machine);
}

double simulated_speedup(const TraversalStats& stats, VertexId n, EdgeId m,
                         const MachineParams& machine) {
  const double par = simulate_traversal_seconds(stats, machine);
  if (par <= 0.0) return 0.0;
  return simulate_bfs_seconds(n, m, machine) / par;
}

}  // namespace smpst::model
