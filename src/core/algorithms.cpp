#include "core/algorithms.hpp"

#include <stdexcept>

#include "sched/thread_pool.hpp"
#include "storage/blocked_graph.hpp"

namespace smpst {

const std::vector<AlgorithmSpec>& algorithms() {
  static const std::vector<AlgorithmSpec> kAlgorithms = {
      {"bfs", "sequential breadth-first traversal (paper's baseline)", false},
      {"dfs", "sequential depth-first traversal", false},
      {"bader-cong", "stub tree + work-stealing traversal (the paper)", true},
      {"sv", "Shiloach-Vishkin, election grafting", true},
      {"sv-lock", "Shiloach-Vishkin, lock grafting", true},
      {"hcs", "Hirschberg-Chandra-Sarwate, min-neighbour hooking", true},
      {"parallel-bfs", "level-synchronous parallel BFS (modern baseline)",
       true},
  };
  return kAlgorithms;
}

bool is_algorithm(const std::string& name) {
  for (const auto& a : algorithms()) {
    if (a.name == name) return true;
  }
  return false;
}

SpanningForest run_algorithm(const std::string& name, const Graph& g,
                             ThreadPool& pool, std::uint64_t seed) {
  RunOptions opts;
  opts.seed = seed;
  return run_algorithm(name, g, pool, opts);
}

SpanningForest run_algorithm(const std::string& name, const Graph& g,
                             ThreadPool& pool, const RunOptions& run) {
  if (name == "bfs") return bfs_spanning_tree(g, 0, run.cancel);
  if (name == "dfs") return dfs_spanning_tree(g, 0, run.cancel);
  if (name == "bader-cong") {
    BaderCongOptions opts;
    opts.seed = run.seed;
    opts.cancel = run.cancel;
    opts.stats = run.stats;
    return bader_cong_spanning_tree(g, pool, opts);
  }
  if (name == "sv") {
    SvOptions opts;
    opts.cancel = run.cancel;
    return sv_spanning_tree(g, pool, opts);
  }
  if (name == "sv-lock") {
    SvOptions opts;
    opts.use_locks = true;
    opts.cancel = run.cancel;
    return sv_spanning_tree(g, pool, opts);
  }
  if (name == "hcs") {
    HcsOptions opts;
    opts.cancel = run.cancel;
    return hcs_spanning_tree(g, pool, opts);
  }
  if (name == "parallel-bfs") {
    ParallelBfsOptions opts;
    opts.cancel = run.cancel;
    return parallel_bfs_spanning_tree(g, pool, opts);
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

bool algorithm_supports_blocked(const std::string& name) {
  return name == "bfs" || name == "bader-cong" || name == "sv" ||
         name == "sv-lock" || name == "parallel-bfs";
}

SpanningForest run_algorithm(const std::string& name,
                             const storage::BlockedGraph& g, ThreadPool& pool,
                             const RunOptions& run) {
  if (name == "bfs") return bfs_spanning_tree(g, 0, run.cancel);
  if (name == "bader-cong") {
    BaderCongOptions opts;
    opts.seed = run.seed;
    opts.cancel = run.cancel;
    opts.stats = run.stats;
    return bader_cong_spanning_tree(g, pool, opts);
  }
  if (name == "sv") {
    SvOptions opts;
    opts.cancel = run.cancel;
    return sv_spanning_tree(g, pool, opts);
  }
  if (name == "sv-lock") {
    SvOptions opts;
    opts.use_locks = true;
    opts.cancel = run.cancel;
    return sv_spanning_tree(g, pool, opts);
  }
  if (name == "parallel-bfs") {
    ParallelBfsOptions opts;
    opts.cancel = run.cancel;
    return parallel_bfs_spanning_tree(g, pool, opts);
  }
  if (is_algorithm(name)) {
    throw std::invalid_argument("algorithm \"" + name +
                                "\" has no blocked-backend implementation");
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace smpst
