#include "core/dfs.hpp"

#include "support/assert.hpp"

namespace smpst {

SpanningForest dfs_spanning_tree(const Graph& g, VertexId source,
                                 const CancelToken* cancel) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(source < n || n == 0, "dfs_spanning_tree: source out of range");

  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  if (n == 0) return forest;
  if (cancel != nullptr) cancel->poll();

  // Explicit stack of (vertex, next-neighbour-offset) frames.
  struct Frame {
    VertexId v;
    EdgeId next;
  };
  std::vector<Frame> stack;
  std::size_t steps = 0;

  auto run = [&](VertexId s) {
    forest.parent[s] = s;
    stack.push_back({s, g.offsets()[s]});
    while (!stack.empty()) {
      if (cancel != nullptr && (steps++ & 0xfff) == 0) cancel->poll();
      // Work on a copy of the cursor: pushing a child frame may reallocate
      // the stack and invalidate references into it.
      const VertexId v = stack.back().v;
      const EdgeId end = g.offsets()[v + 1];
      EdgeId next = stack.back().next;
      bool descended = false;
      while (next < end) {
        const VertexId w = g.targets()[next++];
        if (forest.parent[w] == kInvalidVertex) {
          forest.parent[w] = v;
          stack.back().next = next;
          stack.push_back({w, g.offsets()[w]});
          descended = true;
          break;
        }
      }
      if (!descended) stack.pop_back();
    }
  };

  run(source);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] == kInvalidVertex) run(v);
  }
  return forest;
}

}  // namespace smpst
