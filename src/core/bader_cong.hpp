// The paper's new randomized spanning tree algorithm for SMPs.
//
// Phase 1 (stub spanning tree): one processor random-walks the graph for
// O(p) steps; the distinct vertices discovered form a small connected stub
// tree and are dealt round-robin into the p processors' queues.
//
// Phase 2 (work-stealing traversal): each processor runs the sequential-style
// BFS loop of Alg. 1 over its own queue, colouring vertices with its label
// and writing parent pointers. The colour check/set is deliberately not
// atomic read-modify-write: two processors may both claim a vertex, which is
// benign — the vertex's parent ends up as one of the racing writers, either
// of which yields a valid tree (§2, Fig. 1). An idle processor steals the
// front portion of a random victim's queue. Termination is exact via a
// pending-work counter. The paper's detection mechanism is implemented too:
// processors that cannot steal sleep on a gate, and when enough of them sleep
// while work is still pending the traversal halts and the partially grown
// forest is merged and finished by Shiloach–Vishkin.
//
// Disconnected inputs are handled by claiming a new root (atomically, via a
// shared cursor) whenever the pending counter drains with vertices left
// uncoloured, so the result is always a spanning forest of the whole graph.
#pragma once

#include <chrono>
#include <cstdint>

#include "core/cancellation.hpp"
#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst {

class ThreadPool;

struct BaderCongOptions {
  /// Number of worker threads p. 0 = hardware_threads().
  std::size_t num_threads = 0;

  /// Random-walk length for the stub tree. 0 = auto (2p steps, the paper's
  /// O(p)).
  std::size_t stub_steps = 0;

  /// Max items a thief takes per steal. 0 = auto: half the victim's queue
  /// ("steals part of the queue").
  std::size_t steal_chunk = 0;

  /// Failed victim probes before an idle processor sleeps. 0 = auto (2p).
  std::size_t steal_attempts = 0;

  /// Sleep duration on the idle gate.
  std::chrono::microseconds idle_sleep{100};

  /// The detection mechanism's threshold: fraction of processors that must be
  /// asleep (while work is pending and unstealable) to trigger the fallback.
  double starvation_fraction = 0.9;

  /// Consecutive failed sleep rounds a thread must observe before it counts
  /// the situation as starvation (guards against spurious triggers on
  /// oversubscribed hosts).
  std::size_t starvation_patience = 8;

  /// Enables the SV fallback. When false the traversal always runs to
  /// completion (it remains correct; only the worst-case bound changes).
  bool enable_fallback = true;

  std::uint64_t seed = 0x5eedULL;

  /// When non-null, filled with per-thread and phase statistics.
  TraversalStats* stats = nullptr;

  /// When non-null, every worker polls the token between dequeues; if it
  /// expires mid-traversal the call throws CancelledError.
  const CancelToken* cancel = nullptr;
};

/// Computes a spanning forest of g with the Bader–Cong SMP algorithm.
SpanningForest bader_cong_spanning_tree(const Graph& g,
                                        const BaderCongOptions& opts = {});

/// As above but reuses a caller-owned pool (pool.size() threads; benchmark
/// loops avoid re-spawning threads per measurement).
SpanningForest bader_cong_spanning_tree(const Graph& g, ThreadPool& pool,
                                        const BaderCongOptions& opts);

/// Block-cached backend: the identical traversal over a disk-resident CSR
/// (storage/blocked_graph.hpp) — same phases, same stats, same fallback.
SpanningForest bader_cong_spanning_tree(const storage::BlockedGraph& g,
                                        const BaderCongOptions& opts = {});
SpanningForest bader_cong_spanning_tree(const storage::BlockedGraph& g,
                                        ThreadPool& pool,
                                        const BaderCongOptions& opts);

}  // namespace smpst
