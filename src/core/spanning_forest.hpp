// The spanning-forest result type shared by every algorithm in the library.
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace smpst {

/// A rooted spanning forest encoded as a parent array: parent[v] == v marks a
/// root; otherwise {v, parent[v]} is a tree edge. On a connected graph a
/// valid forest has exactly one root (a spanning tree).
struct SpanningForest {
  std::vector<VertexId> parent;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(parent.size());
  }

  [[nodiscard]] bool is_root(VertexId v) const noexcept {
    return parent[v] == v;
  }

  /// All roots in ascending order.
  [[nodiscard]] std::vector<VertexId> roots() const;

  [[nodiscard]] VertexId num_trees() const;

  /// n - num_trees().
  [[nodiscard]] EdgeId num_tree_edges() const;

  /// Every {v, parent[v]} pair with v non-root, canonicalized (u < v).
  [[nodiscard]] std::vector<Edge> tree_edges() const;

  /// component_of()[v] is the root of v's tree. Iterative with path
  /// memoization, O(n) total. Precondition: the forest is acyclic.
  [[nodiscard]] std::vector<VertexId> component_of() const;

  /// depth()[v] = #edges from v to its root. Precondition: acyclic.
  [[nodiscard]] std::vector<VertexId> depths() const;
};

/// Re-roots the tree containing `new_root` at `new_root` by reversing the
/// parent chain from it up to its current root; other trees are untouched.
/// O(depth of new_root). The serving layer uses this to answer rooted
/// spanning tree queries from any algorithm's arbitrarily-rooted output.
void reroot(SpanningForest& forest, VertexId new_root);

/// Builds a rooted forest from an unoriented set of tree edges by BFS
/// orientation. Vertices not covered by any edge become singleton roots.
/// Used by the Shiloach–Vishkin family (which produces unoriented tree edges)
/// and by the starvation-fallback merge path.
SpanningForest orient_tree_edges(VertexId num_vertices,
                                 const std::vector<Edge>& edges);

}  // namespace smpst
