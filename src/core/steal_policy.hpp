// Victim selection for the work-stealing traversal.
//
// Kept out of bader_cong.cpp so the sampling distribution is unit-testable:
// a regression (rediscovered the hard way) drew victims from [0, p) and
// `continue`d on self-picks, which silently consumed the steal-attempt
// budget — at p = 2 half of every idle worker's probes were wasted on
// itself, so starving workers gave up and slept twice as early as intended.
#pragma once

#include <cstddef>

#include "support/prng.hpp"

namespace smpst {

/// Samples a uniformly random victim in [0, p) \ {tid}. Draws from the
/// (p-1)-element set directly and remaps past `tid`, so every draw is a
/// usable victim and none of the caller's attempt budget is spent on self.
/// Requires p >= 2.
inline std::size_t sample_steal_victim(Xoshiro256& rng, std::size_t p,
                                       std::size_t tid) noexcept {
  const auto draw = static_cast<std::size_t>(rng.next_bounded(p - 1));
  return draw + static_cast<std::size_t>(draw >= tid);
}

}  // namespace smpst
