// Victim selection for the work-stealing traversal.
//
// Kept out of bader_cong.cpp so the sampling distribution is unit-testable:
// a regression (rediscovered the hard way) drew victims from [0, p) and
// `continue`d on self-picks, which silently consumed the steal-attempt
// budget — at p = 2 half of every idle worker's probes were wasted on
// itself, so starving workers gave up and slept twice as early as intended.
//
// On NUMA hosts victim *order* matters as much as victim coverage: a steal
// from a same-socket victim moves the stolen vertices' queue slots and their
// colour/parent cachelines within one LLC, while a cross-socket steal drags
// them over the interconnect. StealDomains encodes the placement the pool's
// pinning produced so thieves probe intra-node victims before remote ones
// (the locality technique of Sanders & Schimek's parallel MST engineering,
// PAPERS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/prng.hpp"
#include "support/topology.hpp"

namespace smpst {

/// Samples a uniformly random victim in [0, p) \ {tid}. Draws from the
/// (p-1)-element set directly and remaps past `tid`, so every draw is a
/// usable victim and none of the caller's attempt budget is spent on self.
/// Requires p >= 2.
inline std::size_t sample_steal_victim(Xoshiro256& rng, std::size_t p,
                                       std::size_t tid) noexcept {
  const auto draw = static_cast<std::size_t>(rng.next_bounded(p - 1));
  return draw + static_cast<std::size_t>(draw >= tid);
}

/// Per-worker steal domains derived from thread placement: which workers
/// share this worker's NUMA node. sample() spends the first
/// `local_peers(tid).size()` attempts of a probe round on random same-node
/// victims, then falls back to uniform sampling over every other worker —
/// so a thief prefers local work but can never starve while a remote victim
/// has some. With a single node (or unknown placement) every worker's local
/// set is empty and sample() degenerates to the uniform policy above.
class StealDomains {
 public:
  /// Uniform sampling only — placement unknown (pinning off) or irrelevant.
  static StealDomains uniform(std::size_t p) {
    StealDomains d;
    d.p_ = p;
    d.node_of_.assign(p, 0);
    d.local_peers_.resize(p);
    return d;
  }

  /// From an explicit worker→node map (unit tests, custom placements).
  static StealDomains from_nodes(const std::vector<std::uint32_t>& node_of) {
    StealDomains d;
    d.p_ = node_of.size();
    d.node_of_ = node_of;
    d.local_peers_.resize(d.p_);
    for (std::size_t t = 0; t < d.p_; ++t) {
      for (std::size_t u = 0; u < d.p_; ++u) {
        if (u != t && node_of[u] == node_of[t]) {
          d.local_peers_[t].push_back(u);
        }
      }
    }
    return d;
  }

  /// The placement a pool with `p` workers actually has: pinned pools place
  /// worker t on topology slot t (sched/thread_pool.hpp), so its node is
  /// node_of_slot(t). Unpinned pools float under the OS scheduler — their
  /// placement is unknowable, so they get the uniform policy. Workers beyond
  /// the allowed-CPU count are unpinned (pin_current_thread refuses the
  /// slot) and likewise get no local set.
  static StealDomains for_pool(std::size_t p, bool pinned) {
    const CpuTopology& topo = topology();
    if (!pinned || topo.num_nodes <= 1) return uniform(p);
    std::vector<std::uint32_t> node_of(p);
    std::vector<std::uint32_t> known;  // 1 = slot was actually placeable
    known.assign(p, 0);
    for (std::size_t t = 0; t < p; ++t) {
      if (topo.slot_valid(t)) {
        node_of[t] = static_cast<std::uint32_t>(topo.node_of_slot(t));
        known[t] = 1;
      }
    }
    StealDomains d;
    d.p_ = p;
    d.node_of_ = node_of;
    d.local_peers_.resize(p);
    for (std::size_t t = 0; t < p; ++t) {
      if (known[t] == 0) continue;  // unplaced worker: uniform only
      for (std::size_t u = 0; u < p; ++u) {
        if (u != t && known[u] != 0 && node_of[u] == node_of[t]) {
          d.local_peers_[t].push_back(u);
        }
      }
    }
    return d;
  }

  /// Victim for the `attempt`-th probe of one round (attempt resets to 0
  /// when the thief finds work or sleeps). Never returns tid. Requires
  /// p() >= 2.
  [[nodiscard]] std::size_t sample(Xoshiro256& rng, std::size_t tid,
                                   std::size_t attempt) const noexcept {
    const auto& local = local_peers_[tid];
    if (attempt < local.size()) {
      return local[static_cast<std::size_t>(rng.next_bounded(local.size()))];
    }
    return sample_steal_victim(rng, p_, tid);
  }

  [[nodiscard]] std::size_t p() const noexcept { return p_; }
  [[nodiscard]] std::uint32_t node_of(std::size_t tid) const noexcept {
    return node_of_[tid];
  }
  [[nodiscard]] const std::vector<std::size_t>& local_peers(
      std::size_t tid) const noexcept {
    return local_peers_[tid];
  }
  /// True when at least one worker has a non-empty local set (i.e. the
  /// policy differs from uniform sampling).
  [[nodiscard]] bool topology_aware() const noexcept {
    for (const auto& peers : local_peers_) {
      if (!peers.empty()) return true;
    }
    return false;
  }

 private:
  std::size_t p_ = 0;
  std::vector<std::uint32_t> node_of_;
  std::vector<std::vector<std::size_t>> local_peers_;
};

}  // namespace smpst
