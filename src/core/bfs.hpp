// Sequential breadth-first spanning forest — the paper's "best sequential
// algorithm" baseline: O(n + m) with a single preallocated queue whose
// access pattern is as cache-friendly as the problem allows.
#pragma once

#include "core/cancellation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst {

/// BFS spanning forest over all components, starting from `source` and then
/// from every still-unvisited vertex in id order. A non-null `cancel` token
/// is polled every few thousand expansions; expiry throws CancelledError.
SpanningForest bfs_spanning_tree(const Graph& g, VertexId source = 0,
                                 const CancelToken* cancel = nullptr);
SpanningForest bfs_spanning_tree(const storage::BlockedGraph& g,
                                 VertexId source = 0,
                                 const CancelToken* cancel = nullptr);

/// BFS levels (distance from source) over source's component only;
/// unreachable vertices get kInvalidVertex. Utility for tests and stats.
std::vector<VertexId> bfs_levels(const Graph& g, VertexId source);

}  // namespace smpst
