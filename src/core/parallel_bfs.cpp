#include "core/parallel_bfs.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/trace.hpp"
#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/graph_storage.hpp"
#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"
#include "support/race.hpp"

namespace smpst {

namespace {

/// parent is a PLAIN array (support/race.hpp). In push levels the load that
/// pre-screens the CAS claim is the intended benign race — stale values only
/// cost a wasted CAS or skip a vertex another thread already owns — while the
/// claim itself goes through race_cas(), a real CAS in every build, because
/// the exactly-one-parent invariant is load-bearing. In pull levels parent is
/// ownership-partitioned (only the shard owner reads or writes its vertices),
/// so there is no race at all; the accesses still go through the wrappers so
/// the whole array carries one auditable annotation discipline.
template <storage::GraphStorage GS>
struct BfsState {
  explicit BfsState(const GS& graph, std::size_t p_)
      // Uninitialized allocations on purpose (no make_unique, which would
      // zero-fill and thereby first-touch every page on the calling thread):
      // first_touch_init() faults each shard in from its owning worker, so a
      // pinned multi-node pool serves each shard from local memory.
      : g(graph),
        n(graph.num_vertices()),
        p(p_),
        parent(new VertexId[n]),
        in_cur_frontier(new std::uint8_t[n]),
        buffers(p),
        barrier(p) {}

  /// Contiguous vertex-ownership shards; worker t owns
  /// [shard_lo(t), shard_hi(t)) for first touch and for pull scans.
  [[nodiscard]] VertexId shard_lo(std::size_t tid) const noexcept {
    return static_cast<VertexId>(static_cast<std::uint64_t>(n) * tid / p);
  }
  [[nodiscard]] VertexId shard_hi(std::size_t tid) const noexcept {
    return static_cast<VertexId>(static_cast<std::uint64_t>(n) * (tid + 1) /
                                 p);
  }

  void first_touch_init(ThreadPool& pool) {
    pool.run([&](std::size_t tid) {
      SMPST_TRACE_SCOPE("pbfs.first_touch");
      const VertexId lo = shard_lo(tid);
      const VertexId hi = shard_hi(tid);
      for (VertexId v = lo; v < hi; ++v) {
        SMPST_BENIGN_RACE_STORE(parent[v], kInvalidVertex);
        in_cur_frontier[v] = 0;
      }
    });
  }

  const GS& g;
  const VertexId n;
  const std::size_t p;
  std::unique_ptr<VertexId[]> parent;
  /// Frontier-membership flags consulted by pull levels. Written (phase A)
  /// and cleared (phase C) by frontier-slice owners, read by everyone in the
  /// scan phase between them; the in-region barriers separate the phases, so
  /// every access is race-free.
  std::unique_ptr<std::uint8_t[]> in_cur_frontier;

  std::vector<VertexId> frontier;
  std::vector<Padded<std::vector<VertexId>>> buffers;  // next-frontier pieces
  std::atomic<std::size_t> cursor{0};
  SpinBarrier barrier;
};

/// Push expansion: grab frontier grains from the shared cursor, CAS-claim
/// unvisited neighbours.
template <storage::GraphStorage GS>
void expand_level_push(BfsState<GS>& st, std::size_t tid, std::size_t grain) {
  SMPST_TRACE_SCOPE("pbfs.push");
  auto& out = *st.buffers[tid];
  out.clear();
  for (;;) {
    const std::size_t begin =
        st.cursor.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= st.frontier.size()) break;
    const std::size_t end = std::min(begin + grain, st.frontier.size());
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId v = st.frontier[i];
      for (VertexId w : st.g.neighbors(v)) {
        VertexId expected = kInvalidVertex;
        // Benign racy pre-check, then a CAS claim: exactly one parent per
        // vertex, no duplicates in the next frontier. Relaxed suffices: the
        // winner publishes w only through its own buffer, which the caller
        // reads after the region join.
        if (SMPST_BENIGN_RACE_LOAD(st.parent[w]) == kInvalidVertex &&
            race_cas(st.parent[w], expected, v, std::memory_order_relaxed,
                     std::memory_order_relaxed)) {
          out.push_back(w);
        }
      }
    }
  }
}

/// Pull expansion, three barrier-separated phases inside one region:
///   A. each worker flags its index slice of the frontier vector;
///   B. each worker scans its owned vertex shard, attaching every unvisited
///      vertex to its first flagged neighbour (early exit);
///   C. each worker clears the flags it set in A, leaving the array
///      all-zero for the next pull level.
/// No CAS anywhere: vertex v is claimed only by its shard owner, and the
/// flags are written and read in different phases.
template <storage::GraphStorage GS>
void expand_level_pull(BfsState<GS>& st, std::size_t tid) {
  SMPST_TRACE_SCOPE("pbfs.pull");
  const std::size_t fsz = st.frontier.size();
  const std::size_t flo = fsz * tid / st.p;
  const std::size_t fhi = fsz * (tid + 1) / st.p;
  for (std::size_t i = flo; i < fhi; ++i) {
    st.in_cur_frontier[st.frontier[i]] = 1;
  }
  st.barrier.arrive_and_wait();

  auto& out = *st.buffers[tid];
  out.clear();
  const VertexId lo = st.shard_lo(tid);
  const VertexId hi = st.shard_hi(tid);
  for (VertexId v = lo; v < hi; ++v) {
    if (SMPST_BENIGN_RACE_LOAD(st.parent[v]) != kInvalidVertex) continue;
    for (VertexId u : st.g.neighbors(v)) {
      if (st.in_cur_frontier[u] != 0) {
        SMPST_BENIGN_RACE_STORE(st.parent[v], u);
        out.push_back(v);
        break;
      }
    }
  }
  st.barrier.arrive_and_wait();

  for (std::size_t i = flo; i < fhi; ++i) {
    st.in_cur_frontier[st.frontier[i]] = 0;
  }
}

/// Direction decision for the level about to be expanded. A pull level costs
/// O(n/p) per worker (the shard scan visits every owned vertex) plus two
/// barriers, independent of frontier size, so entering pull requires the
/// frontier to be large on two axes: its edge count must exceed
/// unexplored/alpha (it must dominate the remaining work) and its vertex
/// count must reach n/beta (the scan must have a real chance of early-exiting
/// on most vertices). Staying in pull only requires the vertex-count bar, so
/// the entry/exit asymmetry on the edge axis is the hysteresis: a level that
/// barely crossed the density line does not flip straight back. The absolute
/// edge floor keeps high-diameter trickles (a chain's 2-edge frontier near
/// exhaustion, where unexplored -> 0 makes the ratio meaningless) from ever
/// paying a whole-shard scan.
bool choose_pull(const ParallelBfsOptions& opts, bool was_pull,
                 std::uint64_t frontier_vertices,
                 std::uint64_t frontier_edges, std::uint64_t unexplored_edges,
                 std::uint64_t n) {
  if (opts.direction == BfsDirection::kPushOnly) return false;
  const bool frontier_big = static_cast<double>(frontier_vertices) *
                                opts.beta >=
                            static_cast<double>(n);
  if (was_pull) return frontier_big;
  return frontier_big && frontier_edges >= opts.pull_min_frontier_edges &&
         static_cast<double>(frontier_edges) * opts.alpha >
             static_cast<double>(unexplored_edges);
}

template <storage::GraphStorage GS>
SpanningForest parallel_bfs_impl(const GS& g, ThreadPool& pool,
                                 const ParallelBfsOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p = pool.size();
  const std::size_t grain = std::max<std::size_t>(1, opts.grain);

  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  if (n == 0) return forest;
  if (opts.cancel != nullptr) opts.cancel->poll();

  BfsState<GS> st(g, p);
  st.first_touch_init(pool);
  ParallelBfsStats stats;
  SMPST_TRACE_SCOPE("pbfs.run");

  // The level loop runs on the calling thread; each level's expansion is one
  // parallel region. Components are processed in vertex order, like the
  // sequential baseline.
  // Between parallel regions only the calling thread touches parent, so the
  // component scan uses plain accesses.
  std::uint64_t unexplored_edges = g.num_arcs();
  for (VertexId root = 0; root < n; ++root) {
    if (st.parent[root] != kInvalidVertex) continue;
    st.parent[root] = root;
    st.frontier.assign(1, root);
    std::uint64_t frontier_edges = g.degree(root);
    bool pull = false;      // every component starts in push
    int last_dir = -1;      // direction of the previous *expanded* level

    while (!st.frontier.empty()) {
      if (opts.cancel != nullptr) opts.cancel->poll();
      // Fault site on the calling thread between parallel regions: no worker
      // is inside the level barrier, so a throw here is always clean.
      SMPST_FAILPOINT("core.parallel_bfs.level");
      ++stats.levels;
      stats.max_frontier =
          std::max<std::uint64_t>(stats.max_frontier, st.frontier.size());

      pull = choose_pull(opts, pull, st.frontier.size(), frontier_edges,
                         unexplored_edges, n);
      if (last_dir >= 0 && last_dir != static_cast<int>(pull)) {
        ++stats.direction_switches;
      }
      last_dir = static_cast<int>(pull);

      {
        SMPST_TRACE_SCOPE("pbfs.level");
        if (pull) {
          ++stats.pull_levels;
          pool.run([&](std::size_t tid) { expand_level_pull(st, tid); });
          stats.barriers += 2;  // the two in-region phase barriers
        } else {
          ++stats.push_levels;
          st.cursor.store(0, std::memory_order_relaxed);
          pool.run(
              [&](std::size_t tid) { expand_level_push(st, tid, grain); });
        }
      }
      stats.barriers += 1;  // the region join acts as the level barrier

      // The expanded frontier's edges are now explored; the running count is
      // the mu term of the alpha heuristic.
      unexplored_edges -= std::min(unexplored_edges, frontier_edges);

      st.frontier.clear();
      frontier_edges = 0;
      for (auto& buf : st.buffers) {
        for (const VertexId v : *buf) frontier_edges += g.degree(v);
        st.frontier.insert(st.frontier.end(), buf->begin(), buf->end());
      }
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    forest.parent[v] = st.parent[v];  // after the last region join: race-free
  }
  if (opts.stats != nullptr) *opts.stats = stats;
  return forest;
}

}  // namespace

SpanningForest parallel_bfs_spanning_tree(const Graph& g, ThreadPool& pool,
                                          const ParallelBfsOptions& opts) {
  return parallel_bfs_impl(g, pool, opts);
}

SpanningForest parallel_bfs_spanning_tree(const storage::BlockedGraph& g,
                                          ThreadPool& pool,
                                          const ParallelBfsOptions& opts) {
  return parallel_bfs_impl(g, pool, opts);
}

SpanningForest parallel_bfs_spanning_tree(const Graph& g,
                                          const ParallelBfsOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return parallel_bfs_spanning_tree(g, pool, opts);
}

SpanningForest parallel_bfs_spanning_tree(const storage::BlockedGraph& g,
                                          const ParallelBfsOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return parallel_bfs_spanning_tree(g, pool, opts);
}

}  // namespace smpst
