#include "core/parallel_bfs.hpp"

#include <atomic>
#include <memory>

#include "obs/trace.hpp"
#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"
#include "support/race.hpp"

namespace smpst {

namespace {

/// parent is a PLAIN array (support/race.hpp): the load that pre-screens the
/// CAS claim is the intended benign race — stale values only cost a wasted
/// CAS or skip a vertex another thread already owns — while the claim itself
/// goes through race_cas(), a real CAS in every build, because the
/// exactly-one-parent invariant is load-bearing.
struct BfsState {
  explicit BfsState(const Graph& graph, std::size_t p)
      : g(graph),
        n(graph.num_vertices()),
        parent(std::make_unique<VertexId[]>(n)),
        buffers(p),
        barrier(p) {
    // Single-threaded; published to workers by the pool's region handoff.
    for (VertexId v = 0; v < n; ++v) parent[v] = kInvalidVertex;
  }

  const Graph& g;
  const VertexId n;
  std::unique_ptr<VertexId[]> parent;

  std::vector<VertexId> frontier;
  std::vector<Padded<std::vector<VertexId>>> buffers;  // next-frontier pieces
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> next_nonempty{false};
  SpinBarrier barrier;
};

/// Expands the current frontier cooperatively; returns this thread's vote on
/// whether a next level exists.
void expand_level(BfsState& st, std::size_t tid, std::size_t grain) {
  SMPST_TRACE_SCOPE("pbfs.expand");
  auto& out = *st.buffers[tid];
  out.clear();
  for (;;) {
    const std::size_t begin =
        st.cursor.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= st.frontier.size()) break;
    const std::size_t end = std::min(begin + grain, st.frontier.size());
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId v = st.frontier[i];
      for (VertexId w : st.g.neighbors(v)) {
        VertexId expected = kInvalidVertex;
        // Benign racy pre-check, then a CAS claim: exactly one parent per
        // vertex, no duplicates in the next frontier. Relaxed suffices: the
        // winner publishes w only through its own buffer, which the caller
        // reads after the region join.
        if (SMPST_BENIGN_RACE_LOAD(st.parent[w]) == kInvalidVertex &&
            race_cas(st.parent[w], expected, v, std::memory_order_relaxed,
                     std::memory_order_relaxed)) {
          out.push_back(w);
        }
      }
    }
  }
}

}  // namespace

SpanningForest parallel_bfs_spanning_tree(const Graph& g, ThreadPool& pool,
                                          const ParallelBfsOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p = pool.size();
  const std::size_t grain = std::max<std::size_t>(1, opts.grain);

  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  if (n == 0) return forest;
  if (opts.cancel != nullptr) opts.cancel->poll();

  BfsState st(g, p);
  ParallelBfsStats stats;
  SMPST_TRACE_SCOPE("pbfs.run");

  // The level loop runs on the calling thread; each level's expansion is one
  // parallel region. Components are processed in vertex order, like the
  // sequential baseline.
  // Between parallel regions only the calling thread touches parent, so the
  // component scan uses plain accesses.
  for (VertexId root = 0; root < n; ++root) {
    if (st.parent[root] != kInvalidVertex) continue;
    st.parent[root] = root;
    st.frontier.assign(1, root);

    while (!st.frontier.empty()) {
      if (opts.cancel != nullptr) opts.cancel->poll();
      // Fault site on the calling thread between parallel regions: no worker
      // is inside the level barrier, so a throw here is always clean.
      SMPST_FAILPOINT("core.parallel_bfs.level");
      ++stats.levels;
      stats.max_frontier =
          std::max<std::uint64_t>(stats.max_frontier, st.frontier.size());
      st.cursor.store(0, std::memory_order_relaxed);

      {
        SMPST_TRACE_SCOPE("pbfs.level");
        pool.run([&](std::size_t tid) { expand_level(st, tid, grain); });
      }
      stats.barriers += 1;  // the region join acts as the level barrier

      st.frontier.clear();
      for (auto& buf : st.buffers) {
        st.frontier.insert(st.frontier.end(), buf->begin(), buf->end());
      }
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    forest.parent[v] = st.parent[v];  // after the last region join: race-free
  }
  if (opts.stats != nullptr) *opts.stats = stats;
  return forest;
}

SpanningForest parallel_bfs_spanning_tree(const Graph& g,
                                          const ParallelBfsOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return parallel_bfs_spanning_tree(g, pool, opts);
}

}  // namespace smpst
