// Modified Hirschberg–Chandra–Sarwate spanning tree.
//
// HCS (CACM 1979) is the classic CREW connectivity algorithm built around a
// min-reduction: every component adopts the minimum label in its
// neighbourhood, then pointer-jumps. The paper implemented an SMP adaptation
// for spanning trees, observed "similar complexities and running time as
// SV", and dropped it from further discussion. We keep it as a first-class
// algorithm so that observation is reproducible: the structure below is SV's
// graft-and-shortcut loop with HCS's hook rule — each root hooks onto the
// *minimum*-labelled neighbouring component (a CAS-min election per root,
// the min-reduction in disguise) instead of SV's hook-to-any-smaller — and
// the winning edges form the spanning forest.
#pragma once

#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst {

class CancelToken;
class ThreadPool;

struct HcsOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
  SvStats* stats = nullptr;     ///< same shape as SV's statistics
  /// Optional cooperative cancellation, polled once per hook-and-shortcut
  /// round through a barrier consensus (see SvOptions::cancel).
  const CancelToken* cancel = nullptr;
};

SpanningForest hcs_spanning_tree(const Graph& g, const HcsOptions& opts = {});
SpanningForest hcs_spanning_tree(const Graph& g, ThreadPool& pool,
                                 const HcsOptions& opts);

}  // namespace smpst
