// Execution statistics collected by the instrumented algorithm runs. These
// feed the Helman–JáJá cost-model tables (E11, E13, E14 in DESIGN.md): work
// balance per thread, steal traffic, duplicate colourings from the benign
// races, barrier counts, and SV iteration counts.
#pragma once

#include <cstdint>
#include <vector>

namespace smpst {

struct ThreadStats {
  std::uint64_t vertices_processed = 0;  ///< dequeues expanded by this thread
  std::uint64_t edges_scanned = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t items_stolen = 0;
  std::uint64_t sleep_episodes = 0;
  std::uint64_t roots_claimed = 0;  ///< extra components seeded by this thread
};

struct TraversalStats {
  std::vector<ThreadStats> per_thread;

  double stub_seconds = 0.0;
  double traversal_seconds = 0.0;
  double fallback_seconds = 0.0;
  bool fallback_triggered = false;

  std::uint64_t stub_vertices = 0;

  /// Vertices expanded more than once because two processors raced to colour
  /// them (the paper reports "less than ten ... for a graph with millions of
  /// vertices"). Computed as total dequeues minus distinct *coloured*
  /// vertices, saturating at zero — isolated or unreached vertices are never
  /// dequeued, so subtracting the full vertex count would underflow on
  /// disconnected graphs. Filled on both the normal and the
  /// starvation-fallback exits.
  std::uint64_t duplicate_expansions = 0;

  /// Vertices coloured when the traversal phase ended: n on a completed run
  /// over a graph without isolated vertices, possibly fewer on fallback or
  /// cancelled runs. The base the duplicate accounting subtracts.
  std::uint64_t colored_vertices = 0;

  [[nodiscard]] std::uint64_t total_processed() const noexcept {
    std::uint64_t total = 0;
    for (const auto& t : per_thread) total += t.vertices_processed;
    return total;
  }

  [[nodiscard]] std::uint64_t total_steals() const noexcept {
    std::uint64_t total = 0;
    for (const auto& t : per_thread) total += t.steals_succeeded;
    return total;
  }

  /// max/mean of per-thread processed counts; 1.0 == perfectly balanced.
  [[nodiscard]] double load_imbalance() const noexcept {
    if (per_thread.empty()) return 1.0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const auto& t : per_thread) {
      max = max < t.vertices_processed ? t.vertices_processed : max;
      sum += t.vertices_processed;
    }
    if (sum == 0) return 1.0;
    const double mean =
        static_cast<double>(sum) / static_cast<double>(per_thread.size());
    return static_cast<double>(max) / mean;
  }
};

struct SvStats {
  std::uint64_t iterations = 0;
  std::uint64_t shortcut_passes = 0;  ///< total pointer-jumping passes
  std::uint64_t grafts = 0;
  std::uint64_t barriers = 0;
  double graft_seconds = 0.0;
  double shortcut_seconds = 0.0;
  double orient_seconds = 0.0;
};

}  // namespace smpst
