#include "core/hcs.hpp"

#include <atomic>
#include <limits>
#include <memory>

#include "core/cancellation.hpp"
#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "support/cpu.hpp"
#include "support/timer.hpp"

namespace smpst {

namespace {

constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

struct Range {
  std::size_t begin;
  std::size_t end;
};

Range chunk_of(std::size_t total, std::size_t tid, std::size_t p) {
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = tid * base + std::min(tid, extra);
  return {begin, begin + base + (tid < extra ? 1 : 0)};
}

struct HcsState {
  HcsState(const Graph& g, std::size_t p)
      : n(g.num_vertices()),
        labels(std::make_unique<std::atomic<VertexId>[]>(n)),
        cand(std::make_unique<std::atomic<EdgeId>[]>(n)),
        per_thread_edges(p),
        barrier(p) {
    for (VertexId v = 0; v < n; ++v) {
      labels[v].store(v, std::memory_order_relaxed);
      cand[v].store(kNoEdge, std::memory_order_relaxed);
    }
    edges.reserve(g.num_edges());
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (u < v) edges.push_back(Edge{u, v});
      }
    }
  }

  /// Root of the component on the far side of edge e, as seen from root r
  /// (reads current labels; stable within a phase).
  [[nodiscard]] VertexId other_root(EdgeId e, VertexId r) const {
    const VertexId du = labels[edges[e].u].load(std::memory_order_relaxed);
    return du == r ? labels[edges[e].v].load(std::memory_order_relaxed) : du;
  }

  VertexId n;
  std::unique_ptr<std::atomic<VertexId>[]> labels;
  std::unique_ptr<std::atomic<EdgeId>[]> cand;
  std::vector<Edge> edges;
  std::vector<std::vector<Edge>> per_thread_edges;
  SpinBarrier barrier;
  std::atomic<bool> hooked_flag{false};
  std::atomic<bool> shortcut_flag{false};
  std::atomic<bool> cancel_flag{false};
};

void hcs_worker(HcsState& st, std::size_t tid, std::size_t p,
                const CancelToken* cancel, SvStats& stats,
                bool collect_stats) {
  const Range vr = chunk_of(st.n, tid, p);
  const Range er = chunk_of(st.edges.size(), tid, p);
  auto& tree_edges = st.per_thread_edges[tid];

  for (;;) {
    // Cancellation consensus (see shiloach_vishkin.cpp): thread 0 reads the
    // clock, the vote_or barrier shares the verdict, all exit together.
    if (cancel != nullptr &&
        vote_or(st.barrier, st.cancel_flag, tid,
                tid == 0 && cancel->expired())) {
      return;
    }
    for (std::size_t v = vr.begin; v < vr.end; ++v) {
      st.cand[v].store(kNoEdge, std::memory_order_relaxed);
    }
    st.barrier.arrive_and_wait();  // candidates reset before the reduction

    // Min-reduction: each root's candidate converges to the edge whose far
    // side carries the minimum neighbouring label (ties by edge index).
    WallTimer phase_timer;
    bool proposed = false;
    for (std::size_t e = er.begin; e < er.end; ++e) {
      const VertexId ru =
          st.labels[st.edges[e].u].load(std::memory_order_relaxed);
      const VertexId rv =
          st.labels[st.edges[e].v].load(std::memory_order_relaxed);
      if (ru == rv) continue;
      proposed = true;
      for (const VertexId r : {ru, rv}) {
        const VertexId mine = st.other_root(e, r);
        EdgeId cur = st.cand[r].load(std::memory_order_relaxed);
        while (true) {
          const bool better =
              cur == kNoEdge || mine < st.other_root(cur, r) ||
              (mine == st.other_root(cur, r) && e < cur);
          if (!better) break;
          if (st.cand[r].compare_exchange_weak(cur, e,
                                               std::memory_order_relaxed)) {
            break;
          }
        }
      }
    }
    st.barrier.arrive_and_wait();  // reductions complete before hooking

    // Hook each root onto its minimum neighbour, but only downward
    // (min < r): labels stay monotone, so no hook cycles can form. Roots
    // whose minimum neighbour is larger stay put and get hooked onto.
    for (std::size_t v = vr.begin; v < vr.end; ++v) {
      const EdgeId e = st.cand[v].load(std::memory_order_relaxed);
      if (e == kNoEdge) continue;
      const VertexId target = st.other_root(e, static_cast<VertexId>(v));
      if (target >= static_cast<VertexId>(v)) continue;
      st.labels[v].store(target, std::memory_order_relaxed);
      tree_edges.push_back(st.edges[e]);
    }
    if (tid == 0 && collect_stats) {
      stats.graft_seconds += phase_timer.elapsed_seconds();
    }

    const bool any = vote_or(st.barrier, st.hooked_flag, tid, proposed);
    if (tid == 0 && collect_stats && any) ++stats.iterations;
    if (!any) break;

    // Shortcut to rooted stars.
    WallTimer shortcut_timer;
    for (;;) {
      bool changed = false;
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        const VertexId dv = st.labels[v].load(std::memory_order_relaxed);
        const VertexId ddv = st.labels[dv].load(std::memory_order_relaxed);
        if (ddv != dv) {
          st.labels[v].store(ddv, std::memory_order_relaxed);
          changed = true;
        }
      }
      const bool more = vote_or(st.barrier, st.shortcut_flag, tid, changed);
      if (tid == 0 && collect_stats) ++stats.shortcut_passes;
      if (!more) break;
    }
    if (tid == 0 && collect_stats) {
      stats.shortcut_seconds += shortcut_timer.elapsed_seconds();
    }
  }
  if (tid == 0 && collect_stats) stats.barriers = st.barrier.episodes();
}

}  // namespace

SpanningForest hcs_spanning_tree(const Graph& g, ThreadPool& pool,
                                 const HcsOptions& opts) {
  const std::size_t p = pool.size();
  HcsState st(g, p);
  SvStats stats;
  const bool collect = opts.stats != nullptr;
  pool.run([&](std::size_t tid) {
    hcs_worker(st, tid, p, opts.cancel, stats, collect);
  });
  // A cancelled run left the forest incomplete; throw rather than return it.
  if (opts.cancel != nullptr) opts.cancel->poll();

  std::vector<Edge> edges;
  std::size_t count = 0;
  for (const auto& te : st.per_thread_edges) count += te.size();
  edges.reserve(count);
  for (const auto& te : st.per_thread_edges) {
    edges.insert(edges.end(), te.begin(), te.end());
  }
  if (collect) {
    stats.grafts = edges.size();
    *opts.stats = stats;
  }
  return orient_tree_edges(g.num_vertices(), edges);
}

SpanningForest hcs_spanning_tree(const Graph& g, const HcsOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return hcs_spanning_tree(g, pool, opts);
}

}  // namespace smpst
