#include "core/spanning_forest.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smpst {

std::vector<VertexId> SpanningForest::roots() const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) result.push_back(v);
  }
  return result;
}

VertexId SpanningForest::num_trees() const {
  VertexId count = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) ++count;
  }
  return count;
}

EdgeId SpanningForest::num_tree_edges() const {
  return num_vertices() - num_trees();
}

std::vector<Edge> SpanningForest::tree_edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_tree_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    if (!is_root(v)) {
      edges.push_back(parent[v] < v ? Edge{parent[v], v} : Edge{v, parent[v]});
    }
  }
  return edges;
}

std::vector<VertexId> SpanningForest::component_of() const {
  const VertexId n = num_vertices();
  std::vector<VertexId> root_of(n, kInvalidVertex);
  std::vector<VertexId> path;
  for (VertexId v = 0; v < n; ++v) {
    if (root_of[v] != kInvalidVertex) continue;
    path.clear();
    VertexId cur = v;
    while (root_of[cur] == kInvalidVertex && parent[cur] != cur) {
      path.push_back(cur);
      cur = parent[cur];
      SMPST_CHECK(path.size() <= n, "component_of: parent cycle detected");
    }
    const VertexId root = root_of[cur] != kInvalidVertex ? root_of[cur] : cur;
    root_of[cur] = root;
    for (VertexId u : path) root_of[u] = root;
  }
  return root_of;
}

std::vector<VertexId> SpanningForest::depths() const {
  const VertexId n = num_vertices();
  std::vector<VertexId> depth(n, kInvalidVertex);
  std::vector<VertexId> path;
  for (VertexId v = 0; v < n; ++v) {
    if (depth[v] != kInvalidVertex) continue;
    path.clear();
    VertexId cur = v;
    while (depth[cur] == kInvalidVertex && parent[cur] != cur) {
      path.push_back(cur);
      cur = parent[cur];
      SMPST_CHECK(path.size() <= n, "depths: parent cycle detected");
    }
    VertexId d = depth[cur] != kInvalidVertex ? depth[cur] : 0;
    if (depth[cur] == kInvalidVertex) depth[cur] = 0;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  return depth;
}

void reroot(SpanningForest& forest, VertexId new_root) {
  SMPST_CHECK(new_root < forest.num_vertices(), "reroot: vertex out of range");
  VertexId cur = new_root;
  VertexId prev = new_root;  // becomes cur's new parent (self for the root)
  std::size_t steps = 0;
  for (;;) {
    const VertexId next = forest.parent[cur];
    forest.parent[cur] = prev;
    if (next == cur) break;  // reached the old root
    prev = cur;
    cur = next;
    SMPST_CHECK(++steps <= forest.parent.size(),
                "reroot: parent cycle detected");
  }
}

SpanningForest orient_tree_edges(VertexId num_vertices,
                                 const std::vector<Edge>& edges) {
  // Adjacency over the tree edges only (CSR, both directions).
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    SMPST_CHECK(e.u < num_vertices && e.v < num_vertices,
                "orient_tree_edges: endpoint out of range");
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<VertexId> targets(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    targets[cursor[e.u]++] = e.v;
    targets[cursor[e.v]++] = e.u;
  }

  SpanningForest forest;
  forest.parent.assign(num_vertices, kInvalidVertex);
  std::vector<VertexId> queue;
  queue.reserve(num_vertices);
  for (VertexId s = 0; s < num_vertices; ++s) {
    if (forest.parent[s] != kInvalidVertex) continue;
    forest.parent[s] = s;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (EdgeId i = offsets[v]; i < offsets[v + 1]; ++i) {
        const VertexId w = targets[i];
        if (forest.parent[w] == kInvalidVertex) {
          forest.parent[w] = v;
          queue.push_back(w);
        }
      }
    }
  }
  return forest;
}

}  // namespace smpst
