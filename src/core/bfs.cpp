#include "core/bfs.hpp"

#include "storage/blocked_graph.hpp"
#include "storage/graph_storage.hpp"
#include "support/assert.hpp"

namespace smpst {

namespace {

// Templated over the storage backend (storage/graph_storage.hpp): the Graph
// instantiation is byte-for-byte the pre-template sequential baseline; the
// BlockedGraph one runs the same loop over pinned block-backed spans.
template <storage::GraphStorage GS>
SpanningForest bfs_spanning_tree_impl(const GS& g, VertexId source,
                                      const CancelToken* cancel) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(source < n || n == 0, "bfs_spanning_tree: source out of range");

  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  if (n == 0) return forest;
  if (cancel != nullptr) cancel->poll();

  std::vector<VertexId> queue;
  queue.reserve(n);

  auto run = [&](VertexId s) {
    forest.parent[s] = s;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      if (cancel != nullptr && (head & 0xfff) == 0) cancel->poll();
      const VertexId v = queue[head];
      for (VertexId w : g.neighbors(v)) {
        if (forest.parent[w] == kInvalidVertex) {
          forest.parent[w] = v;
          queue.push_back(w);
        }
      }
    }
  };

  run(source);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] == kInvalidVertex) run(v);
  }
  return forest;
}

}  // namespace

SpanningForest bfs_spanning_tree(const Graph& g, VertexId source,
                                 const CancelToken* cancel) {
  return bfs_spanning_tree_impl(g, source, cancel);
}

SpanningForest bfs_spanning_tree(const storage::BlockedGraph& g,
                                 VertexId source, const CancelToken* cancel) {
  return bfs_spanning_tree_impl(g, source, cancel);
}

std::vector<VertexId> bfs_levels(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(source < n, "bfs_levels: source out of range");
  std::vector<VertexId> level(n, kInvalidVertex);
  std::vector<VertexId> queue;
  queue.reserve(n);
  queue.push_back(source);
  level[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (VertexId w : g.neighbors(v)) {
      if (level[w] == kInvalidVertex) {
        level[w] = level[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return level;
}

}  // namespace smpst
