// SMP adaptation of the Shiloach–Vishkin connectivity algorithm as a
// spanning tree algorithm — the parallel baseline the paper measures its new
// algorithm against.
//
// Each iteration: (1) graft — every component root with an edge to a
// smaller-labelled component hooks onto it; because real SMPs provide only
// arbitrary (not priority) concurrent writes, the hook is decided by an
// election (first CAS wins) so each tree is grafted exactly once, the
// paper's fix for the race that would otherwise create false tree edges;
// (2) shortcut — pointer jumping until every tree is a rooted star (this is
// where the extra log n factor of the SMP adaptation comes from). The edge
// that wins a root's election becomes a tree edge. Iterations repeat until
// no grafts occur; the iteration count depends on the vertex labelling
// (1 .. log n), the sensitivity Fig. 4 demonstrates.
//
// A lock-per-root grafting variant ("intuitively slow and not scalable",
// §2) is included for the A3 ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst {

class CancelToken;
class ThreadPool;

struct SvOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
  bool use_locks = false;       ///< lock-based grafting instead of election
  SvStats* stats = nullptr;
  /// Optional cooperative cancellation. Polled once per graft-and-shortcut
  /// round by thread 0 and propagated through a barrier consensus so every
  /// worker exits together; the caller then observes CancelledError.
  const CancelToken* cancel = nullptr;
};

/// Spanning forest via parallel Shiloach–Vishkin. The BlockedGraph overloads
/// pay the block-cache I/O once (edge materialization); the rounds
/// themselves run over plain memory.
SpanningForest sv_spanning_tree(const Graph& g, const SvOptions& opts = {});
SpanningForest sv_spanning_tree(const Graph& g, ThreadPool& pool,
                                const SvOptions& opts);
SpanningForest sv_spanning_tree(const storage::BlockedGraph& g,
                                const SvOptions& opts = {});
SpanningForest sv_spanning_tree(const storage::BlockedGraph& g,
                                ThreadPool& pool, const SvOptions& opts);

/// Lower-level entry: runs SV from an arbitrary initial partition.
/// `initial_labels[v]` must name the representative of v's current group and
/// satisfy initial_labels[initial_labels[v]] == initial_labels[v] (rooted
/// stars); identity is the standard start. Returns only the *new* tree edges
/// chosen to connect the groups — this is the merge entry point used by the
/// traversal algorithm's starvation fallback.
std::vector<Edge> sv_tree_edges(const Graph& g, ThreadPool& pool,
                                std::vector<VertexId> initial_labels,
                                const SvOptions& opts);
std::vector<Edge> sv_tree_edges(const storage::BlockedGraph& g,
                                ThreadPool& pool,
                                std::vector<VertexId> initial_labels,
                                const SvOptions& opts);

}  // namespace smpst
