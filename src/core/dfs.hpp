// Sequential depth-first spanning forest (iterative; no recursion so chains
// of millions of vertices cannot overflow the stack). The second classical
// sequential baseline; the paper's Fig. 4 uses BFS as "Sequential" but DFS
// has identical asymptotics and is included for completeness.
#pragma once

#include "core/cancellation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst {

/// A non-null `cancel` token is polled every few thousand descents; expiry
/// throws CancelledError.
SpanningForest dfs_spanning_tree(const Graph& g, VertexId source = 0,
                                 const CancelToken* cancel = nullptr);

}  // namespace smpst
