#include "core/bader_cong.hpp"

#include <atomic>
#include <memory>

#include "core/shiloach_vishkin.hpp"
#include "core/steal_policy.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/graph_storage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/termination.hpp"
#include "sched/thread_pool.hpp"
#include "sched/work_queue.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"
#include "support/prefetch.hpp"
#include "support/prng.hpp"
#include "support/race.hpp"
#include "support/timer.hpp"

namespace smpst {

namespace {

/// Shared state of one traversal. Colour 0 means unvisited; thread t writes
/// colour t+1. Parent writes race benignly exactly as in the paper: the last
/// writer wins and either value forms a valid tree edge.
///
/// colour and parent are deliberately PLAIN arrays, accessed through the
/// SMPST_BENIGN_RACE_* layer (support/race.hpp): the races on them are the
/// paper's intended ones, so non-TSan builds pay nothing for them, while TSan
/// builds see relaxed atomics and stay quiet without suppressions. The one
/// access whose atomicity is load-bearing — the exactly-one-winner claim of a
/// component root — goes through race_cas(), which is a real CAS in every
/// build. See docs/CONCURRENCY.md for the per-site safety arguments.
template <storage::GraphStorage GS>
struct TraversalState {
  explicit TraversalState(const GS& graph, std::size_t p)
      // Deliberately *uninitialized* allocations (no make_unique, which
      // value-initializes): zero-filling n words here would first-touch every
      // colour/parent page on the calling thread's NUMA node. The pages are
      // faulted in by first_touch_init() instead, each from the worker that
      // owns the shard, so on a pinned multi-node pool each node serves its
      // own shard's traffic.
      : g(graph),
        n(graph.num_vertices()),
        color(new std::uint32_t[n]),
        parent(new VertexId[n]),
        queues(p) {}

  /// Vertex-ownership shards: contiguous blocks, worker t owns
  /// [shard_lo(t), shard_hi(t)). Contiguous (not strided) so a shard's pages
  /// are touched by exactly one worker — and, via the node-grouped slot
  /// order of CpuTopology, so neighbouring workers share a socket.
  [[nodiscard]] VertexId shard_lo(std::size_t tid) const noexcept {
    return static_cast<VertexId>(static_cast<std::uint64_t>(n) * tid /
                                 queues.size());
  }
  [[nodiscard]] VertexId shard_hi(std::size_t tid) const noexcept {
    return static_cast<VertexId>(static_cast<std::uint64_t>(n) * (tid + 1) /
                                 queues.size());
  }

  /// NUMA-aware first touch: every worker initializes (and thereby places)
  /// its own shard of the colour/parent arrays and pre-sizes its own queue.
  /// One parallel region, run before phase 1; the region join publishes the
  /// writes to the traversal region that follows. The benign-race wrappers
  /// cost nothing in normal builds and keep the shard writes visible to the
  /// same annotation audit as the traversal's accesses.
  void first_touch_init(ThreadPool& pool) {
    // Pre-size every worker's queue for its expected share of the frontier:
    // push_bulk must never reallocate mid-traversal, because the owner holds
    // the queue's SpinLock across the insert and a reallocation stretches
    // that critical section exactly when a thief is spinning on it.
    const std::size_t expected =
        static_cast<std::size_t>(n) / queues.size() + 64;
    pool.run([&](std::size_t tid) {
      SMPST_TRACE_SCOPE("bc.first_touch");
      const VertexId lo = shard_lo(tid);
      const VertexId hi = shard_hi(tid);
      for (VertexId v = lo; v < hi; ++v) {
        SMPST_BENIGN_RACE_STORE(color[v], 0u);
        SMPST_BENIGN_RACE_STORE(parent[v], kInvalidVertex);
      }
      queues[tid]->reserve(expected);
    });
  }

  const GS& g;
  const VertexId n;
  std::unique_ptr<std::uint32_t[]> color;
  std::unique_ptr<VertexId[]> parent;
  std::vector<Padded<SplitQueue<VertexId>>> queues;

  PendingCounter pending;
  IdleGate gate;
  std::atomic<VertexId> root_cursor{0};
  std::atomic<bool> done{false};
  std::atomic<bool> starved{false};
  std::atomic<bool> cancelled{false};
};

/// Claims the next uncoloured vertex as a fresh component root. Returns true
/// if a root was claimed (and enqueued on the caller's queue); false when the
/// cursor has passed the last vertex.
///
/// Exactly one root may be claimed per drain: claiming a second root while
/// the first's component is still being traversed could seed two trees inside
/// one component (the second root might be an as-yet-uncoloured vertex of the
/// first root's component). Sleep/wake churn on graphs with thousands of tiny
/// components is the price of that soundness; the paper's experiments assume
/// connected inputs, where this path runs at most once.
template <storage::GraphStorage GS>
bool try_claim_root(TraversalState<GS>& st, std::size_t tid,
                    std::uint32_t label, ThreadStats& ts) {
  for (;;) {
    // Relaxed throughout on the cursor: it is a monotonic scan hint, and
    // claims are arbitrated by the colour CAS — a stale (smaller) value only
    // causes re-scanning of already-coloured vertices, never a missed root.
    VertexId v = st.root_cursor.load(std::memory_order_relaxed);
    if (v >= st.n) return false;
    // Benign pre-check: a stale 0 just means we attempt the CAS and lose.
    if (SMPST_BENIGN_RACE_LOAD(st.color[v]) != 0) {
      st.root_cursor.compare_exchange_weak(v, v + 1,
                                           std::memory_order_relaxed);
      continue;
    }
    std::uint32_t expected = 0;
    // Count the root as pending *before* publishing its colour so any thread
    // that observes the colour also observes the pending increment.
    st.pending.add(1);
    // Root claims are NOT a benign race: two winners would seed two trees in
    // one component, so this stays a real CAS in every build.
    if (race_cas(st.color[v], expected, label, std::memory_order_release,
                 std::memory_order_acquire)) {
      SMPST_BENIGN_RACE_STORE(st.parent[v], v);
      st.queues[tid]->push(v);
      ++ts.roots_claimed;
      st.root_cursor.compare_exchange_strong(v, v + 1,
                                              std::memory_order_relaxed);
      return true;
    }
    st.pending.add(-1);  // lost the race; someone else claimed v
  }
}

/// Expands one vertex: colour-and-enqueue every unvisited neighbour (Alg. 1
/// lines 2.3–2.7).
/// Colour lines of neighbours this many iterations ahead are prefetched; far
/// enough to cover an L2 miss at typical expansion cost, near enough that the
/// line is rarely evicted again before use.
constexpr std::size_t kColorPrefetchDistance = 4;

template <storage::GraphStorage GS>
void expand_vertex(TraversalState<GS>& st, std::size_t tid,
                   std::uint32_t label, VertexId v,
                   std::vector<VertexId>& children, ThreadStats& ts) {
  children.clear();
  const auto nbrs = st.g.neighbors(v);
  const std::size_t deg = nbrs.size();
  ts.edges_scanned += deg;
  for (std::size_t i = 0; i < deg; ++i) {
    // The colour check is a random access per edge — the traversal's
    // dominant miss source — so request upcoming lines a few edges early.
    if (i + kColorPrefetchDistance < deg) {
      prefetch_read(&st.color[nbrs[i + kColorPrefetchDistance]]);
    }
    const VertexId w = nbrs[i];
    // Deliberately check-then-set (no CAS): the race is benign (§2, Fig. 1).
    // Two threads may both see 0 and both enqueue w; the duplicate expansion
    // is absorbed by the pending counter and parent stays valid either way.
    if (SMPST_BENIGN_RACE_LOAD(st.color[w]) == 0) {
      SMPST_BENIGN_RACE_STORE(st.color[w], label);
      SMPST_BENIGN_RACE_STORE(st.parent[w], v);
      children.push_back(w);
    }
  }
  // One batched counter update per expansion instead of one per child: the
  // pending counter is the single most contended cacheline at p >= 8, and
  // v's own in-flight count makes the batching safe — children become
  // counted (+k) and v consumed (-1) in a single RMW *before* the children
  // are published to the queue, so the counter can never drain (or even dip)
  // while any coloured-but-uncounted child exists, and a thief can never
  // decrement a child the batch has not yet counted.
  if (!children.empty()) {
    st.pending.consumed_produced(static_cast<std::int64_t>(children.size()));
    st.queues[tid]->push_bulk(children.data(), children.size());
    ts.enqueues += children.size();
    st.gate.notify_work();
  } else {
    st.pending.add(-1);  // v consumed, nothing produced
  }
  ++ts.vertices_processed;
}

template <storage::GraphStorage GS>
void traversal_worker(TraversalState<GS>& st, std::size_t tid,
                      const BaderCongOptions& opts, std::size_t p,
                      const StealDomains& domains, ThreadStats& ts) {
  SMPST_TRACE_SCOPE("bc.worker");
  const auto label = static_cast<std::uint32_t>(tid + 1);
  const std::size_t steal_attempts =
      opts.steal_attempts != 0 ? opts.steal_attempts : 2 * p;
  const std::size_t starvation_threshold = std::max<std::size_t>(
      1, static_cast<std::size_t>(opts.starvation_fraction *
                                  static_cast<double>(p)));
  Xoshiro256 rng(derive_stream_seed(opts.seed, 0x1000 + tid));

  std::vector<VertexId> children;
  children.reserve(1024);
  std::vector<VertexId> stolen;
  std::size_t starving_rounds = 0;
  std::size_t cancel_check = 0;

  while (!st.done.load(std::memory_order_acquire) &&
         !st.starved.load(std::memory_order_acquire) &&
         !st.cancelled.load(std::memory_order_acquire)) {
    // Fault site at the loop boundary: this worker holds no claimed vertex
    // here, so an injected throw only removes the worker from the traversal —
    // its queue stays stealable and the drain still completes (or the
    // starvation fallback fires), both of which the merge path handles.
    SMPST_FAILPOINT("core.bader_cong.expand");
    // Deadline poll, amortized so the clock read stays off the per-vertex
    // fast path (a first-iteration check keeps pre-expired tokens exact).
    if (opts.cancel != nullptr && (cancel_check++ & 63) == 0 &&
        opts.cancel->expired()) {
      st.cancelled.store(true, std::memory_order_release);
      st.gate.notify_work();
      break;
    }
    VertexId v;
    VertexId next_hint = kInvalidVertex;
    if (st.queues[tid]->pop(v, &next_hint)) {
      // Warm the *next* frontier vertex's CSR slice while this one expands:
      // neighbors() touches the offsets line and the first targets line, both
      // cold for vertices that arrived by steal or long-ago enqueue.
      // Resident backends only: on a blocked graph neighbors() is real
      // cache/disk work, not a pointer computation, so the "hint" would cost
      // more than the miss it hides.
      if constexpr (storage::is_resident_v<GS>) {
        if (next_hint != kInvalidVertex) {
          prefetch_read(st.g.neighbors(next_hint).data());
        }
      }
      starving_rounds = 0;
      expand_vertex(st, tid, label, v, children, ts);
      continue;
    }

    if (st.pending.drained()) {
      if (try_claim_root(st, tid, label, ts)) {
        SMPST_TRACE_INSTANT("bc.root");
        continue;
      }
      // Cursor exhausted; if no claim slipped in concurrently we are done.
      if (st.pending.drained()) {
        st.done.store(true, std::memory_order_release);
        st.gate.notify_work();
        break;
      }
    }

    // Steal the front half (or a fixed chunk) of a random victim's queue.
    // Victims are sampled from [0, p) \ {tid} directly (core/steal_policy.hpp)
    // so self-picks cannot burn the attempt budget — at p = 2 the old
    // [0, p)-with-continue sampling wasted half of every probe round and sent
    // starving workers to sleep early. On pinned NUMA pools the first probes
    // of each round go to same-node victims (StealDomains), keeping stolen
    // cachelines inside one LLC before reaching across the interconnect.
    bool got = false;
    for (std::size_t a = 0; a < steal_attempts && p > 1; ++a) {
      const std::size_t victim = domains.sample(rng, tid, a);
      ++ts.steal_attempts;
      const std::size_t avail = st.queues[victim]->size();
      if (avail == 0) continue;
      // Take at most half the victim's queue ("steals part of the queue"),
      // even under an explicit chunk size: emptying a busy victim makes
      // work slosh between thieves instead of getting processed.
      const std::size_t half = std::max<std::size_t>(1, avail / 2);
      const std::size_t chunk =
          opts.steal_chunk != 0 ? std::min(opts.steal_chunk, half) : half;
      stolen.clear();
      const std::size_t took = st.queues[victim]->steal(stolen, chunk);
      if (took > 0) {
        st.queues[tid]->push_bulk(stolen.data(), took);
        SMPST_TRACE_INSTANT("bc.steal");
        ++ts.steals_succeeded;
        ts.items_stolen += took;
        got = true;
        break;
      }
    }
    if (got) {
      starving_rounds = 0;
      continue;
    }

    // Nothing to do and nothing to steal: sleep on the gate (the paper's
    // condition-variable protocol) and watch for starvation.
    ++ts.sleep_episodes;
    std::size_t sleepers;
    {
      SMPST_TRACE_SCOPE("bc.sleep");
      sleepers = st.gate.sleep_for(opts.idle_sleep);
    }
    if (!st.pending.drained() && sleepers >= starvation_threshold) {
      if (++starving_rounds >= opts.starvation_patience &&
          opts.enable_fallback && p > 1) {
        st.starved.store(true, std::memory_order_release);
        st.gate.notify_work();
        break;
      }
    } else {
      starving_rounds = 0;
    }
  }
}

/// Phase 1: random walk of `steps` steps from `start`; returns the distinct
/// stub vertices in discovery order (first entry is the walk root).
template <storage::GraphStorage GS>
std::vector<VertexId> grow_stub_tree(TraversalState<GS>& st, VertexId start,
                                     std::size_t steps, std::size_t p,
                                     Xoshiro256& rng) {
  // Phase 1 is single-threaded (the pool enters only for phase 2, and the
  // region handoff publishes these writes), so plain accesses are race-free.
  std::vector<VertexId> stub;
  stub.reserve(steps + 1);
  st.color[start] = 1;
  st.parent[start] = start;
  stub.push_back(start);
  VertexId cur = start;
  for (std::size_t s = 0; s < steps; ++s) {
    const auto nbrs = st.g.neighbors(cur);
    if (nbrs.empty()) break;
    const VertexId next =
        nbrs[static_cast<std::size_t>(rng.next_bounded(nbrs.size()))];
    if (st.color[next] == 0) {
      st.color[next] = 1;
      st.parent[next] = cur;
      stub.push_back(next);
    }
    cur = next;
  }
  // Deal the stub vertices round-robin into the processors' queues and
  // re-colour each with its owner's label.
  for (std::size_t i = 0; i < stub.size(); ++i) {
    const std::size_t owner = i % p;
    st.color[stub[i]] = static_cast<std::uint32_t>(owner + 1);
    st.queues[owner]->push(stub[i]);
  }
  st.pending.reset(static_cast<std::int64_t>(stub.size()));
  return stub;
}

/// Fallback merge: partial parent links become tree edges; the partial trees
/// become the initial partition for Shiloach–Vishkin, which connects them;
/// the union of both edge sets is oriented into the final forest (the paper's
/// "merge the grown spanning subtree into a super-vertex and start SV").
template <storage::GraphStorage GS>
SpanningForest finish_with_sv(TraversalState<GS>& st, ThreadPool& pool,
                              const BaderCongOptions& opts) {
  const VertexId n = st.n;
  std::vector<Edge> edges;
  edges.reserve(n);
  std::vector<VertexId> labels(n);

  // Initial labels: root of each partial tree for coloured vertices
  // (memoized pointer walk), self for uncoloured ones.
  // Runs after the traversal region joined, so plain reads are race-free.
  std::vector<VertexId> root_of(n, kInvalidVertex);
  std::vector<VertexId> path;
  for (VertexId v = 0; v < n; ++v) {
    if (st.color[v] == 0) {
      labels[v] = v;
      continue;
    }
    const VertexId pv = st.parent[v];
    if (pv != v) edges.push_back(pv < v ? Edge{pv, v} : Edge{v, pv});
    if (root_of[v] != kInvalidVertex) {
      labels[v] = root_of[v];
      continue;
    }
    path.clear();
    VertexId cur = v;
    while (root_of[cur] == kInvalidVertex && st.parent[cur] != cur) {
      path.push_back(cur);
      cur = st.parent[cur];
    }
    const VertexId root = root_of[cur] != kInvalidVertex ? root_of[cur] : cur;
    root_of[cur] = root;
    for (VertexId u : path) root_of[u] = root;
    labels[v] = root;
  }

  SvOptions sv_opts;
  sv_opts.num_threads = pool.size();
  sv_opts.cancel = opts.cancel;  // the fallback still honours the deadline
  const std::vector<Edge> sv_edges =
      sv_tree_edges(st.g, pool, std::move(labels), sv_opts);
  edges.insert(edges.end(), sv_edges.begin(), sv_edges.end());
  return orient_tree_edges(n, edges);
}

template <storage::GraphStorage GS>
SpanningForest bader_cong_impl(const GS& g, ThreadPool& pool,
                               const BaderCongOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p = pool.size();

  SpanningForest forest;
  forest.parent.assign(n, kInvalidVertex);
  if (n == 0) return forest;

  TraversalState<GS> st(g, p);
  Xoshiro256 rng(derive_stream_seed(opts.seed, 0xabc));

  TraversalStats local_stats;
  local_stats.per_thread.resize(p);

  // Phase 0: NUMA-aware first touch — each worker faults in its own shard of
  // the colour/parent arrays (and its queue buffer) before any of them is
  // read, so the pages land on the touching worker's node instead of all on
  // the caller's.
  st.first_touch_init(pool);

  // Same-node-first steal probing when the pool's placement is known.
  const StealDomains domains = StealDomains::for_pool(p, pool.pin_threads());

  // Phase 1: stub spanning tree (single processor).
  WallTimer stub_timer;
  const auto start = static_cast<VertexId>(rng.next_bounded(n));
  const std::size_t steps =
      opts.stub_steps != 0 ? opts.stub_steps : 2 * p;
  std::vector<VertexId> stub;
  {
    SMPST_TRACE_SCOPE("bc.stub");
    stub = grow_stub_tree(st, start, steps, p, rng);
  }
  local_stats.stub_vertices = stub.size();
  local_stats.stub_seconds = stub_timer.elapsed_seconds();

  // Phase 2: work-stealing traversal.
  WallTimer trav_timer;
  {
    SMPST_TRACE_SCOPE("bc.traversal");
    pool.run([&](std::size_t tid) {
      traversal_worker(st, tid, opts, p, domains, local_stats.per_thread[tid]);
    });
  }
  local_stats.traversal_seconds = trav_timer.elapsed_seconds();

  // A worker observed the token expire before the traversal drained: the
  // partial forest is not a valid result, so surface the cancellation (unless
  // another worker completed the drain concurrently, in which case the forest
  // is whole and worth returning).
  if (st.cancelled.load(std::memory_order_relaxed) &&
      !st.done.load(std::memory_order_relaxed)) {
    throw CancelledError();
  }

  VertexId colored = 0;
  if (st.starved.load(std::memory_order_relaxed)) {
    // Detection mechanism fired: merge and finish with SV.
    local_stats.fallback_triggered = true;
    WallTimer fb_timer;
    {
      SMPST_TRACE_SCOPE("bc.sv_fallback");
      forest = finish_with_sv(st, pool, opts);
    }
    local_stats.fallback_seconds = fb_timer.elapsed_seconds();
    // The forest came from the merge, but the traversal-phase colouring is
    // still what the duplicate accounting below is measured against.
    for (VertexId v = 0; v < n; ++v) {
      if (st.color[v] != 0) ++colored;
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      forest.parent[v] = st.parent[v];  // after the region join: race-free
      if (st.color[v] != 0) ++colored;
    }
  }
  // duplicate_expansions = dequeues beyond one per *coloured* vertex,
  // computed on BOTH the normal and the starvation-fallback exits — a
  // fallback run used to leave it at zero, silently zeroing the
  // bc.duplicate_expansions metric exactly on the runs where races matter
  // most. The coloured count, not n: isolated or unreached vertices are
  // never dequeued, so subtracting n would wrap the uint64 whenever fewer
  // than n vertices entered the queues. Saturate at 0 for the
  // cancel-then-complete edge where a worker's final decrement raced the
  // drain (and for fallback halts, where coloured-but-never-dequeued
  // frontier vertices outnumber the dequeues).
  local_stats.colored_vertices = colored;
  const std::uint64_t dequeued = local_stats.total_processed();
  local_stats.duplicate_expansions =
      dequeued > colored ? dequeued - colored : 0;

  {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& runs = reg.counter("bc.runs");
    static obs::Counter& fallbacks = reg.counter("bc.fallbacks");
    static obs::Counter& steals = reg.counter("bc.steals");
    static obs::Counter& dups = reg.counter("bc.duplicate_expansions");
    runs.add(1);
    if (local_stats.fallback_triggered) fallbacks.add(1);
    steals.add(local_stats.total_steals());
    dups.add(local_stats.duplicate_expansions);
  }

  if (opts.stats != nullptr) *opts.stats = std::move(local_stats);
  return forest;
}

}  // namespace

SpanningForest bader_cong_spanning_tree(const Graph& g, ThreadPool& pool,
                                        const BaderCongOptions& opts) {
  return bader_cong_impl(g, pool, opts);
}

SpanningForest bader_cong_spanning_tree(const storage::BlockedGraph& g,
                                        ThreadPool& pool,
                                        const BaderCongOptions& opts) {
  return bader_cong_impl(g, pool, opts);
}

SpanningForest bader_cong_spanning_tree(const Graph& g,
                                        const BaderCongOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return bader_cong_spanning_tree(g, pool, opts);
}

SpanningForest bader_cong_spanning_tree(const storage::BlockedGraph& g,
                                        const BaderCongOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return bader_cong_spanning_tree(g, pool, opts);
}

}  // namespace smpst
