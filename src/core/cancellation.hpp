// Cooperative cancellation for long-running traversals.
//
// A CancelToken carries an explicit cancel flag plus an optional wall-clock
// deadline. Algorithm loops poll expired() at safe points (each dequeue for
// the asynchronous traversal, each level for level-synchronous BFS, every few
// thousand expansions for the sequential baselines) and abandon the partial
// result by throwing CancelledError, which the serving layer maps to a
// timed-out QueryResult. Polling is cooperative: an algorithm that never
// polls simply runs to completion and the caller applies the deadline after
// the fact.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace smpst {

/// Thrown by a traversal that observed its token expire mid-run.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("query cancelled") {}
};

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Explicit cancellation, e.g. from an admission-control watchdog.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  /// Arms the deadline; expired() starts comparing against the steady clock.
  void set_deadline(std::chrono::steady_clock::time_point d) noexcept {
    deadline_ = d;
    has_deadline_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True once the token is cancelled or the armed deadline has passed. The
  /// deadline branch reads the clock (~tens of ns); hot loops amortize calls
  /// with a local counter.
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws CancelledError when expired; a convenience for sequential loops.
  void poll() const {
    if (expired()) throw CancelledError();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace smpst
