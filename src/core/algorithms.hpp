// Name-keyed algorithm registry plus the umbrella header for the core
// spanning tree API. The registry lets benches, tests, and example CLIs pick
// algorithms by the names used in the paper's plots.
#pragma once

#include <string>
#include <vector>

#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/dfs.hpp"
#include "core/hcs.hpp"
#include "core/parallel_bfs.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/spanning_forest.hpp"
#include "core/validate.hpp"

namespace smpst {

class ThreadPool;

struct AlgorithmSpec {
  std::string name;
  std::string description;
  bool parallel = false;
};

/// Registered names: "bfs", "dfs" (sequential); "bader-cong", "sv",
/// "sv-lock", "hcs", "parallel-bfs" (parallel).
const std::vector<AlgorithmSpec>& algorithms();

bool is_algorithm(const std::string& name);

/// Runs the named algorithm. Parallel algorithms use `pool`; sequential ones
/// ignore it. Throws std::invalid_argument for unknown names.
SpanningForest run_algorithm(const std::string& name, const Graph& g,
                             ThreadPool& pool, std::uint64_t seed = 0x5eed);

/// Per-run knobs threaded through to the algorithm's own options struct.
struct RunOptions {
  std::uint64_t seed = 0x5eed;

  /// Cooperative cancellation, honoured by every algorithm. Sequential
  /// traversals poll inline; bader-cong and parallel-bfs poll at dequeue and
  /// level boundaries; the SV family and HCS poll once per
  /// graft-and-shortcut round via a barrier consensus. Expiry throws
  /// CancelledError.
  const CancelToken* cancel = nullptr;

  /// When non-null and the algorithm is "bader-cong", filled with traversal
  /// statistics.
  TraversalStats* stats = nullptr;
};

SpanningForest run_algorithm(const std::string& name, const Graph& g,
                             ThreadPool& pool, const RunOptions& opts);

/// Block-cached backend. Supports every spanning-tree kernel that has a
/// blocked instantiation ("bfs", "bader-cong", "sv", "sv-lock",
/// "parallel-bfs"); "dfs" and "hcs" throw std::invalid_argument — the
/// service's degradation path (sequential BFS) covers blocked entries.
SpanningForest run_algorithm(const std::string& name,
                             const storage::BlockedGraph& g, ThreadPool& pool,
                             const RunOptions& opts);

/// True when `name` can run over a BlockedGraph.
bool algorithm_supports_blocked(const std::string& name);

}  // namespace smpst
