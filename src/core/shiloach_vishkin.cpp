#include "core/shiloach_vishkin.hpp"

#include <atomic>
#include <limits>
#include <memory>

#include "core/cancellation.hpp"
#include "obs/trace.hpp"
#include "sched/barrier.hpp"
#include "sched/spinlock.hpp"
#include "sched/thread_pool.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/graph_storage.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/timer.hpp"

namespace smpst {

namespace {

constexpr EdgeId kNoWinner = std::numeric_limits<EdgeId>::max();

struct Range {
  std::size_t begin;
  std::size_t end;
};

Range chunk_of(std::size_t total, std::size_t tid, std::size_t p) {
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = tid * base + std::min(tid, extra);
  return {begin, begin + base + (tid < extra ? 1 : 0)};
}

struct SvState {
  // The constructor is SV's ONLY graph access: it materializes the canonical
  // edge array. Templated over the storage backend, so a blocked graph pays
  // its cache I/O once here and the label-propagation rounds run over plain
  // memory.
  template <storage::GraphStorage GS>
  SvState(const GS& g, std::vector<VertexId> initial, std::size_t p)
      : n(g.num_vertices()),
        labels(std::make_unique<std::atomic<VertexId>[]>(n)),
        winner(std::make_unique<std::atomic<EdgeId>[]>(n)),
        per_thread_edges(p),
        barrier(p) {
    SMPST_CHECK(initial.size() == n, "sv: initial label size mismatch");
    for (VertexId v = 0; v < n; ++v) {
      labels[v].store(initial[v], std::memory_order_relaxed);
      winner[v].store(kNoWinner, std::memory_order_relaxed);
    }
    // Canonical undirected edge array (u < v once each).
    edges.reserve(g.num_edges());
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (u < v) edges.push_back(Edge{u, v});
      }
    }
  }

  VertexId n;
  std::unique_ptr<std::atomic<VertexId>[]> labels;
  std::unique_ptr<std::atomic<EdgeId>[]> winner;
  std::vector<Edge> edges;
  std::vector<std::vector<Edge>> per_thread_edges;
  SpinBarrier barrier;
  std::atomic<bool> grafted_flag{false};
  std::atomic<bool> shortcut_flag{false};
  std::atomic<bool> cancel_flag{false};
  std::atomic<std::uint64_t> graft_count{0};

  // Lock table for the lock-based variant (hashed by root id).
  std::vector<Padded<SpinLock>> locks;
};

/// Cancellation consensus at a round boundary. Only thread 0 reads the
/// clock; the vote_or barrier publishes one shared verdict, so either every
/// worker starts the round or every worker returns — a lone early exit
/// would deadlock the others at the next barrier.
bool cancelled_by_consensus(SvState& st, std::size_t tid,
                            const CancelToken* cancel) {
  if (cancel == nullptr) return false;
  return vote_or(st.barrier, st.cancel_flag, tid,
                 tid == 0 && cancel->expired());
}

/// Pointer jumping until every component is a rooted star. Termination is a
/// barrier-consensus OR over per-thread "changed" votes. This full collapse
/// is the SMP adaptation's extra log n factor.
void shortcut_to_stars(SvState& st, std::size_t tid, const Range& vr,
                       SvStats& stats, bool collect_stats) {
  WallTimer timer;
  for (;;) {
    bool changed = false;
    for (std::size_t v = vr.begin; v < vr.end; ++v) {
      const VertexId dv = st.labels[v].load(std::memory_order_relaxed);
      const VertexId ddv = st.labels[dv].load(std::memory_order_relaxed);
      if (ddv != dv) {
        st.labels[v].store(ddv, std::memory_order_relaxed);
        changed = true;
      }
    }
    const bool any = vote_or(st.barrier, st.shortcut_flag, tid, changed);
    if (tid == 0 && collect_stats) ++stats.shortcut_passes;
    if (!any) break;
  }
  if (tid == 0 && collect_stats) {
    stats.shortcut_seconds += timer.elapsed_seconds();
  }
}

/// One worker of the election-based SV. Each iteration: propose (CAS
/// elections on the larger-labelled root of every crossing edge), apply
/// (winning edges graft their root and join the spanning forest), shortcut.
void sv_worker_election(SvState& st, std::size_t tid, std::size_t p,
                        const CancelToken* cancel, SvStats& stats,
                        bool collect_stats) {
  const Range vr = chunk_of(st.n, tid, p);
  const Range er = chunk_of(st.edges.size(), tid, p);
  auto& tree_edges = st.per_thread_edges[tid];

  for (;;) {
    if (cancelled_by_consensus(st, tid, cancel)) return;
    for (std::size_t v = vr.begin; v < vr.end; ++v) {
      st.winner[v].store(kNoWinner, std::memory_order_relaxed);
    }
    st.barrier.arrive_and_wait();  // winners reset before proposals

    WallTimer phase_timer;
    bool proposed = false;
    for (std::size_t e = er.begin; e < er.end; ++e) {
      const VertexId ru =
          st.labels[st.edges[e].u].load(std::memory_order_relaxed);
      const VertexId rv =
          st.labels[st.edges[e].v].load(std::memory_order_relaxed);
      if (ru == rv) continue;
      const VertexId target = ru > rv ? ru : rv;
      EdgeId expected = kNoWinner;
      st.winner[target].compare_exchange_strong(expected, e,
                                                std::memory_order_relaxed);
      proposed = true;
    }
    st.barrier.arrive_and_wait();  // proposals complete before applying

    for (std::size_t v = vr.begin; v < vr.end; ++v) {
      const EdgeId e = st.winner[v].load(std::memory_order_relaxed);
      if (e == kNoWinner) continue;
      const Edge edge = st.edges[e];
      const VertexId du = st.labels[edge.u].load(std::memory_order_relaxed);
      const VertexId small =
          du == static_cast<VertexId>(v)
              ? st.labels[edge.v].load(std::memory_order_relaxed)
              : du;
      st.labels[v].store(small, std::memory_order_relaxed);
      tree_edges.push_back(edge);
      st.graft_count.fetch_add(1, std::memory_order_relaxed);
    }
    if (tid == 0 && collect_stats) {
      stats.graft_seconds += phase_timer.elapsed_seconds();
    }

    const bool any = vote_or(st.barrier, st.grafted_flag, tid, proposed);
    if (tid == 0 && any) SMPST_TRACE_INSTANT("sv.round");
    if (tid == 0 && collect_stats && any) ++stats.iterations;
    if (!any) break;

    shortcut_to_stars(st, tid, vr, stats, collect_stats);
  }
  if (tid == 0 && collect_stats) stats.barriers = st.barrier.episodes();
}

/// Lock-based grafting: the "straightforward solution" from §2. A root is
/// grafted under a hashed per-root lock the moment a crossing edge is found;
/// the still-a-root re-check under the lock prevents double grafts.
void sv_worker_locked(SvState& st, std::size_t tid, std::size_t p,
                      const CancelToken* cancel, SvStats& stats,
                      bool collect_stats) {
  const Range vr = chunk_of(st.n, tid, p);
  const Range er = chunk_of(st.edges.size(), tid, p);
  auto& tree_edges = st.per_thread_edges[tid];

  for (;;) {
    if (cancelled_by_consensus(st, tid, cancel)) return;
    WallTimer phase_timer;
    bool grafted = false;
    for (std::size_t e = er.begin; e < er.end; ++e) {
      const VertexId ru =
          st.labels[st.edges[e].u].load(std::memory_order_relaxed);
      const VertexId rv =
          st.labels[st.edges[e].v].load(std::memory_order_relaxed);
      if (ru == rv) continue;
      const VertexId target = ru > rv ? ru : rv;
      auto& lock = *st.locks[target % st.locks.size()];
      lock.lock();
      // Re-check under the lock: someone may have grafted this root already.
      if (st.labels[target].load(std::memory_order_relaxed) == target) {
        const Edge edge = st.edges[e];
        const VertexId du = st.labels[edge.u].load(std::memory_order_relaxed);
        const VertexId small =
            du == target ? st.labels[edge.v].load(std::memory_order_relaxed)
                         : du;
        if (small != target) {
          st.labels[target].store(small, std::memory_order_relaxed);
          tree_edges.push_back(edge);
          st.graft_count.fetch_add(1, std::memory_order_relaxed);
          grafted = true;
        }
      }
      lock.unlock();
    }
    if (tid == 0 && collect_stats) {
      stats.graft_seconds += phase_timer.elapsed_seconds();
    }

    const bool any = vote_or(st.barrier, st.grafted_flag, tid, grafted);
    if (tid == 0 && any) SMPST_TRACE_INSTANT("sv.round");
    if (tid == 0 && collect_stats && any) ++stats.iterations;
    if (!any) break;

    shortcut_to_stars(st, tid, vr, stats, collect_stats);
  }
  if (tid == 0 && collect_stats) stats.barriers = st.barrier.episodes();
}

template <storage::GraphStorage GS>
std::vector<Edge> sv_tree_edges_impl(const GS& g, ThreadPool& pool,
                                     std::vector<VertexId> initial_labels,
                                     const SvOptions& opts) {
  const std::size_t p = pool.size();
  SvState st(g, std::move(initial_labels), p);
  if (opts.use_locks) {
    st.locks = std::vector<Padded<SpinLock>>(
        std::min<std::size_t>(std::max<VertexId>(1, st.n), 4096));
  }

  SvStats local_stats;
  const bool collect = opts.stats != nullptr;
  SMPST_TRACE_SCOPE("sv.run");
  pool.run([&](std::size_t tid) {
    if (opts.use_locks) {
      sv_worker_locked(st, tid, p, opts.cancel, local_stats, collect);
    } else {
      sv_worker_election(st, tid, p, opts.cancel, local_stats, collect);
    }
  });
  // Workers that lost the cancellation vote left the forest incomplete;
  // surface that to the caller instead of returning a partial edge set.
  if (opts.cancel != nullptr) opts.cancel->poll();

  std::vector<Edge> result;
  for (auto& te : st.per_thread_edges) {
    result.insert(result.end(), te.begin(), te.end());
  }
  if (collect) {
    local_stats.grafts = st.graft_count.load(std::memory_order_relaxed);
    *opts.stats = local_stats;
  }
  return result;
}

template <storage::GraphStorage GS>
SpanningForest sv_spanning_tree_impl(const GS& g, ThreadPool& pool,
                                     const SvOptions& opts) {
  std::vector<VertexId> identity(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) identity[v] = v;

  const auto edges = sv_tree_edges_impl(g, pool, std::move(identity), opts);

  WallTimer orient_timer;
  auto forest = orient_tree_edges(g.num_vertices(), edges);
  if (opts.stats != nullptr) {
    opts.stats->orient_seconds = orient_timer.elapsed_seconds();
  }
  return forest;
}

}  // namespace

std::vector<Edge> sv_tree_edges(const Graph& g, ThreadPool& pool,
                                std::vector<VertexId> initial_labels,
                                const SvOptions& opts) {
  return sv_tree_edges_impl(g, pool, std::move(initial_labels), opts);
}

std::vector<Edge> sv_tree_edges(const storage::BlockedGraph& g,
                                ThreadPool& pool,
                                std::vector<VertexId> initial_labels,
                                const SvOptions& opts) {
  return sv_tree_edges_impl(g, pool, std::move(initial_labels), opts);
}

SpanningForest sv_spanning_tree(const Graph& g, ThreadPool& pool,
                                const SvOptions& opts) {
  return sv_spanning_tree_impl(g, pool, opts);
}

SpanningForest sv_spanning_tree(const storage::BlockedGraph& g,
                                ThreadPool& pool, const SvOptions& opts) {
  return sv_spanning_tree_impl(g, pool, opts);
}

SpanningForest sv_spanning_tree(const Graph& g, const SvOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return sv_spanning_tree(g, pool, opts);
}

SpanningForest sv_spanning_tree(const storage::BlockedGraph& g,
                                const SvOptions& opts) {
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  ThreadPool pool(p);
  return sv_spanning_tree(g, pool, opts);
}

}  // namespace smpst
