// Level-synchronous parallel BFS spanning tree — the strategy modern
// frameworks (Ligra, GBBS) use for the same problem, included as a
// present-day comparison point for the paper's asynchronous work-stealing
// design.
//
// All p threads cooperatively expand one BFS frontier at a time, separated by
// barriers: each thread grabs contiguous grains of the current frontier from
// a shared cursor, claims unvisited neighbours with a CAS (unlike the
// traversal algorithm's benign races, level-synchronous BFS needs exact
// frontier membership), and appends discoveries to a per-thread buffer that
// is concatenated into the next frontier. The barrier count is O(diameter) —
// versus the paper's O(1) — which is exactly the structural difference the
// comparison bench (ablate_levelsync) quantifies.
#pragma once

#include <cstdint>

#include "core/cancellation.hpp"
#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst {

class ThreadPool;

struct ParallelBfsStats {
  std::uint64_t levels = 0;     ///< frontier expansions (== eccentricity + 1)
  std::uint64_t barriers = 0;   ///< barrier episodes
  std::uint64_t max_frontier = 0;
};

struct ParallelBfsOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
  std::size_t grain = 64;       ///< frontier vertices claimed per cursor grab
  ParallelBfsStats* stats = nullptr;

  /// Polled once per level on the coordinating thread (between parallel
  /// regions, so the check is barrier-safe); expiry throws CancelledError.
  const CancelToken* cancel = nullptr;
};

/// Spanning forest via level-synchronous parallel BFS over all components.
SpanningForest parallel_bfs_spanning_tree(const Graph& g,
                                          const ParallelBfsOptions& opts = {});
SpanningForest parallel_bfs_spanning_tree(const Graph& g, ThreadPool& pool,
                                          const ParallelBfsOptions& opts);

}  // namespace smpst
