// Level-synchronous parallel BFS spanning tree — the strategy modern
// frameworks (Ligra, GBBS) use for the same problem, included as a
// present-day comparison point for the paper's asynchronous work-stealing
// design.
//
// All p threads cooperatively expand one BFS frontier at a time, separated by
// barriers. Two expansion directions exist per level:
//
//   * push — each thread grabs contiguous grains of the current frontier
//     from a shared cursor, claims unvisited neighbours with a CAS (unlike
//     the traversal algorithm's benign races, level-synchronous BFS needs
//     exact frontier membership), and appends discoveries to a per-thread
//     buffer that is concatenated into the next frontier.
//   * pull — each thread scans its *owned* contiguous vertex shard for
//     unvisited vertices and attaches each to any neighbour flagged in the
//     current frontier, stopping at the first hit. When the frontier is
//     dense, this replaces |frontier-edges| scattered CAS claims with an
//     early-exiting sequential scan — the direction-optimizing idea of
//     Beamer et al. surveyed in "Beyond BFS" (PAPERS.md).
//
// The default kAuto mode switches push→pull when the frontier is large on
// both axes — its edge count clears an absolute floor and an alpha-fraction
// of the unexplored edges, and its vertex count reaches n/beta — and
// pull→push when the frontier shrinks back below n/beta. Staying in pull
// only requires the vertex-count bar, so the entry/exit asymmetry on the
// edge axis is the hysteresis: a level that barely crossed the push→pull
// line does not flip straight back, and the direction changes at most a
// handful of times per component (direction_switches in the stats).
//
// The barrier count is O(diameter) — versus the paper's O(1) — which is
// exactly the structural difference the comparison bench (ablate_levelsync)
// quantifies.
#pragma once

#include <cstdint>

#include "core/cancellation.hpp"
#include "core/instrumentation.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst {

class ThreadPool;

struct ParallelBfsStats {
  std::uint64_t levels = 0;     ///< frontier expansions (== eccentricity + 1)
  std::uint64_t barriers = 0;   ///< barrier episodes
  std::uint64_t max_frontier = 0;
  std::uint64_t push_levels = 0;  ///< levels expanded in push direction
  std::uint64_t pull_levels = 0;  ///< levels expanded in pull direction
  std::uint64_t direction_switches = 0;  ///< push↔pull transitions
};

/// Expansion direction policy for the level loop.
enum class BfsDirection {
  kAuto,      ///< direction-optimizing: density-driven push↔pull + hysteresis
  kPushOnly,  ///< classic level-synchronous push (the pre-hybrid behaviour)
};

struct ParallelBfsOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
  std::size_t grain = 64;       ///< frontier vertices claimed per cursor grab
  ParallelBfsStats* stats = nullptr;

  /// Polled once per level on the coordinating thread (between parallel
  /// regions, so the check is barrier-safe, and before the level's direction
  /// is chosen, so push and pull levels observe it identically); expiry
  /// throws CancelledError.
  const CancelToken* cancel = nullptr;

  BfsDirection direction = BfsDirection::kAuto;

  /// push→pull requires frontier_edges * alpha > unexplored_edges, i.e. the
  /// frontier's edges must exceed 1/alpha of the unexplored edges (Beamer's
  /// alpha; larger = pulls more eagerly). Beamer's classic 15 assumes a pull
  /// level is nearly free; ours costs an O(n/p) shard scan plus two barriers
  /// regardless of frontier size, so the default demands the frontier
  /// dominate the remaining work (measured: medium-diameter families like
  /// geo-flat peak at ~0.43 of unexplored and lose in pull, while
  /// random-nlogn's big levels reach 0.61-1.0 and win ~2x).
  double alpha = 2.0;
  /// Pull also requires (entering and staying) frontier_size * beta >= n:
  /// the whole-shard scan only pays off when a decent fraction of all
  /// vertices can early-exit it. Larger beta = pulls on smaller frontiers.
  double beta = 18.0;
  /// Absolute floor on frontier_edges before pull is considered: keeps
  /// high-diameter trickles (a chain's 2-edge frontier near exhaustion,
  /// where unexplored_edges → 0 makes the alpha ratio meaningless) from ever
  /// paying a whole-shard scan.
  std::uint64_t pull_min_frontier_edges = 1024;
};

/// Spanning forest via level-synchronous parallel BFS over all components.
/// The BlockedGraph overloads run the identical level loop over the
/// block-cached backend (storage/graph_storage.hpp).
SpanningForest parallel_bfs_spanning_tree(const Graph& g,
                                          const ParallelBfsOptions& opts = {});
SpanningForest parallel_bfs_spanning_tree(const Graph& g, ThreadPool& pool,
                                          const ParallelBfsOptions& opts);
SpanningForest parallel_bfs_spanning_tree(const storage::BlockedGraph& g,
                                          const ParallelBfsOptions& opts = {});
SpanningForest parallel_bfs_spanning_tree(const storage::BlockedGraph& g,
                                          ThreadPool& pool,
                                          const ParallelBfsOptions& opts);

}  // namespace smpst
