#include "core/validate.hpp"

#include <algorithm>
#include <sstream>

#include "storage/blocked_graph.hpp"
#include "storage/graph_storage.hpp"

namespace smpst {

namespace {

ValidationReport fail(std::string msg) {
  ValidationReport r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

/// Connected-component count via BFS over the storage interface — the same
/// labelling graph/stats.hpp computes for Graph, written against neighbors()
/// only so the blocked backend validates with the identical oracle.
template <storage::GraphStorage GS>
VertexId count_components(const GS& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue;
  VertexId components = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = true;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  return components;
}

template <storage::GraphStorage GS>
ValidationReport validate_impl(const GS& g, const SpanningForest& forest) {
  const VertexId n = g.num_vertices();
  if (forest.parent.size() != n) {
    return fail("forest size does not match graph");
  }

  // 1 + 2: range and edge-membership checks. Membership is a binary search
  // over the sorted neighbour slice — Graph::has_edge does exactly this, and
  // phrasing it through neighbors() makes it backend-generic.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = forest.parent[v];
    if (p >= n) {
      std::ostringstream os;
      os << "vertex " << v << " has out-of-range parent " << p;
      return fail(os.str());
    }
    if (p != v) {
      const auto nbrs = g.neighbors(v);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), p)) {
        std::ostringstream os;
        os << "tree edge {" << v << ", " << p << "} is not a graph edge";
        return fail(os.str());
      }
    }
  }

  // 3: acyclicity via iterative resolution with memoized roots. A cycle shows
  // up as a walk that returns to an in-progress vertex.
  std::vector<VertexId> root_of(n, kInvalidVertex);
  constexpr VertexId kInProgress = kInvalidVertex - 1;
  std::vector<VertexId> path;
  for (VertexId v = 0; v < n; ++v) {
    if (root_of[v] != kInvalidVertex) continue;
    path.clear();
    VertexId cur = v;
    while (true) {
      if (root_of[cur] == kInProgress) {
        std::ostringstream os;
        os << "parent cycle through vertex " << cur;
        return fail(os.str());
      }
      if (root_of[cur] != kInvalidVertex) break;       // memoized root below
      if (forest.parent[cur] == cur) {                 // reached a real root
        root_of[cur] = cur;
        break;
      }
      root_of[cur] = kInProgress;
      path.push_back(cur);
      cur = forest.parent[cur];
    }
    const VertexId root = root_of[cur];
    for (VertexId u : path) root_of[u] = root;
  }

  // 4: component agreement. Tree roots must be exactly one per component and
  // every graph edge must stay inside one tree.
  ValidationReport r;
  r.num_trees = forest.num_trees();
  r.tree_edges = forest.num_tree_edges();
  r.graph_components = count_components(g);
  if (r.num_trees != r.graph_components) {
    std::ostringstream os;
    os << "forest has " << r.num_trees << " trees but graph has "
       << r.graph_components << " components";
    return fail(os.str());
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : g.neighbors(u)) {
      if (u < w && root_of[u] != root_of[w]) {
        std::ostringstream os;
        os << "edge {" << u << ", " << w
           << "} spans two trees: a component is split";
        return fail(os.str());
      }
    }
  }
  return r;
}

}  // namespace

ValidationReport validate_spanning_forest(const Graph& g,
                                          const SpanningForest& forest) {
  return validate_impl(g, forest);
}

ValidationReport validate_spanning_forest(const storage::BlockedGraph& g,
                                          const SpanningForest& forest) {
  return validate_impl(g, forest);
}

}  // namespace smpst
