// Full spanning-forest validation, used by the whole test suite as the oracle
// for every algorithm (the parallel algorithm's output is nondeterministic in
// shape, so tests verify *validity*, not equality with a reference tree).
#pragma once

#include <string>

#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::storage {
class BlockedGraph;
}  // namespace smpst::storage

namespace smpst {

struct ValidationReport {
  bool ok = true;
  std::string error;  ///< first failure, empty when ok

  VertexId num_trees = 0;
  VertexId graph_components = 0;
  EdgeId tree_edges = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// Checks that `forest` is a spanning forest of `g`:
///  1. size matches and every parent id is in range,
///  2. every non-root parent link is an edge of g,
///  3. the parent relation is acyclic,
///  4. the forest has exactly one root per connected component of g and
///     both endpoints of every graph edge land in the same tree
///     (i.e. each tree spans its entire component).
ValidationReport validate_spanning_forest(const Graph& g,
                                          const SpanningForest& forest);
ValidationReport validate_spanning_forest(const storage::BlockedGraph& g,
                                          const SpanningForest& forest);

}  // namespace smpst
