// CPU/NUMA topology discovery and NUMA-aware memory placement.
//
// Everything placement-related starts from the process's *allowed* CPU set
// (sched_getaffinity), not from std::thread::hardware_concurrency(): under
// taskset or a cgroup cpuset the two differ, and placing threads by raw
// hardware index silently pins them outside the container's share — the bug
// this module replaces (src/support/cpu.cpp history). On top of the allowed
// set it discovers the NUMA node of each CPU from sysfs, with a graceful
// single-node fallback on hosts (or platforms) where that information is
// unavailable, so callers can shard data and steal-probe by socket without
// ever needing libnuma.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smpst {

/// Snapshot of the CPUs this process may run on, grouped by NUMA node.
///
/// The slot order is the placement contract used across the library:
/// `ThreadPool` pins worker t to `cpu_of_slot(t)`, traversals first-touch
/// the t-th vertex shard from worker t, and the steal policy derives its
/// intra-node victim sets from `node_of_slot`. Grouping by node (all of node
/// A's allowed CPUs first, ascending, then node B's, ...) makes contiguous
/// worker ranges land on the same socket, which is exactly what contiguous
/// vertex sharding wants.
struct CpuTopology {
  /// Allowed CPU ids, grouped by node, ascending within each node.
  std::vector<int> cpus;
  /// NUMA node of cpus[i] (same length as `cpus`).
  std::vector<int> nodes;
  /// Distinct NUMA nodes among the allowed CPUs (>= 1 once discovered).
  std::size_t num_nodes = 1;

  /// Fresh snapshot: sched_getaffinity + cached sysfs node map. Never fails —
  /// on error (or off Linux) it degrades to a single node holding one CPU per
  /// hardware context.
  static CpuTopology discover();

  /// Explicit topology for tests: `cpu_ids[i]` lives on `node_ids[i]`.
  /// Regroups by node exactly as discover() would.
  static CpuTopology from_cpus(const std::vector<int>& cpu_ids,
                               const std::vector<int>& node_ids);

  [[nodiscard]] std::size_t size() const noexcept { return cpus.size(); }
  [[nodiscard]] bool slot_valid(std::size_t slot) const noexcept {
    return slot < cpus.size();
  }
  [[nodiscard]] int cpu_of_slot(std::size_t slot) const noexcept {
    return cpus[slot];
  }
  [[nodiscard]] int node_of_slot(std::size_t slot) const noexcept {
    return nodes[slot];
  }
};

/// Process-lifetime cache of discover() from first use. Callers that must
/// observe affinity-mask changes made *after* first use (the restricted-mask
/// tests, thread pinning) should call CpuTopology::discover() directly.
const CpuTopology& topology();

/// Best-effort MPOL_INTERLEAVE of the pages covering [addr, addr + bytes)
/// across all NUMA nodes of the allowed set, migrating already-faulted pages
/// (so it works on arrays that were filled before the call — the CSR arrays a
/// generator built single-threaded). Returns true when the range is
/// interleaved or there is nothing to do (single node, empty range); false
/// when the kernel refused. Raw mbind(2) syscall — no libnuma dependency.
bool interleave_memory(const void* addr, std::size_t bytes);

}  // namespace smpst
