// Clang thread-safety (capability) analysis macros, plus annotated lock and
// condition-variable wrappers that make the analysis usable with libstdc++.
//
// The macros expand to Clang's capability attributes when the compiler
// supports them and to nothing otherwise, so GCC builds are unaffected.
// Enable checking with the SMPST_WERROR_TSA CMake option, which adds
// `-Wthread-safety -Werror=thread-safety` under Clang:
//
//   CXX=clang++ cmake -B build-tsa -S . -DSMPST_WERROR_TSA=ON
//   cmake --build build-tsa -j
//
// Why the wrappers: libstdc++'s std::mutex / std::lock_guard carry no
// capability attributes, so locks taken through them are invisible to the
// analysis and every SMPST_GUARDED_BY field would warn. smpst::Mutex is a
// zero-cost annotated shell over std::mutex; LockGuard<M> is an annotated
// scoped guard that works for both Mutex and SpinLock; CondVar pairs with
// Mutex for blocking waits (condition_variable_any, so no native-handle
// escape hatch that would hide the capability transfer).
//
// Contract (enforced by tools/smpst_lint.py): src/core and src/sched never
// name std::mutex, std::lock_guard, std::unique_lock, std::condition_variable
// or std::thread directly — they use these wrappers (or ThreadPool), keeping
// every lock acquisition visible to the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/lock_order.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SMPST_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SMPST_THREAD_ANNOTATION
#define SMPST_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a class as a capability (lockable). The string names the capability
/// kind in diagnostics, canonically "mutex".
#define SMPST_CAPABILITY(x) SMPST_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SMPST_SCOPED_CAPABILITY SMPST_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define SMPST_GUARDED_BY(x) SMPST_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the given capability.
#define SMPST_PT_GUARDED_BY(x) SMPST_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capabilities.
#define SMPST_REQUIRES(...) \
  SMPST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and does not release it.
#define SMPST_ACQUIRE(...) \
  SMPST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define SMPST_RELEASE(...) \
  SMPST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `success`.
#define SMPST_TRY_ACQUIRE(success, ...) \
  SMPST_THREAD_ANNOTATION(try_acquire_capability(success, __VA_ARGS__))

/// Function that must NOT be called while holding the capabilities
/// (deadlock prevention, e.g. notify functions that take the same mutex).
#define SMPST_EXCLUDES(...) SMPST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its class.
#define SMPST_RETURN_CAPABILITY(x) SMPST_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: body intentionally not analyzed. Every use must carry a
/// comment justifying why the analysis cannot follow (e.g. a condition
/// variable's internal unlock/relock).
#define SMPST_NO_THREAD_SAFETY_ANALYSIS \
  SMPST_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace smpst {

/// Annotated std::mutex. Same size and cost in Release; the attribute is
/// compile-time. Under SMPST_LOCK_ORDER (Debug default) each lock/unlock
/// also reports to the lockdep layer; pass a `lockdep::rank::k*` constant to
/// place the mutex in the global acquisition order (see lock_order.hpp).
class SMPST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  constexpr explicit Mutex(lockdep::Rank rank) noexcept : lockdep_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMPST_ACQUIRE() {
    lockdep_.note_before_lock();
    m_.lock();
    lockdep_.note_locked();
  }
  void unlock() SMPST_RELEASE() {
    lockdep_.note_unlock();
    m_.unlock();
  }
  bool try_lock() SMPST_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    lockdep_.note_try_locked();
    return true;
  }

 private:
  std::mutex m_;
  [[no_unique_address]] lockdep::Tracked lockdep_;
};

/// Annotated scoped guard, usable with any annotated lockable (Mutex,
/// SpinLock). The attributes survive template instantiation, so the analysis
/// sees each LockGuard<M> acquire/release its concrete mutex.
template <typename M>
class SMPST_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& m) SMPST_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() SMPST_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& m_;
};

/// Condition variable paired with smpst::Mutex. The wait overloads take the
/// Mutex itself (not a guard) and are annotated SMPST_REQUIRES, so a caller
/// must already hold the mutex — use the explicit-loop idiom:
///
///   LockGuard<Mutex> lk(mutex_);
///   while (!condition_) cv_.wait(mutex_);
///
/// rather than a predicate lambda: the loop body lives in the caller, where
/// the analysis can see the capability, instead of inside an unannotated
/// lambda. Internally condition_variable_any unlocks/relocks the Mutex; those
/// calls sit in libstdc++'s headers, outside the analysis' warning scope, and
/// the capability is held again by the time wait() returns — exactly what the
/// REQUIRES contract promises the caller.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& m) SMPST_REQUIRES(m) { cv_.wait(m); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& m,
                          const std::chrono::duration<Rep, Period>& dur)
      SMPST_REQUIRES(m) {
    return cv_.wait_for(m, dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& m, const std::chrono::time_point<Clock, Duration>& deadline)
      SMPST_REQUIRES(m) {
    return cv_.wait_until(m, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace smpst
