// Lightweight always-on and debug-only assertion macros.
//
// SMPST_CHECK   — always evaluated; aborts with a message on failure. Used for
//                 API preconditions whose violation is a caller bug.
// SMPST_ASSERT  — compiled out in NDEBUG builds; used on hot paths for
//                 internal invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace smpst::detail {

[[noreturn]] inline void assertion_failure(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const char* msg) {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n  %s\n", kind, expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace smpst::detail

#define SMPST_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::smpst::detail::assertion_failure("SMPST_CHECK", #expr, __FILE__,    \
                                         __LINE__, msg);                    \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SMPST_ASSERT(expr) ((void)0)
#else
#define SMPST_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::smpst::detail::assertion_failure("SMPST_ASSERT", #expr, __FILE__,   \
                                         __LINE__, nullptr);                \
    }                                                                       \
  } while (0)
#endif
