// Cache-line geometry and false-sharing avoidance helpers.
//
// The paper's SMP cost model (Helman–JáJá) charges for non-contiguous memory
// accesses precisely because they miss in cache; the runtime structures here
// (per-thread queues, counters) are padded so cross-thread traffic never
// shares a line.
#pragma once

#include <cstddef>
#include <new>

namespace smpst {

// A fixed 64 bytes rather than std::hardware_destructive_interference_size:
// the latter varies with compiler flags (and warns when used in headers),
// while 64 is correct for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that adjacent array elements live on distinct cache lines.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace smpst
