// Failpoints: named fault-injection sites compiled into the binary.
//
// A site is a macro placed at an exception-safe point in production code:
//
//   SMPST_FAILPOINT("service.executor.execute");
//
// When no failpoint is enabled anywhere in the process the macro costs one
// relaxed atomic load — cheap enough for traversal inner loops. A site is
// activated by API (fail::enable) or by the SMPST_FAILPOINTS environment
// variable, read once at process start:
//
//   SMPST_FAILPOINTS="service.executor.execute=10%throw;graph.io.load=delay(5)"
//
// Spec grammar (modifiers in any order, each at most once):
//
//   spec   := "off" | { modifier } action [ "(" millis ")" ]
//   modifier := FLOAT "%"    fire with this probability (0..100)
//             | UINT "*"     fire at most this many times (1* = one-shot)
//             | UINT "+"     skip the first N hits (after-N trigger)
//   action := "throw"        throw fail::FailpointError at the site
//           | "delay"        sleep `millis` (default 1) at the site
//           | "wake"         no inline effect; SMPST_FAILPOINT_TRIGGERED
//                            sites observe it (e.g. spurious wakeups)
//
// Examples: "throw", "25%throw", "1*throw", "3+throw", "50%delay(5)".
//
// Sites must be placed where a throw cannot break invariants: never between
// a resource acquisition and its commit, and never inside a barrier-
// synchronized region another thread could wait on (a thrown-past barrier
// deadlocks the group — see docs/ROBUSTNESS.md for the placement rules).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smpst::fail {

/// Thrown by a site whose failpoint is configured with the "throw" action.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("injected fault at failpoint: " + site) {}
};

enum class Action : std::uint8_t { kNone = 0, kThrow, kDelay, kWake };

/// One named fault site. All fields are atomics so the hit path never locks;
/// enable()/disable() publish a new configuration field-by-field (a hit that
/// interleaves with reconfiguration sees some torn mix of old and new
/// settings, which is harmless for fault injection).
struct Site {
  explicit Site(std::string site_name) : name(std::move(site_name)) {}

  const std::string name;
  std::atomic<Action> action{Action::kNone};
  std::atomic<std::uint32_t> prob_permille{1000};  ///< fire chance out of 1000
  std::atomic<std::uint64_t> skip{0};              ///< hits to pass through first
  std::atomic<std::int64_t> remaining{-1};         ///< fires left; -1 = unlimited
  std::atomic<std::uint32_t> delay_ms{1};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

/// True when at least one failpoint is enabled process-wide. Single relaxed
/// load; the macros gate on it so disabled builds stay at full speed.
[[nodiscard]] bool any_active() noexcept;

/// Finds or creates the site registry entry. The reference is stable for the
/// life of the process (sites are never destroyed).
Site& site(const char* name);

/// Evaluates the site's trigger chain (skip, probability, fire budget) and
/// returns the action that fired, performing kDelay's sleep inline. kThrow is
/// NOT thrown here — callers decide (hit() throws, hit_triggered() throws).
Action evaluate(Site& s);

/// Inline site body: throws FailpointError on kThrow, sleeps on kDelay.
void hit(Site& s);

/// Site body for sites with custom behavior (e.g. spurious wakeups): returns
/// true when any action fired. kThrow still throws; kDelay sleeps first.
bool hit_triggered(Site& s);

/// Arms `name` with the given spec (grammar above). Enabling an already
/// enabled site replaces its configuration. "off" is equivalent to disable().
/// Throws std::invalid_argument on a malformed spec.
void enable(const std::string& name, const std::string& spec);

/// Disarms one site (no-op when not enabled).
void disable(const std::string& name);

/// Disarms every site and resets hit/fire counters.
void disable_all();

struct Info {
  std::string name;
  bool active = false;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Every registered site (enabled or not), in registration order.
[[nodiscard]] std::vector<Info> list();

/// Parses a ';' or ','-separated "name=spec" list, e.g. the SMPST_FAILPOINTS
/// environment payload. Returns the number of sites enabled. Throws
/// std::invalid_argument on malformed input.
std::size_t enable_from_spec_list(const std::string& specs);

}  // namespace smpst::fail

/// Plain fault site: injects throws and delays.
#define SMPST_FAILPOINT(name)                               \
  do {                                                      \
    if (::smpst::fail::any_active()) {                      \
      static ::smpst::fail::Site& smpst_fp_site_ =          \
          ::smpst::fail::site(name);                        \
      ::smpst::fail::hit(smpst_fp_site_);                   \
    }                                                       \
  } while (0)

/// Fault site with site-specific behavior: evaluates to true when the
/// failpoint fired (after performing any inline delay/throw).
#define SMPST_FAILPOINT_TRIGGERED(name)                     \
  (::smpst::fail::any_active() && [] {                      \
    static ::smpst::fail::Site& smpst_fp_site_ =            \
        ::smpst::fail::site(name);                          \
    return ::smpst::fail::hit_triggered(smpst_fp_site_);    \
  }())
