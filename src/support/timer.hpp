// Wall-clock timing utilities used by the benchmark harness and the
// instrumented algorithm runs.
#pragma once

#include <chrono>

namespace smpst {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; used to attribute
/// phases (stub tree vs traversal vs fallback) inside the algorithms.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.elapsed_seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace smpst
