// CPU accounting and best-effort thread placement, both derived from the
// process's *allowed* CPU set (support/topology.hpp) rather than the raw
// hardware count — the two differ under taskset/cgroup restriction, and
// honouring the mask is what keeps pool sizing and pinning inside the
// container's share.
#pragma once

#include <cstddef>

namespace smpst {

/// Number of execution contexts this process is allowed to run on (>= 1):
/// CPU_COUNT of the affinity mask, re-read on every call so runtime mask
/// changes are observed. Falls back to hardware_concurrency() where the mask
/// is unavailable. Default pool sizing uses this, so a 4-CPU cgroup slice on
/// a 64-core host gets 4 workers, not 64.
std::size_t hardware_threads() noexcept;

/// Pins the calling thread to placement slot `slot`: the slot-th CPU of the
/// allowed set in topology order (grouped by NUMA node — see
/// CpuTopology). Returns false honestly when the slot cannot be honoured —
/// `slot` is beyond the allowed-CPU count, or the affinity call itself
/// failed — instead of silently wrapping onto an arbitrary context. Callers
/// (ThreadPool) surface failures; they do not hide them.
bool pin_current_thread(std::size_t slot) noexcept;

}  // namespace smpst
