// CPU topology probing and best-effort thread placement.
#pragma once

#include <cstddef>

namespace smpst {

/// Number of hardware execution contexts visible to this process (>= 1).
std::size_t hardware_threads() noexcept;

/// Best-effort pinning of the calling thread to `cpu % hardware_threads()`.
/// Returns true if the affinity call succeeded. On single-core containers
/// this is a no-op that returns true.
bool pin_current_thread(std::size_t cpu) noexcept;

}  // namespace smpst
