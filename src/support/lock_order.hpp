// Runtime lock-order (deadlock) detection for the smpst lock wrappers.
//
// Every smpst::Mutex / smpst::SpinLock carries an optional *rank* — a small
// integer naming its place in the global acquisition order. The rule is
// strict: a thread may only acquire a mutex whose rank is greater than the
// rank of every mutex it already holds. Violations print the full held-lock
// stack and abort, turning "TSan-clean but deadlock-prone" orderings into a
// deterministic test failure long before the interleaving that actually
// deadlocks shows up.
//
// Unranked mutexes (and same-rank pairs, which the rank rule already rejects
// for *ranked* locks) fall back to a dynamic pair-order registry: the first
// observed acquisition order A→B is recorded, and a later B→A nesting on any
// thread aborts. This is the classic lockdep scheme — it catches inversions
// even when the two threads never race on the same run.
//
// Cost model: the layer only exists when SMPST_LOCK_ORDER_CHECKS is defined
// to 1 (CMake option SMPST_LOCK_ORDER, default ON for Debug builds). When
// off, Tracked is an empty [[no_unique_address]] member and every note_*()
// call is an empty inline function: sizeof(Mutex) == sizeof(std::mutex) and
// the lock fast path is untouched — asserted by tests/test_lock_order.cpp.
//
// The canonical rank table lives in docs/CONCURRENCY.md; the static
// counterpart of this check is tools/analyze/smpst_analyze.py rule SA3,
// which extracts the acquisition graph at analysis time.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef SMPST_LOCK_ORDER_CHECKS
#define SMPST_LOCK_ORDER_CHECKS 0
#endif

namespace smpst::lockdep {

/// A mutex's place in the global acquisition order. order == 0 means
/// "unranked": the mutex participates only in the dynamic pair registry.
struct Rank {
  std::uint16_t order = 0;
  const char* name = nullptr;
};

// The global acquisition order. Nested acquisitions must move strictly down
// this table (increasing order). Two locks of the same rank never nest —
// instances of the same class (sessions, slot watches, queue spinlocks) are
// only ever held one at a time. Gaps are deliberate headroom for new locks.
namespace rank {
inline constexpr Rank kPoolRegion{10, "sched.pool.region"};
inline constexpr Rank kSession{20, "service.session"};
inline constexpr Rank kNetMailbox{30, "net.mailbox"};
inline constexpr Rank kExecutorPause{40, "service.executor.pause"};
inline constexpr Rank kExecutorWatchdog{41, "service.executor.watchdog"};
inline constexpr Rank kExecutorDrain{42, "service.executor.drain"};
inline constexpr Rank kExecutorSlotWatch{43, "service.executor.slot_watch"};
inline constexpr Rank kBoundedQueue{50, "service.bounded_queue"};
inline constexpr Rank kGraphRegistry{55, "service.graph_registry"};
inline constexpr Rank kStorageCacheShard{57, "storage.block_cache.shard"};
inline constexpr Rank kPoolState{60, "sched.pool.state"};
inline constexpr Rank kBarrier{64, "sched.barrier"};
inline constexpr Rank kIdleGate{66, "sched.idle_gate"};
inline constexpr Rank kWorkQueue{70, "sched.work_queue"};
inline constexpr Rank kFailpoint{80, "support.failpoint"};
inline constexpr Rank kMetrics{90, "obs.metrics"};
inline constexpr Rank kTrace{95, "obs.trace"};
}  // namespace rank

#if SMPST_LOCK_ORDER_CHECKS

inline constexpr bool kEnabled = true;

/// Order check against the calling thread's held-lock stack. Called before
/// a *blocking* acquisition (so a real inversion reports instead of
/// deadlocking); aborts with a full report on violation.
void before_lock(const void* m, Rank r) noexcept;

/// Push onto the held stack after a blocking acquisition succeeds.
void locked(const void* m, Rank r) noexcept;

/// Push after a successful try_lock. No order check: a try_lock never
/// blocks, so it cannot complete a deadlock cycle on its own; the pair
/// registry still learns the nesting for later blocking acquisitions.
void try_locked(const void* m, Rank r) noexcept;

/// Pop from the held stack (out-of-order unlock is supported).
void released(const void* m) noexcept;

/// Purge a destroyed mutex from the pair registry so a new mutex reusing
/// the address does not inherit stale edges.
void destroyed(const void* m) noexcept;

/// Number of locks the calling thread currently holds (test hook).
std::size_t held_count() noexcept;

class Tracked {
 public:
  constexpr Tracked() noexcept = default;
  constexpr explicit Tracked(Rank r) noexcept : rank_(r) {}
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;
  ~Tracked() { destroyed(this); }

  void note_before_lock() noexcept { before_lock(this, rank_); }
  void note_locked() noexcept { locked(this, rank_); }
  void note_try_locked() noexcept { try_locked(this, rank_); }
  void note_unlock() noexcept { released(this); }

 private:
  Rank rank_{};
};

#else  // !SMPST_LOCK_ORDER_CHECKS

inline constexpr bool kEnabled = false;

inline std::size_t held_count() noexcept { return 0; }

/// Empty shell: as a [[no_unique_address]] member it occupies no storage and
/// every call compiles to nothing.
class Tracked {
 public:
  constexpr Tracked() noexcept = default;
  constexpr explicit Tracked(Rank) noexcept {}
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;

  void note_before_lock() noexcept {}
  void note_locked() noexcept {}
  void note_try_locked() noexcept {}
  void note_unlock() noexcept {}
};

#endif  // SMPST_LOCK_ORDER_CHECKS

}  // namespace smpst::lockdep
