#include "support/timer.hpp"

// Header-only today; the translation unit pins the vtable-free types into the
// library so downstream link lines stay uniform.
