#include "support/failpoint.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>

#include "support/prng.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::fail {

namespace {

/// Count of currently enabled sites; the macros' fast-path gate.
std::atomic<std::uint64_t> g_active{0};

/// Site registry: the deque keeps Site addresses stable across registration,
/// and the mutex serializes registration and (re)configuration. Site *hits*
/// never take it — the per-site fields are atomics.
struct Registry {
  Mutex mutex{lockdep::rank::kFailpoint};
  std::deque<Site> sites SMPST_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

Site* find_locked(Registry& r, const std::string& name)
    SMPST_REQUIRES(r.mutex) {
  for (Site& s : r.sites) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Xoshiro256& thread_rng() {
  // Mixing the thread id into the seed keeps streams distinct; determinism
  // across runs is not a goal for fault injection.
  thread_local Xoshiro256 rng(derive_stream_seed(
      0xfa11, std::hash<std::thread::id>{}(std::this_thread::get_id())));
  return rng;
}

struct ParsedSpec {
  Action action = Action::kNone;
  std::uint32_t prob_permille = 1000;
  std::uint64_t skip = 0;
  std::int64_t remaining = -1;
  std::uint32_t delay_ms = 1;
};

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("failpoint spec '" + spec + "': " + why);
}

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec p;
  if (spec == "off") return p;  // kNone
  std::size_t pos = 0;
  bool saw_prob = false, saw_count = false, saw_skip = false;
  while (pos < spec.size() &&
         (std::isdigit(static_cast<unsigned char>(spec[pos])) != 0 ||
          spec[pos] == '.')) {
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(spec.substr(pos), &consumed);
    } catch (const std::exception&) {
      bad_spec(spec, "malformed modifier number");
    }
    pos += consumed;
    if (pos >= spec.size()) bad_spec(spec, "modifier without suffix");
    const char suffix = spec[pos++];
    if (suffix == '%') {
      if (saw_prob) bad_spec(spec, "duplicate % modifier");
      if (value < 0.0 || value > 100.0) bad_spec(spec, "% must be in [0,100]");
      p.prob_permille = static_cast<std::uint32_t>(value * 10.0 + 0.5);
      saw_prob = true;
    } else if (suffix == '*') {
      if (saw_count) bad_spec(spec, "duplicate * modifier");
      if (value < 1.0) bad_spec(spec, "* count must be >= 1");
      p.remaining = static_cast<std::int64_t>(value);
      saw_count = true;
    } else if (suffix == '+') {
      if (saw_skip) bad_spec(spec, "duplicate + modifier");
      p.skip = static_cast<std::uint64_t>(value);
      saw_skip = true;
    } else {
      bad_spec(spec, std::string("unknown modifier suffix '") + suffix + "'");
    }
  }
  std::size_t open = spec.find('(', pos);
  const std::string verb = spec.substr(pos, open == std::string::npos
                                                ? std::string::npos
                                                : open - pos);
  if (verb == "throw") {
    p.action = Action::kThrow;
  } else if (verb == "delay") {
    p.action = Action::kDelay;
  } else if (verb == "wake") {
    p.action = Action::kWake;
  } else {
    bad_spec(spec, "unknown action '" + verb + "'");
  }
  if (open != std::string::npos) {
    if (spec.back() != ')') bad_spec(spec, "unterminated argument");
    const std::string arg = spec.substr(open + 1, spec.size() - open - 2);
    try {
      std::size_t consumed = 0;
      const long ms = std::stol(arg, &consumed);
      if (consumed != arg.size() || ms < 0) throw std::invalid_argument(arg);
      p.delay_ms = static_cast<std::uint32_t>(ms);
    } catch (const std::exception&) {
      bad_spec(spec, "argument must be a non-negative integer");
    }
  }
  return p;
}

/// Publishes a new site configuration. Caller holds the registry mutex: the
/// g_active transition below must not interleave with another reconfiguration
/// of the same site, or the active count drifts.
void apply_locked(Registry& r, Site& s, const ParsedSpec& p)
    SMPST_REQUIRES(r.mutex) {
  (void)r;
  const bool was_active = s.action.load(std::memory_order_relaxed) !=
                          Action::kNone;
  const bool now_active = p.action != Action::kNone;
  s.prob_permille.store(p.prob_permille, std::memory_order_relaxed);
  s.skip.store(p.skip, std::memory_order_relaxed);
  s.remaining.store(p.remaining, std::memory_order_relaxed);
  s.delay_ms.store(p.delay_ms, std::memory_order_relaxed);
  // Action last: a concurrent hit gates on it.
  s.action.store(p.action, std::memory_order_release);
  if (now_active && !was_active) {
    g_active.fetch_add(1, std::memory_order_relaxed);
  } else if (!now_active && was_active) {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

/// Reads SMPST_FAILPOINTS once, before main. A malformed value aborts loudly
/// rather than silently running without the requested faults.
struct EnvInstaller {
  EnvInstaller() {
    const char* env = std::getenv("SMPST_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') enable_from_spec_list(env);
  }
};
const EnvInstaller g_env_installer;

}  // namespace

bool any_active() noexcept {
  return g_active.load(std::memory_order_relaxed) != 0;
}

Site& site(const char* name) {
  Registry& r = registry();
  LockGuard<Mutex> lk(r.mutex);
  if (Site* existing = find_locked(r, name)) return *existing;
  return r.sites.emplace_back(name);
}

Action evaluate(Site& s) {
  s.hits.fetch_add(1, std::memory_order_relaxed);
  const Action action = s.action.load(std::memory_order_acquire);
  if (action == Action::kNone) return Action::kNone;

  // After-N: pass the first `skip` hits through untouched.
  std::uint64_t skip = s.skip.load(std::memory_order_relaxed);
  while (skip > 0) {
    if (s.skip.compare_exchange_weak(skip, skip - 1,
                                     std::memory_order_relaxed)) {
      return Action::kNone;
    }
  }

  const std::uint32_t prob = s.prob_permille.load(std::memory_order_relaxed);
  if (prob < 1000 && thread_rng().next_bounded(1000) >= prob) {
    return Action::kNone;
  }

  // Fire budget (one-shot and N-shot triggers).
  std::int64_t remaining = s.remaining.load(std::memory_order_relaxed);
  while (remaining >= 0) {
    if (remaining == 0) return Action::kNone;
    if (s.remaining.compare_exchange_weak(remaining, remaining - 1,
                                          std::memory_order_relaxed)) {
      break;
    }
  }

  s.fires.fetch_add(1, std::memory_order_relaxed);
  if (action == Action::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(s.delay_ms.load(std::memory_order_relaxed)));
  }
  return action;
}

void hit(Site& s) {
  const Action action = evaluate(s);
  if (action == Action::kThrow) throw FailpointError(s.name);
}

bool hit_triggered(Site& s) {
  const Action action = evaluate(s);
  if (action == Action::kThrow) throw FailpointError(s.name);
  return action != Action::kNone;
}

void enable(const std::string& name, const std::string& spec) {
  const ParsedSpec p = parse_spec(spec);  // validate before touching state
  Registry& r = registry();
  LockGuard<Mutex> lk(r.mutex);
  Site* s = find_locked(r, name);
  if (s == nullptr) s = &r.sites.emplace_back(name);
  apply_locked(r, *s, p);
}

void disable(const std::string& name) {
  Registry& r = registry();
  LockGuard<Mutex> lk(r.mutex);
  if (Site* s = find_locked(r, name)) apply_locked(r, *s, ParsedSpec{});
}

void disable_all() {
  Registry& r = registry();
  LockGuard<Mutex> lk(r.mutex);
  for (Site& s : r.sites) {
    apply_locked(r, s, ParsedSpec{});
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
  }
}

std::vector<Info> list() {
  Registry& r = registry();
  LockGuard<Mutex> lk(r.mutex);
  std::vector<Info> out;
  out.reserve(r.sites.size());
  for (Site& s : r.sites) {
    out.push_back({s.name,
                   s.action.load(std::memory_order_relaxed) != Action::kNone,
                   s.hits.load(std::memory_order_relaxed),
                   s.fires.load(std::memory_order_relaxed)});
  }
  return out;
}

std::size_t enable_from_spec_list(const std::string& specs) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < specs.size()) {
    std::size_t end = specs.find_first_of(";,", pos);
    if (end == std::string::npos) end = specs.size();
    const std::string entry = specs.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint list entry '" + entry +
                                  "' is not name=spec");
    }
    enable(entry.substr(0, eq), entry.substr(eq + 1));
    ++count;
  }
  return count;
}

}  // namespace smpst::fail
