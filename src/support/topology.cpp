#include "support/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace smpst {

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids. Malformed pieces are
/// skipped rather than failing the whole list: a partial node map degrades to
/// the single-node fallback for the unparsed CPUs, never to an error.
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    const std::size_t dash = piece.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(piece));
      } else {
        const int lo = std::stoi(piece.substr(0, dash));
        const int hi = std::stoi(piece.substr(dash + 1));
        for (int c = lo; c <= hi && c - lo < 4096; ++c) out.push_back(c);
      }
    } catch (...) {
      // Skip the malformed piece.
    }
  }
  return out;
}

/// node id per CPU id, read once from sysfs; -1 = unknown (treated as node
/// 0). The hardware layout cannot change at runtime, so a process-lifetime
/// cache is sound even though the *affinity mask* is re-read on every
/// discover().
const std::vector<int>& node_of_cpu_table() {
  static const std::vector<int> table = [] {
    std::vector<int> t;
#if defined(__linux__)
    std::ifstream possible("/sys/devices/system/node/possible");
    std::string line;
    std::vector<int> node_ids;
    if (possible && std::getline(possible, line)) {
      node_ids = parse_cpulist(line);
    }
    if (node_ids.empty()) node_ids.push_back(0);
    for (const int node : node_ids) {
      std::ifstream cpulist("/sys/devices/system/node/node" +
                            std::to_string(node) + "/cpulist");
      if (!cpulist || !std::getline(cpulist, line)) continue;
      for (const int cpu : parse_cpulist(line)) {
        if (cpu < 0) continue;
        if (static_cast<std::size_t>(cpu) >= t.size()) {
          t.resize(static_cast<std::size_t>(cpu) + 1, -1);
        }
        t[static_cast<std::size_t>(cpu)] = node;
      }
    }
#endif
    return t;
  }();
  return table;
}

CpuTopology group_by_node(std::vector<int> cpu_ids, std::vector<int> node_ids) {
  std::vector<std::size_t> order(cpu_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (node_ids[a] != node_ids[b]) {
                       return node_ids[a] < node_ids[b];
                     }
                     return cpu_ids[a] < cpu_ids[b];
                   });
  CpuTopology topo;
  topo.cpus.reserve(cpu_ids.size());
  topo.nodes.reserve(cpu_ids.size());
  for (const std::size_t i : order) {
    topo.cpus.push_back(cpu_ids[i]);
    topo.nodes.push_back(node_ids[i]);
  }
  std::vector<int> distinct = topo.nodes;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  topo.num_nodes = std::max<std::size_t>(1, distinct.size());
  return topo;
}

}  // namespace

CpuTopology CpuTopology::discover() {
  std::vector<int> cpu_ids;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpu_ids.push_back(c);
    }
  }
#endif
  if (cpu_ids.empty()) {
    // Affinity unavailable (or non-Linux): fall back to one slot per
    // hardware context, all on node 0.
    const unsigned hc = std::thread::hardware_concurrency();
    for (unsigned c = 0; c < std::max(1u, hc); ++c) {
      cpu_ids.push_back(static_cast<int>(c));
    }
  }
  const auto& table = node_of_cpu_table();
  std::vector<int> node_ids;
  node_ids.reserve(cpu_ids.size());
  for (const int cpu : cpu_ids) {
    const bool known = cpu >= 0 &&
                       static_cast<std::size_t>(cpu) < table.size() &&
                       table[static_cast<std::size_t>(cpu)] >= 0;
    node_ids.push_back(known ? table[static_cast<std::size_t>(cpu)] : 0);
  }
  return group_by_node(std::move(cpu_ids), std::move(node_ids));
}

CpuTopology CpuTopology::from_cpus(const std::vector<int>& cpu_ids,
                                   const std::vector<int>& node_ids) {
  std::vector<int> nodes = node_ids;
  nodes.resize(cpu_ids.size(), 0);
  return group_by_node(cpu_ids, std::move(nodes));
}

const CpuTopology& topology() {
  static const CpuTopology cached = CpuTopology::discover();
  return cached;
}

bool interleave_memory(const void* addr, std::size_t bytes) {
  if (addr == nullptr || bytes == 0) return true;
  const CpuTopology& topo = topology();
  if (topo.num_nodes <= 1) return true;  // nothing to spread across
#if defined(__linux__) && defined(SYS_mbind)
  // Values from <linux/mempolicy.h>, declared locally so the build does not
  // depend on kernel headers or libnuma being installed.
  constexpr int kMpolInterleave = 3;
  constexpr unsigned kMpolMfMove = 1u << 1;  // migrate already-faulted pages

  const auto page = static_cast<std::uintptr_t>(sysconf(_SC_PAGESIZE));
  const auto begin = reinterpret_cast<std::uintptr_t>(addr) & ~(page - 1);
  const auto end =
      (reinterpret_cast<std::uintptr_t>(addr) + bytes + page - 1) &
      ~(page - 1);

  int max_node = 0;
  for (const int n : topo.nodes) max_node = std::max(max_node, n);
  std::vector<unsigned long> mask(
      static_cast<std::size_t>(max_node) / (8 * sizeof(unsigned long)) + 1,
      0ul);
  for (const int n : topo.nodes) {
    mask[static_cast<std::size_t>(n) / (8 * sizeof(unsigned long))] |=
        1ul << (static_cast<std::size_t>(n) % (8 * sizeof(unsigned long)));
  }
  return syscall(SYS_mbind, begin, end - begin, kMpolInterleave, mask.data(),
                 static_cast<unsigned long>(max_node) + 2, kMpolMfMove) == 0;
#else
  return false;
#endif
}

}  // namespace smpst
