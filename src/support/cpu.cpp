#include "support/cpu.hpp"

#include <thread>

#include "support/topology.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smpst {

std::size_t hardware_threads() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int count = CPU_COUNT(&set);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

bool pin_current_thread(std::size_t slot) noexcept {
#if defined(__linux__)
  // Fresh snapshot, not the process-lifetime cache: pinning must honour the
  // mask as it is *now* (tests narrow it at runtime; so do cgroup resizes).
  const CpuTopology topo = CpuTopology::discover();
  if (!topo.slot_valid(slot)) return false;  // more workers than allowed CPUs
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(topo.cpu_of_slot(slot), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

}  // namespace smpst
