#include "support/cpu.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace smpst {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

bool pin_current_thread(std::size_t cpu) noexcept {
#if defined(__linux__)
  const std::size_t ncpu = hardware_threads();
  if (ncpu <= 1) return true;  // nothing to place
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace smpst
