#include "support/prng.hpp"

#include "support/assert.hpp"

namespace smpst {

std::uint64_t Xoshiro256::next_bounded(std::uint64_t bound) noexcept {
  SMPST_ASSERT(bound != 0);
  // Lemire's method: take the high 64 bits of a 128-bit product; reject the
  // short sliver that would bias small residues.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) *
          static_cast<unsigned __int128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                 std::uint64_t stream_index) noexcept {
  // Jump to the stream by hashing (root, index) through two SplitMix rounds;
  // avoids low-entropy collisions when root seeds are small integers.
  SplitMix64 sm(root_seed ^ (0xa0761d6478bd642fULL * (stream_index + 1)));
  sm.next();
  return sm.next();
}

}  // namespace smpst
