// Deterministic, splittable pseudo-random number generation.
//
// All randomized components in the library (graph generators, the stub random
// walk, steal-victim selection) draw from these generators so that every run
// is reproducible from a single 64-bit seed. Per-thread streams are derived
// with SplitMix64, the recommended seeding procedure for xoshiro generators.
#pragma once

#include <cstdint>
#include <limits>

namespace smpst {

/// SplitMix64: tiny, statistically strong 64-bit generator. Primarily used to
/// expand one user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast general-purpose generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) using Lemire's multiply-shift rejection
  /// method. bound must be nonzero.
  std::uint64_t next_bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability prob (clamped to [0,1]).
  bool next_bernoulli(double prob) noexcept { return next_double() < prob; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Derives the seed for stream `stream_index` of a generator family rooted at
/// `root_seed`. Streams are pairwise independent for practical purposes.
std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                 std::uint64_t stream_index) noexcept;

}  // namespace smpst
