// Portable software-prefetch hints for traversal hot paths.
//
// The traversal's dominant cost is the random-access colour check per edge
// (the Helman–JáJá "non-contiguous access" the cost model charges for). The
// neighbour ids of the vertex being expanded are already in hand, so the
// colour lines of upcoming neighbours — and the CSR slice of the next
// frontier vertex — can be requested a few iterations ahead of use, hiding
// part of the miss latency behind the current iteration's work.
//
// prefetch_read is a pure hint: it never faults, never changes semantics,
// and compiles to nothing on toolchains without __builtin_prefetch.
#pragma once

namespace smpst {

/// Hints that `addr` will be read soon. High temporal locality (the line is
/// about to be used, keep it in all cache levels).
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace smpst
