// Benign-race annotation layer for the paper's intended data races.
//
// The Bader–Cong traversal is deliberately racy: colour writes use
// check-then-set instead of CAS, and parent[w] = v races with other writers,
// because "the race conditions are benign — they only affect which valid
// spanning tree is produced, never whether the result is a spanning tree"
// (§2, Fig. 1 of the paper; the inventory with per-site safety arguments is
// docs/CONCURRENCY.md). Leaving those sites as std::atomic taxes every build
// to appease the one build that checks races; leaving them plain makes
// ThreadSanitizer reject the whole binary and forces CI to hand-pick tests.
//
// This header resolves that tension:
//
//   SMPST_BENIGN_RACE_LOAD(loc)        read a deliberately-racy location
//   SMPST_BENIGN_RACE_STORE(loc, v)    write a deliberately-racy location
//
// Under ThreadSanitizer builds these are relaxed std::atomic_ref accesses, so
// TSan sees a synchronized access and stays quiet without suppressions — and
// still checks every *unannotated* access in the program. In every other
// build they are plain loads and stores: zero cost, full compiler freedom.
// The macro spells out BENIGN_RACE at each site so the annotation doubles as
// an auditable inventory (tools/smpst_lint.py cross-checks the sites against
// docs/CONCURRENCY.md).
//
// Claim operations that the algorithm's correctness actually depends on
// (exactly-one-winner CAS on a colour or parent slot) are NOT benign races
// and must stay atomic in every build; race_cas() below provides that for
// arrays whose other accesses are benign-racy plain memory.
#pragma once

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define SMPST_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SMPST_TSAN_BUILD 1
#endif
#endif
#ifndef SMPST_TSAN_BUILD
#define SMPST_TSAN_BUILD 0
#endif

namespace smpst {

template <typename T>
[[nodiscard]] inline T benign_race_load(const T& loc) noexcept {
#if SMPST_TSAN_BUILD
  // atomic_ref wants a mutable reference even for a pure load.
  return std::atomic_ref<T>(const_cast<T&>(loc))
      .load(std::memory_order_relaxed);
#else
  return loc;
#endif
}

template <typename T>
inline void benign_race_store(T& loc, T value) noexcept {
#if SMPST_TSAN_BUILD
  std::atomic_ref<T>(loc).store(value, std::memory_order_relaxed);
#else
  loc = value;
#endif
}

/// Real atomic compare-exchange on a location whose *other* accesses are
/// benign-racy plain memory (e.g. the colour array: racy check-then-set on
/// the traversal fast path, but a genuine exactly-one-winner CAS when
/// claiming component roots). Always atomic, in every build — the winner
/// uniqueness is load-bearing, unlike the benign sites.
template <typename T>
inline bool race_cas(T& loc, T& expected, T desired,
                     std::memory_order success,
                     std::memory_order failure) noexcept {
  return std::atomic_ref<T>(loc).compare_exchange_strong(expected, desired,
                                                         success, failure);
}

}  // namespace smpst

#define SMPST_BENIGN_RACE_LOAD(loc) ::smpst::benign_race_load(loc)
#define SMPST_BENIGN_RACE_STORE(loc, value) \
  ::smpst::benign_race_store(loc, value)
