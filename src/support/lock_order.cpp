#include "support/lock_order.hpp"

#if SMPST_LOCK_ORDER_CHECKS

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

// Raw std::mutex on purpose: this file implements the instrumentation the
// smpst wrappers call into, so using the wrappers here would recurse.
// src/support is outside smpst_lint's SL004 wrapper-only scope for exactly
// this kind of infrastructure.

namespace smpst::lockdep {
namespace {

struct Held {
  const void* m;
  Rank r;
};

thread_local std::vector<Held> t_held;

// Dynamic pair-order registry for unranked locks: after[a] is the set of
// mutexes observed acquired while `a` was held. Heap-allocated and leaked so
// mutexes destroyed during static teardown can still call destroyed().
struct Registry {
  std::mutex mu;
  std::unordered_map<const void*, std::unordered_set<const void*>> after;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

const char* name_of(Rank r) noexcept {
  return r.name != nullptr ? r.name : "(unranked)";
}

[[noreturn]] void violation(const char* why, const void* acquiring,
                            Rank acquiring_rank, const void* held,
                            Rank held_rank) noexcept {
  std::fprintf(stderr,
               "smpst: lock-order violation: %s\n"
               "  acquiring %p rank %u \"%s\"\n"
               "  while holding %p rank %u \"%s\"\n"
               "  held stack (oldest first):\n",
               why, acquiring, static_cast<unsigned>(acquiring_rank.order),
               name_of(acquiring_rank), held,
               static_cast<unsigned>(held_rank.order), name_of(held_rank));
  for (const Held& h : t_held) {
    std::fprintf(stderr, "    %p rank %u \"%s\"\n", h.m,
                 static_cast<unsigned>(h.r.order), name_of(h.r));
  }
  std::fflush(stderr);
  std::abort();
}

// Record "b acquired while a held" and flag an inversion if the reverse
// edge was ever observed (on any thread). Only consulted when the static
// rank rule cannot decide, i.e. at least one side is unranked.
void check_pair(const void* a, Rank ar, const void* b, Rank br) noexcept {
  Registry& reg = registry();
  bool inverted = false;
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    auto rev = reg.after.find(b);
    inverted = rev != reg.after.end() && rev->second.count(a) != 0;
    if (!inverted) reg.after[a].insert(b);
  }
  if (inverted) {
    violation("acquisition order inverted vs. previously observed order", b,
              br, a, ar);
  }
}

void record_pairs(const void* m, Rank r, bool check_order) noexcept {
  for (const Held& h : t_held) {
    if (h.m == m) {
      violation("recursive acquisition of a non-recursive lock", m, r, h.m,
                h.r);
    }
    if (h.r.order != 0 && r.order != 0) {
      // Both ranked: the static rule decides, no registry traffic.
      if (check_order && h.r.order >= r.order) {
        violation(h.r.order == r.order
                      ? "same-rank locks may never nest"
                      : "rank must strictly increase on nested acquisition",
                  m, r, h.m, h.r);
      }
    } else {
      check_pair(h.m, h.r, m, r);
    }
  }
}

}  // namespace

void before_lock(const void* m, Rank r) noexcept { record_pairs(m, r, true); }

void locked(const void* m, Rank r) noexcept { t_held.push_back({m, r}); }

void try_locked(const void* m, Rank r) noexcept {
  record_pairs(m, r, false);
  t_held.push_back({m, r});
}

void released(const void* m) noexcept {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->m == m) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void destroyed(const void* m) noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.after.erase(m);
  for (auto& [from, tos] : reg.after) tos.erase(m);
}

std::size_t held_count() noexcept { return t_held.size(); }

}  // namespace smpst::lockdep

#else

// Keep the TU non-empty when the checks are compiled out.
namespace smpst::lockdep {
namespace {
[[maybe_unused]] constexpr int kLockOrderChecksDisabled = 0;
}
}  // namespace smpst::lockdep

#endif  // SMPST_LOCK_ORDER_CHECKS
