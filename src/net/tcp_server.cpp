#include "net/tcp_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "service/wire.hpp"
#include "support/failpoint.hpp"

namespace smpst::net {

namespace {

constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr int kEpollTickMs = 50;
constexpr std::size_t kReadChunkBytes = 16 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

obs::Counter& counter(const char* name) {
  return obs::MetricsRegistry::instance().counter(name);
}

}  // namespace

TcpServer::TcpServer(service::GraphRegistry& registry,
                     service::QueryExecutor& executor, TcpServerOptions opts)
    : registry_(registry), executor_(executor), opts_(std::move(opts)) {
  try {
    setup_listener();
  } catch (...) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    throw;
  }
}

TcpServer::~TcpServer() {
  for (auto& [id, conn] : conns_) {
    conn->session->detach();
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void TcpServer::setup_listener() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad bind address: " + opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind " + opts_.bind_address + ":" +
                std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, 128) < 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }
}

void TcpServer::request_shutdown() noexcept {
  // Called from signal handlers: atomic store + write(2) only.
  shutdown_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

DrainReport TcpServer::run() {
  obs::Gauge& g_conns = obs::MetricsRegistry::instance().gauge(
      "net.connections");
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               kEpollTickMs);
    now_ = std::chrono::steady_clock::now();
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else if (id == kListenId) {
        do_accept();
      } else {
        handle_event(id, events[i].events);
      }
    }
    drain_mailbox();
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }
    tick();
    g_conns.set(static_cast<std::int64_t>(conns_.size()));
    if (draining_) {
      if (conns_.empty()) break;
      if (now_ >= drain_deadline_) {
        // Deadline: whoever still owes or holds anything gets cut.
        std::vector<std::uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (const std::uint64_t id : ids) {
          Conn& c = *conns_.at(id);
          ++report_.forced_connections;
          report_.responses_dropped += c.session->pending();
          counter("net.conn.forced_close").add(1);
          close_conn(id, "drain-deadline");
        }
        break;
      }
    }
  }
  report_.clean = report_.forced_connections == 0;
  g_conns.set(0);
  return report_;
}

void TcpServer::do_accept() {
  while (true) {
    try {
      SMPST_FAILPOINT("net.server.accept");
    } catch (const fail::FailpointError&) {
      // The pending connection stays in the backlog; level-triggered epoll
      // re-reports it, so a probabilistic spec only delays the accept.
      counter("net.accept.faults").add(1);
      return;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // EMFILE/ENFILE/ECONNABORTED and friends: drop this attempt, keep
      // serving; the listener itself is fine.
      counter("net.accept.errors").add(1);
      return;
    }
    if (conns_.size() >= opts_.max_connections) {
      // Typed rejection instead of a silent RST: the client learns it hit
      // admission control, not a network fault. Best-effort single send.
      const std::string line =
          service::render_error(
              service::WireErrorCode::kOverloaded,
              "connection limit reached (" +
                  std::to_string(opts_.max_connections) + ")",
              250) +
          "\n";
      (void)::send(fd, line.data(), line.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      counter("net.conn.rejected").add(1);
      continue;
    }
    add_conn(fd);
  }
}

void TcpServer::add_conn(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const std::uint64_t id = next_conn_id_++;
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = id;
  conn->opened = now_;
  conn->last_progress = now_;
  conn->last_write_progress = now_;

  service::SessionOptions sopts;
  sopts.max_batch = opts_.max_batch;
  sopts.on_shutdown = [this] { request_shutdown(); };
  // The loop thread must never block on disk or heavy compute: load/gen/
  // trace run on executor workers, and input arriving meanwhile is deferred
  // by the session and replayed from tick() (see resume_ready()).
  sopts.offload_heavy = true;
  conn->session = service::Session::create(
      registry_, executor_,
      [this, id](std::string&& line) { post_response(id, std::move(line)); },
      sopts);

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    conn->session->detach();
    ::close(fd);
    counter("net.accept.errors").add(1);
    return;
  }
  conn->armed_events = ev.events;
  conns_.emplace(id, std::move(conn));
  counter("net.conn.accepted").add(1);
}

void TcpServer::handle_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // closed earlier this iteration
  Conn& c = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(id, "socket-error");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_conn(c);
    if (conns_.find(id) == conns_.end()) return;  // flush closed it
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 && !c.peer_half_closed) {
    handle_readable(c);
  }
}

void TcpServer::handle_readable(Conn& c) {
  const std::uint64_t id = c.id;
  char buf[kReadChunkBytes];
  ssize_t n;
  try {
    SMPST_FAILPOINT("net.conn.read");
    n = ::recv(c.fd, buf, sizeof(buf), 0);
  } catch (const fail::FailpointError&) {
    counter("net.conn.read_faults").add(1);
    close_conn(id, "injected-read-fault");
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_conn(id, "read-error");
    return;
  }
  if (n == 0) {
    handle_eof(c);
    return;
  }
  c.codec.feed(buf, static_cast<std::size_t>(n));
  pump_lines(c);
}

void TcpServer::handle_eof(Conn& c) {
  // Half-close: the peer is done sending but still expects its responses.
  c.peer_half_closed = true;
  pump_lines(c);
  std::string tail = c.codec.take_partial();
  if (!tail.empty()) c.session->on_line(std::move(tail));
  c.session->on_eof();
  c.closing = true;
  update_interest(c);
  maybe_finish(c);
}

void TcpServer::pump_lines(Conn& c) {
  std::string line;
  while (!c.closing) {
    if (c.session->pending() >= opts_.max_pipeline ||
        outbox_bytes(c) >= opts_.outbox_max_bytes / 2) {
      break;  // backpressure; the rest of the codec buffer waits
    }
    const service::LineCodec::Event ev = c.codec.next(line);
    if (ev == service::LineCodec::Event::kNone) break;
    if (ev == service::LineCodec::Event::kOversized) {
      c.last_progress = now_;
      c.session->on_oversized_line(c.codec.last_oversized_bytes());
      continue;
    }
    c.last_progress = now_;
    c.session->on_line(std::move(line));
    if (c.session->quit_requested()) {
      c.closing = true;  // flush what is owed, then hang up
    }
  }
  refresh_backpressure(c);
  update_interest(c);
  maybe_finish(c);
}

void TcpServer::refresh_backpressure(Conn& c) {
  const bool paused = c.session->pending() >= opts_.max_pipeline ||
                      outbox_bytes(c) >= opts_.outbox_max_bytes / 2;
  if (paused && !c.read_paused) counter("net.conn.read_pauses").add(1);
  c.read_paused = paused;
}

void TcpServer::flush_conn(Conn& c) {
  const std::uint64_t id = c.id;
  while (c.outbox_off < c.outbox.size()) {
    ssize_t n;
    try {
      SMPST_FAILPOINT("net.conn.write");
      n = ::send(c.fd, c.outbox.data() + c.outbox_off,
                 c.outbox.size() - c.outbox_off, MSG_NOSIGNAL);
    } catch (const fail::FailpointError&) {
      counter("net.conn.write_faults").add(1);
      close_conn(id, "injected-write-fault");
      return;
    }
    if (n > 0) {
      c.outbox_off += static_cast<std::size_t>(n);
      c.last_write_progress = now_;
      c.last_progress = now_;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(id, "write-error");  // EPIPE, ECONNRESET, ...
    return;
  }
  if (c.outbox_off == c.outbox.size()) {
    c.outbox.clear();
    c.outbox_off = 0;
    c.last_write_progress = now_;
  } else if (c.outbox_off > c.outbox.size() / 2) {
    // Compact the sent prefix so the buffer cannot grow without bound
    // behind a slowly-draining peer.
    c.outbox.erase(0, c.outbox_off);
    c.outbox_off = 0;
  }
  refresh_backpressure(c);
  update_interest(c);
  maybe_finish(c);
}

void TcpServer::update_interest(Conn& c) {
  std::uint32_t want = 0;
  if (!c.peer_half_closed && !c.read_paused && !c.closing) {
    want |= EPOLLIN | EPOLLRDHUP;
  }
  if (c.outbox_off < c.outbox.size()) want |= EPOLLOUT;
  if (want == c.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = c.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.armed_events = want;
  }
}

void TcpServer::post_response(std::uint64_t id, std::string&& line) {
  bool need_wake;
  {
    LockGuard<Mutex> lk(mail_mutex_);
    need_wake = mailbox_.empty();
    mailbox_.emplace_back(id, std::move(line));
  }
  if (need_wake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  }
}

void TcpServer::drain_mailbox() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    LockGuard<Mutex> lk(mail_mutex_);
    batch.swap(mailbox_);
  }
  if (batch.empty()) return;
  for (auto& [id, line] : batch) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) {
      // Posted before the connection closed; its session is detached now,
      // but this line was already in flight.
      counter("net.responses.orphaned").add(1);
      continue;
    }
    Conn& c = *it->second;
    if (outbox_bytes(c) + line.size() + 1 > opts_.outbox_max_bytes) {
      // The peer is not reading; a typed error could not reach it either.
      counter("net.conn.outbox_overflow").add(1);
      close_conn(id, "outbox-overflow");
      continue;
    }
    c.outbox.append(line);
    c.outbox.push_back('\n');
  }
  for (auto& [id, line] : batch) {
    const auto it = conns_.find(id);
    if (it != conns_.end() && outbox_bytes(*it->second) > 0) {
      flush_conn(*it->second);
    }
  }
}

void TcpServer::begin_drain() {
  draining_ = true;
  drain_deadline_ =
      now_ + std::chrono::milliseconds(
                 opts_.drain_timeout_ms > 0 ? opts_.drain_timeout_ms : 0);
  if (listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, conn] : conns_) {
    conn->session->begin_drain();
    conn->closing = true;
    update_interest(*conn);
  }
  counter("net.drains").add(1);
}

void TcpServer::tick() {
  // Snapshot the ids: pump_lines/maybe_finish below may close (erase) the
  // connection they are handed, which would invalidate a live map iterator.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    // Input deferred behind an offloaded admin command replays as soon as
    // the command completes — its completion posts to the mailbox, which
    // wakes the loop into this very tick.
    if (c.session->resume_ready()) {
      c.session->pump_deferred();
      if (c.session->quit_requested() && !c.closing) {
        c.closing = true;
        update_interest(c);
      }
      refresh_backpressure(c);
    }
    // Paused reads resume here once the pipeline or outbox shrank. The codec
    // buffer may hold complete lines that arrived before backpressure kicked
    // in — they must be pumped even when the pause has since lifted, because
    // level-triggered EPOLLIN only fires for bytes still in the socket, not
    // for lines already framed.
    if (c.read_paused) {
      const bool still = c.session->pending() >= opts_.max_pipeline ||
                         outbox_bytes(c) >= opts_.outbox_max_bytes / 2;
      if (!still) {
        c.read_paused = false;
        pump_lines(c);
        if (conns_.find(id) == conns_.end()) continue;
      }
    } else if (c.codec.buffered() > 0 && !c.closing) {
      pump_lines(c);
      if (conns_.find(id) == conns_.end()) continue;
    }
    if (outbox_bytes(c) > 0 && opts_.write_stall_timeout_ms > 0 &&
        now_ - c.last_write_progress >
            std::chrono::milliseconds(opts_.write_stall_timeout_ms)) {
      counter("net.conn.write_stalls").add(1);
      close_conn(id, "write-stall");
      continue;
    }
    if (!c.closing && opts_.idle_timeout_ms > 0 &&
        c.session->pending() == 0 && outbox_bytes(c) == 0 &&
        now_ - c.last_progress >
            std::chrono::milliseconds(opts_.idle_timeout_ms)) {
      // Covers the slow-loris shape too: dribbled bytes that never complete
      // a line do not count as progress.
      counter("net.conn.idle_closes").add(1);
      close_conn(id, "idle");
      continue;
    }
    maybe_finish(c);
  }
}

bool TcpServer::has_undelivered(std::uint64_t id) {
  LockGuard<Mutex> lk(mail_mutex_);
  for (const auto& [mid, line] : mailbox_) {
    if (mid == id) return true;
  }
  return false;
}

void TcpServer::maybe_finish(Conn& c) {
  if (!(c.closing || draining_)) return;
  if (c.session->pending() != 0 || outbox_bytes(c) != 0) return;
  // pending() only reaches 0 after every response passed through the sink,
  // i.e. was posted to the mailbox — so this check is the close barrier that
  // keeps a final `bye` (or a drain's last answers) from being dropped
  // between an executor thread's post and the loop's mailbox drain. Posting
  // always wakes the loop, so a deferred close is retried promptly.
  if (has_undelivered(c.id)) return;
  if (draining_ && !c.peer_half_closed) {
    // Last-gasp read: lines that raced in after the drain began still
    // deserve their typed `shutting-down` answer before we hang up.
    char buf[kReadChunkBytes];
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      c.codec.feed(buf, static_cast<std::size_t>(n));
      std::string line;
      while (true) {
        const service::LineCodec::Event ev = c.codec.next(line);
        if (ev == service::LineCodec::Event::kNone) break;
        if (ev == service::LineCodec::Event::kOversized) {
          c.session->on_oversized_line(c.codec.last_oversized_bytes());
        } else {
          c.session->on_line(std::move(line));
        }
      }
      if (c.session->pending() != 0 || outbox_bytes(c) != 0 ||
          has_undelivered(c.id)) {
        return;  // answers owed again; flushed and closed on a later pass
      }
    }
  }
  close_conn(c.id, "done");
}

void TcpServer::close_conn(std::uint64_t id, const char* why) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  c.session->detach();  // in-flight completions drain into the void
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  counter("net.conn.closed").add(1);
  obs::MetricsRegistry::instance()
      .histogram("net.conn.lifetime_ms")
      .record_ms(std::chrono::duration<double, std::milli>(now_ - c.opened)
                     .count());
  (void)why;
  conns_.erase(it);
}

}  // namespace smpst::net
