// TcpServer — nonblocking epoll front end for the spanning-tree query
// service, speaking the service/wire line protocol over TCP.
//
// One thread (the caller of run()) owns an epoll loop: it accepts, frames
// bytes into lines with service::LineCodec, and feeds them to a per-
// connection service::Session. Query responses complete on executor worker
// threads; the session sink posts them to a mutex-protected mailbox and
// wakes the loop through an eventfd, so every socket write happens on the
// loop thread.
//
// Robustness is the organizing principle (docs/SERVICE.md):
//   - Bounded buffers everywhere. Read framing is capped at
//     service::kMaxLineBytes per line (over-limit lines are answered with a
//     typed `too-large` error and the stream resynchronizes — no
//     disconnect); the write-side outbox is capped by outbox_max_bytes and
//     a connection that will not read past it is closed.
//   - Admission control. A connection beyond max_connections is answered
//     with a single `overloaded` line and closed; a query the executor's
//     bounded queue cannot take is answered `overloaded` with a
//     retry_after_ms hint. Reads pause (EPOLLIN off) while a connection has
//     max_pipeline unanswered requests, so a pipelining client is
//     flow-controlled instead of ballooning server memory.
//   - Slow-loris defense. A connection that makes no protocol progress for
//     idle_timeout_ms (dribbling bytes that never finish a line counts as
//     no progress) is closed, as is one whose peer accepts no bytes for
//     write_stall_timeout_ms while responses are owed.
//   - Graceful drain. request_shutdown() — async-signal-safe, callable from
//     a SIGTERM handler — stops accepting, sheds new queries with
//     `shutting-down`, completes queries accepted before the drain, flushes
//     every owed response, and force-closes only at drain_timeout_ms. The
//     DrainReport says whether every accepted request was answered.
//
// Failpoints (docs/ROBUSTNESS.md): net.server.accept, net.conn.read,
// net.conn.write — an injected throw aborts that one accept/connection,
// never the loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/codec.hpp"
#include "service/executor.hpp"
#include "service/session.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::net {

struct TcpServerOptions {
  /// IPv4 address to bind; loopback by default (tests, local tooling).
  std::string bind_address = "127.0.0.1";

  /// 0 = ephemeral; the chosen port is available via port() after
  /// construction (listen happens in the constructor).
  std::uint16_t port = 0;

  /// Connections beyond this are answered `overloaded` and closed.
  std::size_t max_connections = 256;

  /// Unanswered requests per connection before its reads pause (pipelining
  /// flow control).
  std::size_t max_pipeline = 128;

  /// Hard cap on buffered-but-unsent response bytes per connection; a peer
  /// that will not read past it is closed (it is not consuming responses,
  /// so a typed error could not reach it either).
  std::size_t outbox_max_bytes = std::size_t{4} << 20;

  /// Close a connection with no protocol progress (complete line in, or
  /// response byte out) for this long. <= 0 disables.
  std::int64_t idle_timeout_ms = 30'000;

  /// Close a connection whose peer accepts no response bytes for this long
  /// while responses are owed. <= 0 disables.
  std::int64_t write_stall_timeout_ms = 10'000;

  /// After request_shutdown(): force-close connections still owing
  /// responses once this much time has passed.
  std::int64_t drain_timeout_ms = 10'000;

  /// Forwarded to the per-connection Session (`batch count=K` bound).
  std::size_t max_batch = 4096;
};

/// What run() observed while shutting down.
struct DrainReport {
  /// Every accepted request was answered and every connection closed
  /// voluntarily before the drain deadline.
  bool clean = true;

  /// Connections force-closed at the drain deadline.
  std::size_t forced_connections = 0;

  /// Responses still owed by force-closed connections (0 when clean).
  std::size_t responses_dropped = 0;
};

class TcpServer {
 public:
  /// Binds and listens immediately (so port() is valid before run());
  /// throws std::runtime_error when the socket cannot be set up. The
  /// registry and executor must outlive the server.
  TcpServer(service::GraphRegistry& registry,
            service::QueryExecutor& executor,
            TcpServerOptions opts = TcpServerOptions());
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves opts.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Runs the accept/serve loop on the calling thread until a shutdown is
  /// requested (request_shutdown(), or a client's `shutdown` command) and
  /// the drain completes. Call at most once.
  DrainReport run();

  /// Begins a graceful drain. Async-signal-safe (an atomic store and an
  /// eventfd write), so it may be called directly from a SIGTERM/SIGINT
  /// handler or from any thread. Idempotent.
  void request_shutdown() noexcept;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    service::LineCodec codec;
    std::shared_ptr<service::Session> session;

    std::string outbox;          ///< rendered responses awaiting the socket
    std::size_t outbox_off = 0;  ///< sent prefix of outbox

    std::uint32_t armed_events = 0;  ///< epoll interest currently installed
    bool read_paused = false;        ///< backpressure gate on EPOLLIN
    bool peer_half_closed = false;   ///< read side saw EOF
    bool closing = false;            ///< close once idle (quit/EOF/drain)

    std::chrono::steady_clock::time_point opened{};
    std::chrono::steady_clock::time_point last_progress{};
    std::chrono::steady_clock::time_point last_write_progress{};
  };

  void setup_listener();
  void do_accept();
  void add_conn(int fd);
  void handle_event(std::uint64_t id, std::uint32_t events);
  void handle_readable(Conn& c);
  void handle_eof(Conn& c);
  void pump_lines(Conn& c);
  void refresh_backpressure(Conn& c);
  void flush_conn(Conn& c);
  void update_interest(Conn& c);
  void drain_mailbox();
  void begin_drain();
  void tick();
  [[nodiscard]] bool has_undelivered(std::uint64_t id);
  void maybe_finish(Conn& c);
  void close_conn(std::uint64_t id, const char* why);
  void post_response(std::uint64_t id, std::string&& line);
  [[nodiscard]] std::size_t outbox_bytes(const Conn& c) const noexcept {
    return c.outbox.size() - c.outbox_off;
  }

  service::GraphRegistry& registry_;
  service::QueryExecutor& executor_;
  const TcpServerOptions opts_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  // Loop-thread-only state (run() is single-threaded by contract).
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = wake eventfd
  bool draining_ = false;
  std::chrono::steady_clock::time_point now_{};
  std::chrono::steady_clock::time_point drain_deadline_{};
  DrainReport report_;

  std::atomic<bool> shutdown_requested_{false};

  /// Responses posted by executor threads, pending loop-thread delivery.
  Mutex mail_mutex_{lockdep::rank::kNetMailbox};
  std::vector<std::pair<std::uint64_t, std::string>> mailbox_
      SMPST_GUARDED_BY(mail_mutex_);
};

}  // namespace smpst::net
