// Connected components — the problem Shiloach–Vishkin originally solves and
// one of the paper's stated future-work targets for the traversal framework.
//
// Four interchangeable engines, all returning dense labels in [0, count):
//   * cc_union_find       sequential DSU over the edge set
//   * cc_bfs              sequential BFS sweep
//   * cc_shiloach_vishkin the parallel graft-and-shortcut labelling
//   * cc_label_propagation HCS-style parallel min-label propagation with
//                          pointer jumping (the modified
//                          Hirschberg–Chandra–Sarwate scheme the paper
//                          implemented and then set aside because its SMP
//                          behaviour matches SV)
//   * cc_from_forest      adapter over any spanning forest
#pragma once

#include <cstddef>
#include <vector>

#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::cc {

struct CcResult {
  std::vector<VertexId> label;  ///< dense component ids, in [0, count)
  VertexId count = 0;
};

CcResult cc_union_find(const Graph& g);
CcResult cc_bfs(const Graph& g);

struct ParallelCcOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
};

CcResult cc_shiloach_vishkin(const Graph& g, const ParallelCcOptions& = {});
CcResult cc_label_propagation(const Graph& g, const ParallelCcOptions& = {});

/// Random-mating connectivity after Reif (1985) / Phillips (1989) — the
/// "random-mating" engine in Greiner's comparison the paper discusses. Each
/// round every component root flips a coin; tails-roots hook onto an
/// adjacent heads-component (election per root), merging an expected
/// constant fraction of components per round, then pointer jumping collapses
/// to stars. Randomness is drawn deterministically from `seed`.
CcResult cc_random_mate(const Graph& g, const ParallelCcOptions& = {},
                        std::uint64_t seed = 0x5eed);

/// Concurrent union-find connectivity (Rem's algorithm with CAS splicing) —
/// the approach modern shared-memory connectivity frameworks (ConnectIt,
/// GBBS) favour over graft-and-shortcut: threads process edge ranges
/// independently and merge lock-free, with no barriers at all. Included as
/// the present-day comparator for the SV-era engines above.
CcResult cc_rem_union(const Graph& g, const ParallelCcOptions& = {});

CcResult cc_from_forest(const SpanningForest& forest);

/// True if the two labelings induce the same partition of [0, n).
bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b);

}  // namespace smpst::cc
