#include "cc/connected_components.hpp"

#include <atomic>
#include <memory>
#include <unordered_map>

#include "cc/union_find.hpp"
#include "graph/stats.hpp"
#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/cpu.hpp"
#include "support/prng.hpp"

namespace smpst::cc {

namespace {

/// Renumbers arbitrary representative labels into dense [0, count).
CcResult densify(std::vector<VertexId> raw) {
  CcResult result;
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(raw.size() / 4 + 1);
  result.label.resize(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) {
    const auto [it, inserted] = remap.emplace(raw[v], result.count);
    if (inserted) ++result.count;
    result.label[v] = it->second;
  }
  return result;
}

struct Range {
  std::size_t begin;
  std::size_t end;
};

Range chunk_of(std::size_t total, std::size_t tid, std::size_t p) {
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = tid * base + std::min(tid, extra);
  return {begin, begin + base + (tid < extra ? 1 : 0)};
}

}  // namespace

CcResult cc_union_find(const Graph& g) {
  UnionFind dsu(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) dsu.unite(u, v);
    }
  }
  std::vector<VertexId> raw(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) raw[v] = dsu.find(v);
  return densify(std::move(raw));
}

CcResult cc_bfs(const Graph& g) {
  CcResult result;
  result.label = component_labels(g, &result.count);
  return result;
}

CcResult cc_shiloach_vishkin(const Graph& g, const ParallelCcOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  if (n == 0) return {};

  auto labels = std::make_unique<std::atomic<VertexId>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v].store(v, std::memory_order_relaxed);
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }

  SpinBarrier barrier(p);
  std::atomic<bool> grafted_flag{false};
  std::atomic<bool> jump_flag{false};
  ThreadPool pool(p);
  pool.run([&](std::size_t tid) {
    const Range vr = chunk_of(n, tid, p);
    const Range er = chunk_of(edges.size(), tid, p);
    for (;;) {
      // Graft: hook the larger root onto the smaller for each crossing edge.
      // Arbitrary concurrent writes suffice for connectivity labels (no tree
      // edges are produced), matching the original CRCW formulation.
      bool local = false;
      for (std::size_t e = er.begin; e < er.end; ++e) {
        const VertexId ru = labels[edges[e].u].load(std::memory_order_relaxed);
        const VertexId rv = labels[edges[e].v].load(std::memory_order_relaxed);
        if (ru == rv) continue;
        const VertexId big = ru > rv ? ru : rv;
        const VertexId small = ru > rv ? rv : ru;
        // Only roots hook, so shortcutting converges.
        if (labels[big].load(std::memory_order_relaxed) == big) {
          labels[big].store(small, std::memory_order_relaxed);
          local = true;
        }
      }
      if (!vote_or(barrier, grafted_flag, tid, local)) break;

      // Shortcut to rooted stars.
      for (;;) {
        bool changed = false;
        for (std::size_t v = vr.begin; v < vr.end; ++v) {
          const VertexId dv = labels[v].load(std::memory_order_relaxed);
          const VertexId ddv = labels[dv].load(std::memory_order_relaxed);
          if (ddv != dv) {
            labels[v].store(ddv, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (!vote_or(barrier, jump_flag, tid, changed)) break;
      }
    }
  });

  std::vector<VertexId> raw(n);
  for (VertexId v = 0; v < n; ++v) {
    raw[v] = labels[v].load(std::memory_order_relaxed);
  }
  return densify(std::move(raw));
}

CcResult cc_label_propagation(const Graph& g, const ParallelCcOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  if (n == 0) return {};

  auto labels = std::make_unique<std::atomic<VertexId>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v].store(v, std::memory_order_relaxed);
  }

  SpinBarrier barrier(p);
  std::atomic<bool> round_flag{false};
  ThreadPool pool(p);
  pool.run([&](std::size_t tid) {
    const Range vr = chunk_of(n, tid, p);
    for (;;) {
      // Adopt the minimum label in the closed neighbourhood (the CREW
      // min-reduction of HCS), then one pointer-jumping pass to haul labels
      // toward their roots.
      bool changed = false;
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        VertexId best = labels[v].load(std::memory_order_relaxed);
        for (VertexId w : g.neighbors(static_cast<VertexId>(v))) {
          const VertexId lw = labels[w].load(std::memory_order_relaxed);
          if (lw < best) best = lw;
        }
        if (best < labels[v].load(std::memory_order_relaxed)) {
          labels[v].store(best, std::memory_order_relaxed);
          changed = true;
        }
      }
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        const VertexId dv = labels[v].load(std::memory_order_relaxed);
        const VertexId ddv = labels[dv].load(std::memory_order_relaxed);
        if (ddv < dv) {
          labels[v].store(ddv, std::memory_order_relaxed);
          changed = true;
        }
      }
      if (!vote_or(barrier, round_flag, tid, changed)) break;
    }
  });

  std::vector<VertexId> raw(n);
  for (VertexId v = 0; v < n; ++v) {
    raw[v] = labels[v].load(std::memory_order_relaxed);
  }
  return densify(std::move(raw));
}

CcResult cc_random_mate(const Graph& g, const ParallelCcOptions& opts,
                        std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  if (n == 0) return {};

  auto labels = std::make_unique<std::atomic<VertexId>[]>(n);
  // Hook target elected per tails-root this round (kInvalidVertex = none).
  auto mate = std::make_unique<std::atomic<VertexId>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v].store(v, std::memory_order_relaxed);
    mate[v].store(kInvalidVertex, std::memory_order_relaxed);
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }

  // Coin flip for root r in round k: a pure hash, so all threads agree
  // without communication.
  auto heads = [&](VertexId r, std::uint64_t round) {
    SplitMix64 h(seed ^ (static_cast<std::uint64_t>(r) << 20) ^ round);
    return (h.next() & 1) != 0;
  };

  SpinBarrier barrier(p);
  std::atomic<bool> crossing_flag{false};
  std::atomic<bool> jump_flag{false};
  ThreadPool pool(p);
  pool.run([&](std::size_t tid) {
    const Range vr = chunk_of(n, tid, p);
    const Range er = chunk_of(edges.size(), tid, p);
    for (std::uint64_t round = 1;; ++round) {
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        mate[v].store(kInvalidVertex, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();

      // Tails-roots elect an adjacent heads-root to hook onto.
      bool local_crossing = false;
      for (std::size_t e = er.begin; e < er.end; ++e) {
        const VertexId ru = labels[edges[e].u].load(std::memory_order_relaxed);
        const VertexId rv = labels[edges[e].v].load(std::memory_order_relaxed);
        if (ru == rv) continue;
        local_crossing = true;
        for (const auto [a, b] : {std::pair{ru, rv}, std::pair{rv, ru}}) {
          if (!heads(a, round) && heads(b, round)) {
            VertexId expected = kInvalidVertex;
            mate[a].compare_exchange_strong(expected, b,
                                            std::memory_order_relaxed);
          }
        }
      }
      barrier.arrive_and_wait();

      // Apply hooks: tails -> heads, so no two hooked roots hook each other
      // and the hook graph is cycle-free by construction.
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        const VertexId target = mate[v].load(std::memory_order_relaxed);
        if (target != kInvalidVertex) {
          labels[v].store(target, std::memory_order_relaxed);
        }
      }
      if (!vote_or(barrier, crossing_flag, tid, local_crossing)) break;

      // Shortcut to rooted stars.
      for (;;) {
        bool changed = false;
        for (std::size_t v = vr.begin; v < vr.end; ++v) {
          const VertexId dv = labels[v].load(std::memory_order_relaxed);
          const VertexId ddv = labels[dv].load(std::memory_order_relaxed);
          if (ddv != dv) {
            labels[v].store(ddv, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (!vote_or(barrier, jump_flag, tid, changed)) break;
      }
    }
  });

  std::vector<VertexId> raw(n);
  for (VertexId v = 0; v < n; ++v) {
    raw[v] = labels[v].load(std::memory_order_relaxed);
  }
  return densify(std::move(raw));
}

CcResult cc_rem_union(const Graph& g, const ParallelCcOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  if (n == 0) return {};

  auto parent = std::make_unique<std::atomic<VertexId>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    parent[v].store(v, std::memory_order_relaxed);
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }

  // Rem's union: walk both parent chains keeping the invariant that we
  // always try to splice the larger-id node under the smaller; a CAS that
  // observes interference simply retries from the new parent. Lock-free,
  // barrier-free, and linearizable for connectivity queries issued after
  // the parallel region.
  auto rem_unite = [&](VertexId u, VertexId v) {
    while (true) {
      VertexId pu = parent[u].load(std::memory_order_relaxed);
      VertexId pv = parent[v].load(std::memory_order_relaxed);
      if (pu == pv) return;
      if (pu < pv) {
        std::swap(u, v);
        std::swap(pu, pv);
      }
      // pu > pv: try to hang u's parent below pv.
      if (u == pu) {
        if (parent[u].compare_exchange_weak(pu, pv,
                                            std::memory_order_relaxed)) {
          return;
        }
        continue;  // interference: reread and retry
      }
      // Path-halving step: shortcut u toward its root and climb.
      parent[u].compare_exchange_weak(
          pu, parent[pu].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      u = pu;
    }
  };

  ThreadPool pool(p);
  pool.run([&](std::size_t tid) {
    const Range er = chunk_of(edges.size(), tid, p);
    for (std::size_t e = er.begin; e < er.end; ++e) {
      rem_unite(edges[e].u, edges[e].v);
    }
  });

  // Final sequential flattening (the parallel region left arbitrary trees).
  std::vector<VertexId> raw(n);
  for (VertexId v = 0; v < n; ++v) {
    VertexId cur = v;
    while (parent[cur].load(std::memory_order_relaxed) != cur) {
      cur = parent[cur].load(std::memory_order_relaxed);
    }
    raw[v] = cur;
  }
  return densify(std::move(raw));
}

CcResult cc_from_forest(const SpanningForest& forest) {
  return densify(forest.component_of());
}

bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<VertexId, VertexId> a_to_b;
  std::unordered_map<VertexId, VertexId> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [ita, ia] = a_to_b.emplace(a[v], b[v]);
    if (!ia && ita->second != b[v]) return false;
    const auto [itb, ib] = b_to_a.emplace(b[v], a[v]);
    if (!ib && itb->second != a[v]) return false;
  }
  return true;
}

}  // namespace smpst::cc
