#include "cc/union_find.hpp"

#include "support/assert.hpp"

namespace smpst::cc {

UnionFind::UnionFind(VertexId n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (VertexId v = 0; v < n; ++v) parent_[v] = v;
}

VertexId UnionFind::find(VertexId v) noexcept {
  SMPST_ASSERT(v < parent_.size());
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(VertexId a, VertexId b) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_sets_;
  return true;
}

}  // namespace smpst::cc
