// Sequential disjoint-set union (union by rank, path halving) — the ground
// truth the connectivity tests compare every parallel algorithm against, and
// the engine of the Kruskal MSF baseline.
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace smpst::cc {

class UnionFind {
 public:
  explicit UnionFind(VertexId n);

  [[nodiscard]] VertexId size() const noexcept {
    return static_cast<VertexId>(parent_.size());
  }

  /// Representative of v's set, with path halving.
  VertexId find(VertexId v) noexcept;

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(VertexId a, VertexId b) noexcept;

  [[nodiscard]] VertexId num_sets() const noexcept { return num_sets_; }

  /// True if a and b are currently in the same set.
  bool same(VertexId a, VertexId b) noexcept { return find(a) == find(b); }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> rank_;
  VertexId num_sets_;
};

}  // namespace smpst::cc
