// Software barriers.
//
// The paper's implementation uses the software barriers of SIMPLE (Bader &
// JáJá 1999). SpinBarrier is the equivalent sense-reversing centralized
// barrier; BlockingBarrier trades latency for zero busy-wait and is what the
// micro-benchmarks compare against. Both count a "barrier episode" so the
// Helman–JáJá B(n,p) term can be measured directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/cacheline.hpp"
#include "support/thread_annotations.hpp"

namespace smpst {

/// Centralized sense-reversing spin barrier. Spins with yield so it remains
/// live on oversubscribed machines.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties);

  /// Blocks until all parties arrive. Reusable across any number of episodes.
  void arrive_and_wait() noexcept;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

  /// Completed barrier episodes (the B term of the cost model).
  [[nodiscard]] std::uint64_t episodes() const noexcept {
    return episodes_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_{0};
  std::atomic<bool> sense_{false};
  std::atomic<std::uint64_t> episodes_{0};
};

/// Barrier-synchronized OR-reduction across all parties: returns true iff
/// any thread voted true. Uses three barrier episodes; the third protects
/// the shared flag from being reset (by the next round's leader) while a
/// straggler is still reading it — without it, threads can disagree on a
/// loop-termination vote and deadlock the barrier group.
template <typename Barrier>
bool vote_or(Barrier& barrier, std::atomic<bool>& flag, std::size_t tid,
             bool vote) {
  if (tid == 0) flag.store(false, std::memory_order_relaxed);
  barrier.arrive_and_wait();
  if (vote) flag.store(true, std::memory_order_relaxed);
  barrier.arrive_and_wait();
  const bool result = flag.load(std::memory_order_relaxed);
  barrier.arrive_and_wait();
  return result;
}

/// Mutex + condition-variable barrier; no busy waiting.
class BlockingBarrier {
 public:
  explicit BlockingBarrier(std::size_t parties);

  void arrive_and_wait();

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  Mutex mutex_{lockdep::rank::kBarrier};
  CondVar cv_;
  std::size_t waiting_ SMPST_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ SMPST_GUARDED_BY(mutex_) = 0;
};

/// Dissemination barrier (Hensgen–Finkel–Manber): log2(p) rounds in which
/// thread t signals thread (t + 2^k) mod p and waits for the signal from
/// (t - 2^k) mod p. No single hot cache line, O(log p) latency — the
/// structure the SIMPLE library's tree barriers approximate, included so the
/// barrier-cost term of the Helman–JáJá model can be measured against the
/// centralized SpinBarrier. Unlike the other barriers, callers must pass
/// their thread id.
class DisseminationBarrier {
 public:
  explicit DisseminationBarrier(std::size_t parties);

  /// Every party must call with its unique tid in [0, parties).
  void arrive_and_wait(std::size_t tid) noexcept;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  struct Flags {
    // flags_[parity][round]: signal slot for this thread.
    std::atomic<bool> slot[2][32];
  };

  const std::size_t parties_;
  std::size_t rounds_;
  std::vector<Padded<Flags>> flags_;
  std::vector<Padded<std::uint8_t>> parity_;  // per-thread episode parity
};

}  // namespace smpst
