// Work-stealing queues for the traversal step.
//
// SplitQueue is the queue from the paper: each processor owns a FIFO queue of
// frontier vertices; an idle processor locks a victim's queue and "steals part
// of the queue" — here the front portion, which holds the oldest frontier
// vertices and therefore (in BFS order) the largest unexplored subtrees. A
// spinlock per queue is cheap because steals only happen when the thief has
// nothing else to do.
//
// ChaseLevDeque is a lock-free alternative (owner LIFO bottom, thieves FIFO
// top, one element per steal) included for the steal-granularity ablation.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "sched/spinlock.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace smpst {

template <typename T>
class SplitQueue {
 public:
  SplitQueue() = default;

  void reserve(std::size_t n) {
    LockGuard<SpinLock> lk(lock_);
    buf_.reserve(n);
  }

  /// Owner: append one element at the back.
  void push(const T& value) {
    LockGuard<SpinLock> lk(lock_);
    buf_.push_back(value);
  }

  /// Owner: append many elements at the back.
  void push_bulk(const T* values, std::size_t count) {
    LockGuard<SpinLock> lk(lock_);
    buf_.insert(buf_.end(), values, values + count);
  }

  /// Owner: remove the front element (BFS order). Returns false when empty.
  /// When `next_hint` is non-null and another element remains after the pop,
  /// the new front is copied into it (left untouched otherwise) — a free
  /// peek, taken under the same lock acquisition, that lets the caller
  /// prefetch the next item's data while processing the popped one.
  bool pop(T& out, T* next_hint = nullptr) {
    // Fault site before the lock and before any element moves: a throw or
    // delay here leaves every queued vertex in place for thieves.
    SMPST_FAILPOINT("sched.work_queue.pop");
    LockGuard<SpinLock> lk(lock_);
    if (head_ == buf_.size()) return false;
    out = buf_[head_++];
    if (next_hint != nullptr && head_ < buf_.size()) *next_hint = buf_[head_];
    maybe_compact();
    return true;
  }

  /// Thief: move up to `max_take` elements from the front into `out`.
  /// Returns the number taken. Never blocks on the thief's own queue, so
  /// steals cannot deadlock.
  std::size_t steal(std::vector<T>& out, std::size_t max_take) {
    SMPST_FAILPOINT("sched.work_queue.steal");
    LockGuard<SpinLock> lk(lock_);
    const std::size_t avail = buf_.size() - head_;
    const std::size_t take = std::min(avail, max_take);
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_ + take));
    head_ += take;
    maybe_compact();
    return take;
  }

  [[nodiscard]] bool empty() const {
    LockGuard<SpinLock> lk(lock_);
    return head_ == buf_.size();
  }

  [[nodiscard]] std::size_t size() const {
    LockGuard<SpinLock> lk(lock_);
    return buf_.size() - head_;
  }

  void clear() {
    LockGuard<SpinLock> lk(lock_);
    buf_.clear();
    head_ = 0;
  }

 private:
  void maybe_compact() SMPST_REQUIRES(lock_) {
    // Reclaim the dead prefix once it dominates the buffer.
    if (head_ > 64 && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  mutable SpinLock lock_{lockdep::rank::kWorkQueue};
  std::vector<T> buf_ SMPST_GUARDED_BY(lock_);
  std::size_t head_ SMPST_GUARDED_BY(lock_) = 0;
};

/// Lock-free work-stealing deque (Chase & Lev; fences after Le et al. 2013).
/// The owner pushes/pops at the bottom; thieves steal single elements from
/// the top. T must be trivially copyable.
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 1024)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, value);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns false when empty.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    // seq_cst fence: the bottom store must be globally ordered before the
    // top load (Le et al. 2013, Fig. 8) — acquire/release admits a double
    // pop where owner and thief both take the last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread. Returns false when empty or lost a race.
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst fence: pairs with the owner's fence in pop() so thief and
    // owner agree on the order of the top/bottom accesses (Le et al. 2013).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    // acquire (not consume: deprecated, and compilers promote it anyway) so
    // the grow()'s release store makes the new buffer's cells visible.
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    out = buf->get(t);
    if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
      // After the CAS: the element is owned, so the marker only fires for
      // real steals and sits off the contended retry path.
      SMPST_TRACE_INSTANT("deque.steal");
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size_estimate() == 0; }

  /// Smallest power of two >= n (minimum 8), saturating at the largest
  /// power of two representable in size_t. Public and static so the
  /// saturation is unit-testable: the pre-fix version looped forever once
  /// `c <<= 1` wrapped to zero for n above 2^63.
  static constexpr std::size_t round_up(std::size_t n) noexcept {
    constexpr std::size_t kMaxPow2 =
        std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
    if (n > kMaxPow2) return kMaxPow2;
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), data(new std::atomic<T>[cap]) {}
    ~Buffer() { delete[] data; }

    // Cells are atomic with relaxed ordering (Le et al. 2013): a thief may
    // read a cell the owner is concurrently overwriting; the CAS on top_
    // rejects the stale value, but the access itself must not be a race.
    [[nodiscard]] T get(std::int64_t i) const {
      return data[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      data[static_cast<std::size_t>(i) & (capacity - 1)].store(
          v, std::memory_order_relaxed);
    }

    const std::size_t capacity;  // power of two
    std::atomic<T>* data;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    // Doubling past the largest representable power of two would wrap the
    // capacity to zero and corrupt the index mask; a deque that large is a
    // caller bug (the element count alone would exceed the address space).
    SMPST_CHECK(
        old->capacity <= std::numeric_limits<std::size_t>::max() / 2,
        "ChaseLevDeque capacity overflow: cannot double further");
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    // Thieves may still be reading the old buffer; retire it until the deque
    // itself dies instead of freeing immediately.
    retired_.push_back(old);
    return bigger;
  }

  alignas(kCacheLineSize) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLineSize) std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
};

}  // namespace smpst
