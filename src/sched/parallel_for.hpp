// Data-parallel loop primitives over the thread pool: statically and
// dynamically scheduled parallel-for plus a tree-free reduction. These are
// the SPMD idioms the SV/HCS/Borůvka workers hand-roll; exposed here so
// downstream code (and the parallel graph utilities) can use them directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "sched/thread_pool.hpp"

namespace smpst {

/// Statically partitioned parallel loop: body(i) for i in [begin, end),
/// each thread receiving one contiguous chunk (cache-friendly; matches the
/// Helman–JáJá preference for contiguous access).
template <typename Body>
void parallel_for_static(ThreadPool& pool, std::size_t begin, std::size_t end,
                         Body&& body) {
  const std::size_t total = end - begin;
  const std::size_t p = pool.size();
  if (total == 0) return;
  pool.run([&](std::size_t tid) {
    const std::size_t base = total / p;
    const std::size_t extra = total % p;
    const std::size_t lo = begin + tid * base + std::min(tid, extra);
    const std::size_t hi = lo + base + (tid < extra ? 1 : 0);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Dynamically scheduled parallel loop: threads grab `grain`-sized chunks
/// from a shared cursor. Use when per-index work is irregular.
template <typename Body>
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain, Body&& body) {
  if (begin >= end) return;
  std::atomic<std::size_t> cursor{begin};
  pool.run([&](std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = std::min(lo + grain, end);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

/// Parallel reduction: combines body(i) over [begin, end) with `combine`
/// (associative; `identity` is its neutral element).
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T identity, Body&& body, Combine&& combine) {
  const std::size_t total = end > begin ? end - begin : 0;
  if (total == 0) return identity;
  const std::size_t p = pool.size();
  std::vector<T> partial(p, identity);
  {
    pool.run([&](std::size_t tid) {
      const std::size_t base = total / p;
      const std::size_t extra = total % p;
      const std::size_t lo = begin + tid * base + std::min(tid, extra);
      const std::size_t hi = lo + base + (tid < extra ? 1 : 0);
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
      partial[tid] = acc;
    });
  }
  T result = identity;
  for (const T& t : partial) result = combine(result, t);
  return result;
}

}  // namespace smpst
