#include "sched/termination.hpp"

#include "support/failpoint.hpp"

namespace smpst {

std::size_t IdleGate::sleep_for(std::chrono::microseconds timeout) {
  const std::size_t observed =
      sleepers_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Spurious-wakeup injection ("wake" action): return immediately, exactly as
  // if the condition variable woke without a notify. The starvation detector
  // must tolerate this — the sleeper count was still published.
  bool spurious = false;
  try {
    spurious = SMPST_FAILPOINT_TRIGGERED("sched.termination.sleep");
  } catch (...) {
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  if (!spurious) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    LockGuard<Mutex> lk(mutex_);
    const std::uint64_t epoch = wake_epoch_;
    while (wake_epoch_ == epoch &&
           cv_.wait_until(mutex_, deadline) != std::cv_status::timeout) {
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  return observed;
}

void IdleGate::notify_work() noexcept {
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  {
    LockGuard<Mutex> lk(mutex_);
    ++wake_epoch_;
  }
  cv_.notify_all();
}

}  // namespace smpst
