#include "sched/thread_pool.hpp"

#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"

namespace smpst {

ThreadPool::ThreadPool(std::size_t num_threads,
                       const ThreadPoolOptions& options)
    : options_(options) {
  SMPST_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  threads_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard<Mutex> lk(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& body) {
  // Fault site: before any region state is touched, so a throw leaves the
  // pool ready for the next caller.
  SMPST_FAILPOINT("sched.thread_pool.region");
  // One region at a time: without this, a second caller would overwrite job_
  // and remaining_ while workers are still inside the first region.
  LockGuard<Mutex> region(region_mutex_);
  std::exception_ptr err;
  {
    LockGuard<Mutex> lk(mutex_);
    job_ = &body;
    remaining_ = threads_.size();
    first_error_ = nullptr;
    ++epoch_;
    cv_start_.notify_all();
    while (remaining_ != 0) cv_done_.wait(mutex_);
    job_ = nullptr;
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(std::size_t tid) {
  if (options_.pin_threads && !pin_current_thread(tid)) {
    // Honest accounting instead of a silent wrap onto some other context:
    // the worker runs unpinned and the caller can see how many did.
    pin_failures_.fetch_add(1, std::memory_order_acq_rel);
    SMPST_TRACE_INSTANT("pool.pin_failed");
  }
  obs::trace::label_current_thread("pool-worker", tid);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      // The idle span covers the start-signal wait, making inter-region gaps
      // visible in traces. Lock order is pool mutex_ -> trace registry mutex
      // (only on the lazy first emit); the trace layer never takes pool locks,
      // so no inversion is possible.
      SMPST_TRACE_SCOPE("pool.idle");
      LockGuard<Mutex> lk(mutex_);
      while (!shutdown_ && epoch_ == seen_epoch) cv_start_.wait(mutex_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      // Fault site inside the catch net: an injected worker throw exercises
      // the first-exception capture and the rethrow on the region caller.
      SMPST_FAILPOINT("sched.thread_pool.worker");
      SMPST_TRACE_SCOPE("pool.region");
      (*job)(tid);
    } catch (...) {
      err = std::current_exception();
    }
    {
      LockGuard<Mutex> lk(mutex_);
      if (err && !first_error_) first_error_ = err;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace smpst
