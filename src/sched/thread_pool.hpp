// Persistent worker pool with parallel-region semantics.
//
// The paper's algorithms are SPMD: p threads execute the same body, separated
// by barriers. The pool keeps its workers alive across regions so that a
// benchmark's repeated invocations do not pay thread creation, mirroring how
// the original pthreads code held its workers for the whole program.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace smpst {

struct ThreadPoolOptions {
  /// Pin worker t to placement slot t: the t-th CPU of the process's
  /// *allowed* set in topology order (grouped by NUMA node, so contiguous
  /// worker ranges share a socket — support/topology.hpp). Off by default:
  /// pinning removes migration jitter from dedicated benchmark runs (the
  /// fig3/fig4 scaling curves), but actively hurts when several pools share
  /// the machine — as the query service does — because every pool would
  /// stack its worker t onto the same context. See docs/BENCHMARKING.md
  /// ("Affinity caveats"). Workers whose slot cannot be honoured (more
  /// workers than allowed CPUs, or a failed affinity call) stay unpinned and
  /// are counted in pin_failures() — never silently wrapped onto an
  /// arbitrary CPU.
  bool pin_threads = false;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads,
                      const ThreadPoolOptions& options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Runs `body(tid)` on every worker, tid in [0, size()), and blocks until
  /// all return. If any worker throws, the first exception is rethrown on the
  /// caller after the region completes.
  ///
  /// Safe to call from multiple threads: concurrent callers are serialized,
  /// each getting the whole pool for its region. This is what lets the query
  /// service share one pool between request handlers instead of spawning
  /// threads per query.
  void run(const std::function<void(std::size_t)>& body);

  /// Whether workers were asked to pin themselves (the call itself is
  /// best-effort; on single-context hosts it is a no-op).
  [[nodiscard]] bool pin_threads() const noexcept {
    return options_.pin_threads;
  }

  /// Workers whose pin request could not be honoured (slot beyond the
  /// allowed-CPU set, or the affinity syscall failed). Always 0 when
  /// pin_threads is off. Exact once any region has joined — every worker
  /// attempts its pin before serving its first region.
  [[nodiscard]] std::size_t pin_failures() const noexcept {
    return pin_failures_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop(std::size_t tid);

  // Set in the constructor before any worker spawns and never written again,
  // so workers may read it without synchronization.
  const ThreadPoolOptions options_;

  // The one translation unit in sched/ allowed to own std::thread directly:
  // every other component runs on this pool (tools/smpst_lint.py enforces it).
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> pin_failures_{0};

  Mutex region_mutex_{lockdep::rank::kPoolRegion};  ///< serializes run() callers
  Mutex mutex_{lockdep::rank::kPoolState};
  CondVar cv_start_;
  CondVar cv_done_;
  const std::function<void(std::size_t)>* job_ SMPST_GUARDED_BY(mutex_) =
      nullptr;
  std::uint64_t epoch_ SMPST_GUARDED_BY(mutex_) = 0;
  std::size_t remaining_ SMPST_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SMPST_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ SMPST_GUARDED_BY(mutex_);
};

}  // namespace smpst
