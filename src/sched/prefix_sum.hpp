// Parallel prefix sums after Helman & JáJá ("Prefix computations on
// symmetric multiprocessors", the same authors whose SMP cost model the
// paper's §3 analysis uses). Two-pass scheme: each thread scans its
// contiguous block, a serial pass combines the p block totals, and a second
// parallel pass adds each block's offset — ⟨2n/p ; O(n/p + p) ; 2⟩ in the
// model's terms.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/parallel_for.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {

/// Exclusive prefix sum in place: out[i] = sum of in[0..i). Returns the
/// total. T needs operator+ and value-initialization to zero.
template <typename T>
T parallel_exclusive_scan(ThreadPool& pool, std::vector<T>& data) {
  const std::size_t n = data.size();
  const std::size_t p = pool.size();
  if (n == 0) return T{};

  std::vector<T> block_total(p, T{});
  auto chunk = [&](std::size_t tid) {
    const std::size_t base = n / p;
    const std::size_t extra = n % p;
    const std::size_t lo = tid * base + std::min(tid, extra);
    return std::pair{lo, lo + base + (tid < extra ? 1 : 0)};
  };

  // Pass 1: local exclusive scans.
  pool.run([&](std::size_t tid) {
    const auto [lo, hi] = chunk(tid);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) {
      const T v = data[i];
      data[i] = acc;
      acc = acc + v;
    }
    block_total[tid] = acc;
  });

  // Serial combine of the p block totals.
  std::vector<T> block_offset(p, T{});
  T total{};
  for (std::size_t t = 0; t < p; ++t) {
    block_offset[t] = total;
    total = total + block_total[t];
  }

  // Pass 2: add offsets.
  pool.run([&](std::size_t tid) {
    const auto [lo, hi] = chunk(tid);
    const T off = block_offset[tid];
    for (std::size_t i = lo; i < hi; ++i) data[i] = data[i] + off;
  });
  return total;
}

/// Inclusive variant: out[i] = sum of in[0..i].
template <typename T>
T parallel_inclusive_scan(ThreadPool& pool, std::vector<T>& data) {
  const std::size_t n = data.size();
  if (n == 0) return T{};
  std::vector<T> original = data;
  const T total = parallel_exclusive_scan(pool, data);
  parallel_for_static(pool, 0, n,
                      [&](std::size_t i) { data[i] = data[i] + original[i]; });
  return total;
}

}  // namespace smpst
