// Termination and starvation detection for the work-stealing traversal.
//
// PendingCounter tracks the number of queued-but-unprocessed vertices across
// all queues; it reaching zero is the exact (race-free) termination condition
// because a vertex is counted from the moment it is enqueued until its
// expansion finishes, so no in-flight work can be missed.
//
// IdleGate implements the paper's condition-variable sleep protocol: an idle
// processor that fails to steal goes to sleep for a bounded duration; the
// number of simultaneous sleepers is observable so the caller can implement
// the paper's detection mechanism ("once the number of sleeping processors
// reaches a certain threshold, halt the SMP traversal and switch to SV").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/thread_annotations.hpp"

namespace smpst {

class PendingCounter {
 public:
  void reset(std::int64_t value) noexcept {
    count_.store(value, std::memory_order_relaxed);
  }

  /// Called by a worker that consumed one item and produced `produced` items.
  void consumed_produced(std::int64_t produced) noexcept {
    count_.fetch_add(produced - 1, std::memory_order_acq_rel);
  }

  void add(std::int64_t delta) noexcept {
    count_.fetch_add(delta, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool drained() const noexcept { return value() <= 0; }

 private:
  std::atomic<std::int64_t> count_{0};
};

class IdleGate {
 public:
  /// Sleeps the calling thread until notified or `timeout` elapses.
  /// Returns the number of sleepers (including the caller) observed at entry,
  /// which the caller compares against its starvation threshold.
  std::size_t sleep_for(std::chrono::microseconds timeout);

  /// Wakes all sleepers; cheap (one relaxed load) when nobody sleeps.
  void notify_work() noexcept;

  [[nodiscard]] std::size_t sleepers() const noexcept {
    return sleepers_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> sleepers_{0};
  Mutex mutex_{lockdep::rank::kIdleGate};
  CondVar cv_;
  std::uint64_t wake_epoch_ SMPST_GUARDED_BY(mutex_) = 0;
};

}  // namespace smpst
