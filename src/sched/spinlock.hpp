// Test-and-test-and-set spinlock with exponential backoff and yielding.
//
// Guards the per-processor traversal queues. Contention is rare by design —
// a queue is touched by a thief only when the thief has run out of work — so
// an uncontended fast path (one atomic exchange) matters more than fairness.
// The yield in the slow path is essential on oversubscribed hosts (more
// threads than cores): a pure spin would deadlock the core the lock holder
// needs to run on.
#pragma once

#include <atomic>
#include <thread>

#include "support/thread_annotations.hpp"

namespace smpst {

class SMPST_CAPABILITY("mutex") SpinLock {
 public:
  constexpr SpinLock() noexcept = default;
  constexpr explicit SpinLock(lockdep::Rank rank) noexcept : lockdep_(rank) {}
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept SMPST_ACQUIRE() {
    lockdep_.note_before_lock();
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins < 64) {
#if defined(__x86_64__)
          __builtin_ia32_pause();
#endif
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
    lockdep_.note_locked();
  }

  bool try_lock() noexcept SMPST_TRY_ACQUIRE(true) {
    if (flag_.load(std::memory_order_relaxed) ||
        flag_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    lockdep_.note_try_locked();
    return true;
  }

  void unlock() noexcept SMPST_RELEASE() {
    lockdep_.note_unlock();
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
  [[no_unique_address]] lockdep::Tracked lockdep_;
};

}  // namespace smpst
