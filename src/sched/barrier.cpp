#include "sched/barrier.hpp"

#include <thread>

#include "support/assert.hpp"

namespace smpst {

SpinBarrier::SpinBarrier(std::size_t parties) : parties_(parties) {
  SMPST_CHECK(parties >= 1, "barrier needs at least one party");
}

void SpinBarrier::arrive_and_wait() noexcept {
  const bool my_sense = !sense_.load(std::memory_order_relaxed);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver: reset the count and flip the sense to release everyone.
    waiting_.store(0, std::memory_order_relaxed);
    episodes_.fetch_add(1, std::memory_order_relaxed);
    sense_.store(my_sense, std::memory_order_release);
  } else {
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

BlockingBarrier::BlockingBarrier(std::size_t parties) : parties_(parties) {
  SMPST_CHECK(parties >= 1, "barrier needs at least one party");
}

void BlockingBarrier::arrive_and_wait() {
  LockGuard<Mutex> lk(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    while (generation_ == gen) cv_.wait(mutex_);
  }
}

}  // namespace smpst

namespace smpst {

DisseminationBarrier::DisseminationBarrier(std::size_t parties)
    : parties_(parties), flags_(parties), parity_(parties) {
  SMPST_CHECK(parties >= 1, "barrier needs at least one party");
  rounds_ = 0;
  while ((std::size_t{1} << rounds_) < parties_) ++rounds_;
  SMPST_CHECK(rounds_ <= 32, "dissemination barrier supports up to 2^32 parties");
  for (auto& f : flags_) {
    for (auto& par : f->slot) {
      for (auto& s : par) s.store(false, std::memory_order_relaxed);
    }
  }
  for (auto& p : parity_) *p = 0;
}

void DisseminationBarrier::arrive_and_wait(std::size_t tid) noexcept {
  SMPST_ASSERT(tid < parties_);
  const std::uint8_t parity = *parity_[tid];
  for (std::size_t k = 0; k < rounds_; ++k) {
    const std::size_t partner = (tid + (std::size_t{1} << k)) % parties_;
    flags_[partner]->slot[parity][k].store(true, std::memory_order_release);
    int spins = 0;
    while (!flags_[tid]->slot[parity][k].load(std::memory_order_acquire)) {
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    flags_[tid]->slot[parity][k].store(false, std::memory_order_relaxed);
  }
  *parity_[tid] ^= 1;
}

}  // namespace smpst
