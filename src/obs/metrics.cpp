#include "obs/metrics.hpp"

namespace smpst::obs {

namespace {

template <typename Deque>
auto& find_or_create(Deque& d, const std::string& name) {
  for (auto& entry : d) {
    if (entry.name == name) return entry.instrument;
  }
  d.emplace_back(name);
  return d.back().instrument;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked: see the header comment. A function-local static object would be
  // destroyed before at-exit trace/metrics writers run.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard<Mutex> lk(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard<Mutex> lk(mutex_);
  return find_or_create(gauges_, name);
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard<Mutex> lk(mutex_);
  return find_or_create(histograms_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  LockGuard<Mutex> lk(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    s.counters.push_back({c.name, c.instrument.value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    s.gauges.push_back({g.name, g.instrument.value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    s.histograms.push_back({h.name, h.instrument.snapshot()});
  }
  return s;
}

}  // namespace smpst::obs
