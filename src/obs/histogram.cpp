#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace smpst::obs {

namespace {

/// Inclusive value range [lo, hi] of bucket `idx` in nanoseconds.
void bucket_range(std::size_t idx, double& lo, double& hi) noexcept {
  if (idx == 0) {
    lo = hi = 0.0;
    return;
  }
  lo = std::ldexp(1.0, static_cast<int>(idx) - 1);  // 2^(idx-1)
  hi = std::ldexp(1.0, static_cast<int>(idx)) - 1.0;
}

}  // namespace

void LatencyHistogram::record_ms(double ms) noexcept {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN and negatives clamp to zero
  const auto ns = static_cast<std::uint64_t>(ms * 1e6);
  const std::size_t idx = std::bit_width(ns);  // 0 for ns==0
  // Bucket first: a snapshot whose derived count is nonzero is guaranteed to
  // see this sample in the distribution even if the sum/min/max updates below
  // have not landed yet.
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const noexcept {
  Snapshot s;
  // Buckets first; count is their sum, so count and distribution can never
  // disagree no matter how the reads interleave with recorders.
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  if (s.count == 0) return s;
  s.mean_ms = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
              static_cast<double>(s.count) / 1e6;
  const std::uint64_t min_raw = min_ns_.load(std::memory_order_relaxed);
  const std::uint64_t max_raw = max_ns_.load(std::memory_order_relaxed);
  // A recorder that bumped its bucket may not have CAS'd min/max yet: the
  // sentinel min collapses to the mean, and both extremes are clamped around
  // the mean so min_ms <= mean_ms <= max_ms holds in every snapshot.
  const double min_ms_raw =
      min_raw == ~0ULL ? s.mean_ms : static_cast<double>(min_raw) / 1e6;
  const double max_ms_raw = static_cast<double>(max_raw) / 1e6;
  s.min_ms = std::min(min_ms_raw, s.mean_ms);
  s.max_ms = std::max(max_ms_raw, s.mean_ms);
  return s;
}

double LatencyHistogram::Snapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the order statistic we want.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                              static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      double lo, hi;
      bucket_range(i, lo, hi);
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets[i]);
      const double ns = lo + (hi - lo) * within;
      return std::clamp(ns / 1e6, min_ms, max_ms);
    }
    seen += buckets[i];
  }
  return max_ms;
}

}  // namespace smpst::obs
