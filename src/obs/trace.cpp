#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <ostream>

#include "support/thread_annotations.hpp"

namespace smpst::obs::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 8192;

/// Capacity applied to rings registered after the last enable(). Relaxed:
/// a racing registration picks up either the old or new capacity, both valid.
std::atomic<std::size_t> g_capacity{kDefaultCapacity};

/// One event slot, organized as a per-slot seqlock (header comment). seq
/// encodes the generation: 2*i+1 while event #i is being written, 2*i+2 once
/// it is complete. Every field is a relaxed atomic so a drainer racing a
/// lapping writer reads stale or mixed values — never undefined behavior —
/// and the seq recheck discards the mix.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<char> phase{0};
};

/// Per-thread ring. The owning thread writes slots and head without locks;
/// `label` and `drained` belong to the drainer and are guarded by the
/// registry mutex. Rings are never destroyed (the registry leaks), so a
/// drainer can walk them after their thread has exited.
struct Ring {
  Ring(std::size_t cap, std::uint32_t lane_id, std::string lbl)
      : capacity(cap), slots(new Slot[cap]), lane(lane_id),
        label(std::move(lbl)) {}

  /// Owner thread only.
  void emit(const char* name, std::uint64_t ts, std::uint64_t dur,
            char phase) noexcept {
    const std::uint64_t i = head.load(std::memory_order_relaxed);
    Slot& s = slots[i % capacity];
    s.seq.store(2 * i + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.ts_ns.store(ts, std::memory_order_relaxed);
    s.dur_ns.store(dur, std::memory_order_relaxed);
    s.phase.store(phase, std::memory_order_relaxed);
    s.seq.store(2 * i + 2, std::memory_order_release);
    head.store(i + 1, std::memory_order_release);
  }

  const std::size_t capacity;
  const std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> head{0};  ///< next event number (monotonic)
  const std::uint32_t lane;

  std::string label;          ///< guarded by Registry::mutex
  std::uint64_t drained = 0;  ///< drain cursor; guarded by Registry::mutex
  std::uint64_t dropped = 0;  ///< lapped/torn slots; guarded by Registry::mutex
};

struct Registry {
  Mutex mutex{lockdep::rank::kTrace};
  // unique_ptr elements: Ring addresses stay stable as the deque grows, so
  // TLS handles can keep raw pointers.
  std::deque<std::unique_ptr<Ring>> rings SMPST_GUARDED_BY(mutex);
};

Registry& registry() {
  // Deliberately leaked: the SMPST_TRACE at-exit writer and worker threads
  // unwinding during static destruction may still reach the registry.
  static Registry* r = new Registry();
  return *r;
}

/// Pending label for threads that call label_current_thread before their
/// ring exists. Plain TLS PODs: no destructor ordering hazards.
struct TlsHandle {
  Ring* ring = nullptr;
  const char* pending_role = nullptr;
  std::size_t pending_index = kNoIndex;
};
thread_local TlsHandle t_handle;

std::string make_label(const char* role, std::size_t index,
                       std::uint32_t lane) {
  if (role == nullptr) return "thread-" + std::to_string(lane);
  std::string s = role;
  if (index != kNoIndex) {
    s += '-';
    s += std::to_string(index);
  }
  return s;
}

Ring& tls_ring() {
  if (t_handle.ring == nullptr) {
    Registry& reg = registry();
    LockGuard<Mutex> lk(reg.mutex);
    const auto lane = static_cast<std::uint32_t>(reg.rings.size());
    reg.rings.push_back(std::make_unique<Ring>(
        g_capacity.load(std::memory_order_relaxed), lane,
        make_label(t_handle.pending_role, t_handle.pending_index, lane)));
    t_handle.ring = reg.rings.back().get();
  }
  return *t_handle.ring;
}

/// Drains one ring into `out` (registry mutex held by the caller). Returns
/// the number of slots skipped because the writer lapped or was mid-write.
std::uint64_t drain_ring(Ring& r, std::vector<TraceEvent>& out) {
  const std::uint64_t h = r.head.load(std::memory_order_acquire);
  std::uint64_t dropped = 0;
  std::uint64_t i = r.drained;
  if (h > r.capacity && i < h - r.capacity) {
    dropped += (h - r.capacity) - i;  // writer lapped the cursor
    i = h - r.capacity;
  }
  for (; i < h; ++i) {
    Slot& s = r.slots[i % r.capacity];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != 2 * i + 2) {
      ++dropped;  // being overwritten by a lapping writer
      continue;
    }
    const char* ev_name = s.name.load(std::memory_order_relaxed);
    const std::uint64_t ev_ts = s.ts_ns.load(std::memory_order_relaxed);
    const std::uint64_t ev_dur = s.dur_ns.load(std::memory_order_relaxed);
    const char ev_phase = s.phase.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) {
      ++dropped;  // torn by a concurrent overwrite; discard
      continue;
    }
    out.push_back(TraceEvent{ev_name, ev_ts, ev_dur, r.lane, ev_phase});
  }
  r.drained = h;
  return dropped;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control chars have no business in event names
    } else {
      out += c;
    }
  }
}

/// SMPST_TRACE=<file>: enable tracing before main(), write the Chrome trace
/// at process exit. Constructed during static init of this TU; its
/// destructor runs after main(), when worker threads are joined.
struct EnvCapture {
  std::string path;

  EnvCapture() {
    if (const char* p = std::getenv("SMPST_TRACE"); p != nullptr && *p) {
      path = p;
      enable();
    }
  }

  ~EnvCapture() {
    if (!path.empty()) write_chrome_trace_file(path);
  }
};
EnvCapture g_env_capture;

}  // namespace

void enable(std::size_t events_per_thread) {
  if (events_per_thread > 0) {
    g_capacity.store(events_per_thread, std::memory_order_relaxed);
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return to_trace_ns(std::chrono::steady_clock::now());
}

std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

void emit_complete(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns) noexcept {
  if (!enabled()) return;
  tls_ring().emit(name, start_ns, end_ns > start_ns ? end_ns - start_ns : 0,
                  'X');
}

void emit_instant(const char* name) noexcept {
  if (!enabled()) return;
  tls_ring().emit(name, now_ns(), 0, 'i');
}

void label_current_thread(const char* role, std::size_t index) noexcept {
  t_handle.pending_role = role;
  t_handle.pending_index = index;
  if (Ring* r = t_handle.ring; r != nullptr) {
    Registry& reg = registry();
    LockGuard<Mutex> lk(reg.mutex);
    r->label = make_label(role, index, r->lane);
  }
}

std::vector<TraceEvent> drain() {
  std::vector<TraceEvent> out;
  Registry& reg = registry();
  LockGuard<Mutex> lk(reg.mutex);
  for (auto& ring : reg.rings) {
    ring->dropped += drain_ring(*ring, out);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::vector<Lane> lanes() {
  std::vector<Lane> out;
  Registry& reg = registry();
  LockGuard<Mutex> lk(reg.mutex);
  out.reserve(reg.rings.size());
  for (const auto& ring : reg.rings) {
    out.push_back({ring->lane, ring->label});
  }
  return out;
}

std::uint64_t dropped_events() {
  std::uint64_t total = 0;
  Registry& reg = registry();
  LockGuard<Mutex> lk(reg.mutex);
  for (const auto& ring : reg.rings) total += ring->dropped;
  return total;
}

std::size_t write_chrome_trace(std::ostream& os) {
  const std::vector<Lane> lane_list = lanes();
  const std::vector<TraceEvent> events = drain();
  std::string buf;
  buf.reserve(64 + 96 * (lane_list.size() + events.size()));
  buf += "{\"traceEvents\":[";
  bool first = true;
  for (const Lane& lane : lane_list) {
    if (!first) buf += ',';
    first = false;
    buf += "\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    buf += std::to_string(lane.id);
    buf += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(buf, lane.label.c_str());
    buf += "\"}}";
  }
  char num[64];
  for (const TraceEvent& ev : events) {
    if (!first) buf += ',';
    first = false;
    buf += "\n{\"ph\":\"";
    buf += ev.phase;
    buf += "\",\"pid\":1,\"tid\":";
    buf += std::to_string(ev.lane);
    buf += ",\"name\":\"";
    json_escape_into(buf, ev.name != nullptr ? ev.name : "?");
    buf += "\",\"ts\":";
    // Chrome wants microseconds; keep ns resolution in the fraction.
    std::snprintf(num, sizeof num, "%.3f",
                  static_cast<double>(ev.ts_ns) / 1e3);
    buf += num;
    if (ev.phase == 'X') {
      buf += ",\"dur\":";
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(ev.dur_ns) / 1e3);
      buf += num;
    } else {
      buf += ",\"s\":\"t\"";  // instant scope: thread
    }
    buf += '}';
  }
  buf += "\n]}\n";
  os << buf;
  return events.size();
}

bool write_chrome_trace_file(const std::string& path,
                             std::size_t* events_out) {
  std::ofstream os(path);
  if (!os) {
    if (events_out != nullptr) *events_out = 0;
    return false;
  }
  const std::size_t events = write_chrome_trace(os);
  if (events_out != nullptr) *events_out = events;
  os.flush();
  return os.good();
}

}  // namespace smpst::obs::trace
