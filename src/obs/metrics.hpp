// Process-wide metrics registry: named monotonic counters, gauges and
// latency histograms.
//
// Instruments are registered on first use and live for the life of the
// process (same stable-address discipline as the failpoint registry: a Mutex
// guards deques whose elements never move, so the returned references stay
// valid and the hot path — Counter::add / Gauge::set — is a single relaxed
// atomic op with no lock). snapshot() walks the registry under the lock and
// reads each instrument once; the per-instrument reads are relaxed, so a
// snapshot is a consistent *list* of instruments but values from concurrent
// updaters may be mutually stale — fine for scraping.
//
// Rendering to the wire format lives in src/service/wire.cpp: obs depends
// only on support, never on service.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::obs {

/// Monotonic counter. add() is a relaxed fetch_add; never decrements.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, inflight requests).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class MetricsRegistry {
 public:
  struct Snapshot {
    struct CounterValue {
      std::string name;
      std::uint64_t value = 0;
    };
    struct GaugeValue {
      std::string name;
      std::int64_t value = 0;
    };
    struct HistogramValue {
      std::string name;
      LatencyHistogram::Snapshot snapshot;
    };
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
  };

  /// The process-wide registry. Deliberately leaked, so instrument references
  /// handed out here stay valid through static destruction — the SMPST_TRACE
  /// at-exit writer and late-exiting threads may still touch them.
  [[nodiscard]] static MetricsRegistry& instance();

  /// Find-or-create by name. References are stable for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Every registered instrument, in registration order.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  MetricsRegistry() = default;

  template <typename T>
  struct Named {
    explicit Named(std::string n) : name(std::move(n)) {}
    const std::string name;
    T instrument;
  };

  mutable Mutex mutex_{lockdep::rank::kMetrics};
  // std::deque: push_back never moves existing elements, so &instrument is
  // stable even as the registry grows.
  std::deque<Named<Counter>> counters_ SMPST_GUARDED_BY(mutex_);
  std::deque<Named<Gauge>> gauges_ SMPST_GUARDED_BY(mutex_);
  std::deque<Named<LatencyHistogram>> histograms_ SMPST_GUARDED_BY(mutex_);
};

}  // namespace smpst::obs
