// Lock-free tracing: per-thread fixed-capacity event rings behind macros
// that cost one relaxed atomic load when tracing is disabled (the same
// discipline as support/failpoint.hpp).
//
//   SMPST_TRACE_SCOPE("bc.traversal");    // complete event for this scope
//   SMPST_TRACE_INSTANT("deque.steal");   // zero-duration marker
//
// Hot-path contract:
//   - disabled: one relaxed load per macro hit, no allocation, no TLS ring
//     registration, no clock read;
//   - enabled: the emitting thread writes into its OWN ring (created lazily
//     on first emit) with plain relaxed atomic stores — no lock, no CAS, no
//     contention with other emitters. The ring never grows; when the writer
//     laps the drainer the oldest events are overwritten and counted as
//     dropped rather than blocking the traced code.
//
// Each slot is a per-slot seqlock (Boehm 2012): every field is a relaxed
// atomic, the writer brackets the payload with seq stores (odd = in
// progress, even = generation tag) and the drainer discards any slot whose
// seq changed across the payload read. Torn reads are therefore impossible
// to observe and the protocol is clean under ThreadSanitizer.
//
// Event names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy. Names should be JSON-safe by convention
// (dotted lowercase, e.g. "query.compute"); the exporter escapes anyway.
//
// Draining (trace::drain, trace::write_chrome_trace*) serializes on a
// registry mutex and returns events accumulated since the previous drain.
// write_chrome_trace emits Chrome trace_event JSON loadable in
// about:tracing / Perfetto, one lane ("tid") per registered thread with a
// thread_name metadata record from label_current_thread().
//
// The SMPST_TRACE=<file> environment variable enables tracing before main()
// and writes the Chrome trace to <file> at process exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smpst::obs::trace {

namespace detail {
/// Process-wide gate. Relaxed: emitters only need to agree eventually, and
/// the macros must stay a single unordered load when tracing is off.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// One drained event. `name` points at the caller's string literal.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< start time, ns since the trace epoch
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  std::uint32_t lane = 0;    ///< stable per-thread lane id (Chrome "tid")
  char phase = 'X';          ///< 'X' complete, 'i' instant
};

struct Lane {
  std::uint32_t id = 0;
  std::string label;
};

/// True when tracing is enabled process-wide. Single relaxed load.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns tracing on. `events_per_thread` sizes rings registered from now on
/// (existing rings keep their capacity); 0 keeps the current setting
/// (default 8192 events/thread).
void enable(std::size_t events_per_thread = 0);

/// Turns tracing off. Already-buffered events stay drainable.
void disable();

/// Nanoseconds since the process trace epoch (first clock use).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Converts a steady_clock time point to trace-epoch nanoseconds (clamped
/// at 0 for pre-epoch points). Lets callers timestamp an event from a time
/// captured before the span is emitted, e.g. queue-wait start.
[[nodiscard]] std::uint64_t to_trace_ns(
    std::chrono::steady_clock::time_point tp) noexcept;

/// Emits a complete ('X') event on the calling thread's lane. No-op when
/// tracing is disabled. `name` must be immortal (string literal).
void emit_complete(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns) noexcept;

/// Emits an instant ('i') event stamped now. No-op when disabled.
void emit_instant(const char* name) noexcept;

/// Names the calling thread's lane, e.g. ("pool-worker", 3) -> "pool-worker-3"
/// or ("main") -> "main". `role` must be immortal (string literal). Cheap and
/// callable whether or not tracing is enabled; threads that never call it get
/// a default "thread-<lane>" label.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
void label_current_thread(const char* role,
                          std::size_t index = kNoIndex) noexcept;

/// Returns events buffered since the previous drain, sorted by start time.
/// Safe to call while emitters are running: in-progress or lapped slots are
/// skipped and counted as dropped.
[[nodiscard]] std::vector<TraceEvent> drain();

/// Every registered lane, in registration order.
[[nodiscard]] std::vector<Lane> lanes();

/// Events lost so far to ring wraparound or drain/write races.
[[nodiscard]] std::uint64_t dropped_events();

/// Drains and writes Chrome trace_event JSON ({"traceEvents":[...]}) with
/// thread_name metadata per lane. Timestamps are microseconds as Chrome
/// expects. Returns the number of events written.
std::size_t write_chrome_trace(std::ostream& os);

/// write_chrome_trace into `path`; `*events_out` (when non-null) receives the
/// event count. Returns false (leaving the events drained) when the file
/// cannot be opened or written.
bool write_chrome_trace_file(const std::string& path,
                             std::size_t* events_out = nullptr);

/// RAII span: captures the start time if tracing is enabled at entry and
/// emits a complete event at scope exit. Use via SMPST_TRACE_SCOPE.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (enabled()) {
      name_ = name;
      start_ns_ = now_ns();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) emit_complete(name_, start_ns_, now_ns());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace smpst::obs::trace

#define SMPST_TRACE_CONCAT2(a, b) a##b
#define SMPST_TRACE_CONCAT(a, b) SMPST_TRACE_CONCAT2(a, b)

/// Complete event covering the enclosing scope. `name` must be a literal.
#define SMPST_TRACE_SCOPE(name)                        \
  ::smpst::obs::trace::TraceScope SMPST_TRACE_CONCAT(  \
      smpst_trace_scope_, __LINE__)(name)

/// Zero-duration marker. `name` must be a literal.
#define SMPST_TRACE_INSTANT(name)                      \
  do {                                                 \
    if (::smpst::obs::trace::enabled()) {              \
      ::smpst::obs::trace::emit_instant(name);         \
    }                                                  \
  } while (0)
