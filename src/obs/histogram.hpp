// Lock-free latency histogram for tail-latency reports.
//
// Latencies land in power-of-two nanosecond buckets (atomic counters, so
// recording from many worker threads never serializes); percentiles are
// computed on an immutable snapshot by walking the cumulative distribution
// and interpolating linearly inside the target bucket, clamped to the exact
// observed min/max so p0/p100 are not bucket-quantized.
//
// Snapshot consistency: snapshot() runs concurrently with record_ms() without
// any synchronization beyond the per-field atomics, so the raw reads can be
// mutually stale (a recorder may have bumped a bucket but not yet sum_ns_,
// or updated max before min). The Snapshot it returns is nevertheless
// internally consistent by construction:
//   - `count` is derived from the bucket sum (never read from a separate
//     counter that could disagree with the buckets),
//   - `min_ms <= mean_ms <= max_ms` always holds (raw min/max are clamped
//     around the mean; an unwritten min sentinel collapses to the mean).
// record_ms() bumps the bucket FIRST so a nonzero derived count implies at
// least one fully-recorded bucket entry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace smpst::obs {

class LatencyHistogram {
 public:
  /// One power-of-two bucket per bit position of the nanosecond value, plus
  /// bucket 0 for exact zero.
  static constexpr std::size_t kNumBuckets = 65;

  struct Snapshot {
    std::uint64_t count = 0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    std::array<std::uint64_t, kNumBuckets> buckets{};

    /// p in [0, 100]. Returns 0 for an empty histogram. Monotone in p.
    [[nodiscard]] double percentile(double p) const noexcept;
  };

  void record_ms(double ms) noexcept;

  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace smpst::obs
