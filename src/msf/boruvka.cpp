#include "msf/boruvka.hpp"

#include <atomic>
#include <limits>
#include <memory>

#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "support/cpu.hpp"

namespace smpst::msf {

namespace {

constexpr std::uint64_t kNoEdge = std::numeric_limits<std::uint64_t>::max();

struct Range {
  std::size_t begin;
  std::size_t end;
};

Range chunk_of(std::size_t total, std::size_t tid, std::size_t p) {
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = tid * base + std::min(tid, extra);
  return {begin, begin + base + (tid < extra ? 1 : 0)};
}

/// (weight, index) comparison used by every election: strictly smaller
/// weight wins; equal weights fall back to the smaller index so the
/// election is a total order.
bool edge_less(const std::vector<WeightedEdge>& edges, std::uint64_t a,
               std::uint64_t b) {
  if (b == kNoEdge) return true;
  if (edges[a].w != edges[b].w) return edges[a].w < edges[b].w;
  return a < b;
}

}  // namespace

std::vector<WeightedEdge> boruvka(const WeightedEdgeList& graph,
                                  const BoruvkaOptions& opts) {
  const VertexId n = graph.num_vertices;
  const std::size_t p =
      opts.num_threads != 0 ? opts.num_threads : hardware_threads();
  const auto& edges = graph.edges;
  if (n == 0) return {};

  auto labels = std::make_unique<std::atomic<VertexId>[]>(n);
  auto cand = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v].store(v, std::memory_order_relaxed);
    cand[v].store(kNoEdge, std::memory_order_relaxed);
  }

  SpinBarrier barrier(p);
  std::atomic<bool> any_candidate{false};
  std::atomic<bool> jump_changed{false};
  std::atomic<std::uint64_t> hook_count{0};
  std::vector<std::vector<std::uint64_t>> picked(p);
  // Hook targets are staged here and committed after a barrier so every hook
  // decision reads the stable pre-hook labels (no mid-phase label motion).
  std::vector<VertexId> next_label(n, kInvalidVertex);
  std::uint64_t rounds = 0;

  ThreadPool pool(p);
  pool.run([&](std::size_t tid) {
    const Range vr = chunk_of(n, tid, p);
    const Range er = chunk_of(edges.size(), tid, p);
    for (;;) {
      if (tid == 0) ++rounds;
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        cand[v].store(kNoEdge, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();

      // Elect each component's minimum outgoing edge via CAS-min.
      bool local_any = false;
      for (std::size_t e = er.begin; e < er.end; ++e) {
        const VertexId ru = labels[edges[e].u].load(std::memory_order_relaxed);
        const VertexId rv = labels[edges[e].v].load(std::memory_order_relaxed);
        if (ru == rv) continue;
        local_any = true;
        for (const VertexId r : {ru, rv}) {
          std::uint64_t cur = cand[r].load(std::memory_order_relaxed);
          while (edge_less(edges, e, cur) &&
                 !cand[r].compare_exchange_weak(cur, e,
                                                std::memory_order_relaxed)) {
          }
        }
      }
      if (!vote_or(barrier, any_candidate, tid, local_any)) break;

      // Hook each root along its winning edge. If two roots picked the same
      // edge (a mutual minimum), only the larger hooks, breaking the
      // two-cycle; that root also records the MSF edge. Decisions are staged
      // in next_label and committed after a barrier so every decision reads
      // the stable pre-hook labels.
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        next_label[v] = kInvalidVertex;
        const std::uint64_t e = cand[v].load(std::memory_order_relaxed);
        if (e == kNoEdge) continue;
        const VertexId ru = labels[edges[e].u].load(std::memory_order_relaxed);
        const VertexId rv = labels[edges[e].v].load(std::memory_order_relaxed);
        const VertexId other = (ru == static_cast<VertexId>(v)) ? rv : ru;
        const bool mutual =
            cand[other].load(std::memory_order_relaxed) == e;
        if (mutual && static_cast<VertexId>(v) < other) {
          continue;  // the smaller root of a mutual pair stays put
        }
        next_label[v] = other;
        picked[tid].push_back(e);
        hook_count.fetch_add(1, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();
      for (std::size_t v = vr.begin; v < vr.end; ++v) {
        if (next_label[v] != kInvalidVertex) {
          labels[v].store(next_label[v], std::memory_order_relaxed);
        }
      }
      barrier.arrive_and_wait();

      // Shortcut to rooted stars.
      for (;;) {
        bool changed = false;
        for (std::size_t v = vr.begin; v < vr.end; ++v) {
          const VertexId dv = labels[v].load(std::memory_order_relaxed);
          const VertexId ddv = labels[dv].load(std::memory_order_relaxed);
          if (ddv != dv) {
            labels[v].store(ddv, std::memory_order_relaxed);
            changed = true;
          }
        }
        if (!vote_or(barrier, jump_changed, tid, changed)) break;
      }
    }
  });

  std::vector<WeightedEdge> msf;
  msf.reserve(n);
  for (const auto& per_thread : picked) {
    for (std::uint64_t e : per_thread) msf.push_back(edges[e]);
  }
  if (opts.stats != nullptr) {
    opts.stats->rounds = rounds;
    opts.stats->hooks = hook_count.load(std::memory_order_relaxed);
  }
  return msf;
}

}  // namespace smpst::msf
