#include "msf/prim.hpp"

#include <queue>

#include "graph/types.hpp"

namespace smpst::msf {

namespace {

/// Weighted CSR adjacency built once per call.
struct Adjacency {
  std::vector<EdgeId> offsets;
  std::vector<std::pair<VertexId, Weight>> targets;

  explicit Adjacency(const WeightedEdgeList& graph) {
    const VertexId n = graph.num_vertices;
    offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& e : graph.edges) {
      ++offsets[e.u + 1];
      ++offsets[e.v + 1];
    }
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    targets.resize(offsets.back());
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& e : graph.edges) {
      targets[cursor[e.u]++] = {e.v, e.w};
      targets[cursor[e.v]++] = {e.u, e.w};
    }
  }
};

}  // namespace

std::vector<WeightedEdge> prim(const WeightedEdgeList& graph) {
  const VertexId n = graph.num_vertices;
  const Adjacency adj(graph);

  // best[v]: cheapest edge weight connecting v to the growing tree.
  std::vector<Weight> best(n, std::numeric_limits<Weight>::infinity());
  std::vector<VertexId> best_from(n, kInvalidVertex);
  std::vector<char> in_tree(n, 0);
  std::vector<WeightedEdge> msf;
  msf.reserve(n);

  using HeapEntry = std::pair<Weight, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  for (VertexId start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    best[start] = 0.0;
    heap.push({0.0, start});
    while (!heap.empty()) {
      const auto [w, v] = heap.top();
      heap.pop();
      if (in_tree[v] || w > best[v]) continue;  // stale entry
      in_tree[v] = 1;
      if (best_from[v] != kInvalidVertex) {
        const VertexId u = best_from[v];
        msf.push_back({u < v ? u : v, u < v ? v : u, best[v]});
      }
      for (EdgeId i = adj.offsets[v]; i < adj.offsets[v + 1]; ++i) {
        const auto [x, wx] = adj.targets[i];
        if (!in_tree[x] && wx < best[x]) {
          best[x] = wx;
          best_from[x] = v;
          heap.push({wx, x});
        }
      }
    }
  }
  return msf;
}

}  // namespace smpst::msf
