// Sequential Prim MSF with a binary heap — the second sequential baseline
// (stronger than Kruskal on dense graphs, weaker on very sparse ones, which
// makes the pair a useful cross-check).
#pragma once

#include "msf/weighted.hpp"

namespace smpst::msf {

std::vector<WeightedEdge> prim(const WeightedEdgeList& graph);

}  // namespace smpst::msf
