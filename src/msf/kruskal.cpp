#include "msf/kruskal.hpp"

#include <algorithm>

#include "cc/union_find.hpp"

namespace smpst::msf {

std::vector<WeightedEdge> kruskal(const WeightedEdgeList& graph) {
  std::vector<WeightedEdge> sorted = graph.edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.w != b.w) return a.w < b.w;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  cc::UnionFind dsu(graph.num_vertices);
  std::vector<WeightedEdge> msf;
  msf.reserve(graph.num_vertices);
  for (const auto& e : sorted) {
    if (dsu.unite(e.u, e.v)) msf.push_back(e);
  }
  return msf;
}

}  // namespace smpst::msf
