// Parallel Borůvka minimum spanning forest — the paper's future-work target
// and the algorithm family (Chung & Condon; Dehne & Götz) its related-work
// section benchmarks against.
//
// Each round: every component finds its minimum outgoing edge (CAS-min
// elections over the edge array, the same arbitration trick the SV spanning
// tree uses), components hook along those edges (the two-cycle that appears
// when two components pick the same edge is broken toward the smaller root),
// then pointer jumping collapses the hook forest to stars. With distinct
// edge weights the MSF is unique, so results are comparable edge-for-edge
// with Kruskal and Prim.
#pragma once

#include <cstddef>
#include <cstdint>

#include "msf/weighted.hpp"

namespace smpst::msf {

struct BoruvkaStats {
  std::uint64_t rounds = 0;
  std::uint64_t hooks = 0;
};

struct BoruvkaOptions {
  std::size_t num_threads = 0;  ///< 0 = hardware_threads()
  BoruvkaStats* stats = nullptr;
};

/// Requires pairwise-distinct edge weights (with_random_weights guarantees
/// this almost surely); ties are broken by edge index, so equal weights are
/// tolerated but the "unique MSF" test guarantee needs distinct weights.
std::vector<WeightedEdge> boruvka(const WeightedEdgeList& graph,
                                  const BoruvkaOptions& opts = {});

}  // namespace smpst::msf
