// Weighted edge lists for the minimum-spanning-forest extension (the paper's
// future work; also the problem most of its related-work comparators solve).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace smpst::msf {

using Weight = double;

struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 0.0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

struct WeightedEdgeList {
  VertexId num_vertices = 0;
  std::vector<WeightedEdge> edges;
};

/// Assigns deterministic pseudo-random weights in (0, 1) to the edges of g.
/// Weights are a pure function of (seed, u, v), so all algorithms see the
/// same weighting and distinct edges get distinct weights with probability 1
/// (which makes the MSF unique and the cross-algorithm tests exact).
WeightedEdgeList with_random_weights(const Graph& g, std::uint64_t seed);

/// Total weight of a set of edges.
Weight total_weight(const std::vector<WeightedEdge>& edges);

}  // namespace smpst::msf
