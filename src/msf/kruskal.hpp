// Sequential Kruskal minimum spanning forest (sort + union-find) — the
// strongest sequential MSF baseline at the paper's scales (Chung & Condon
// report their parallel Borůvka trailing sequential Kruskal by 2-3x).
#pragma once

#include "msf/weighted.hpp"

namespace smpst::msf {

/// Returns the MSF edges (for each component, |C|-1 edges of minimum total
/// weight). Input edges are copied and sorted internally.
std::vector<WeightedEdge> kruskal(const WeightedEdgeList& graph);

}  // namespace smpst::msf
