#include "msf/weighted.hpp"

#include "support/prng.hpp"

namespace smpst::msf {

WeightedEdgeList with_random_weights(const Graph& g, std::uint64_t seed) {
  WeightedEdgeList out;
  out.num_vertices = g.num_vertices();
  out.edges.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      // Hash (seed, u, v) into a weight so the mapping is order-independent.
      SplitMix64 h(seed ^ (static_cast<std::uint64_t>(u) << 32 | v));
      h.next();
      const double w =
          static_cast<double>(h.next() >> 11) * 0x1.0p-53;
      out.edges.push_back({u, v, w});
    }
  }
  return out;
}

Weight total_weight(const std::vector<WeightedEdge>& edges) {
  Weight sum = 0.0;
  for (const auto& e : edges) sum += e.w;
  return sum;
}

}  // namespace smpst::msf
