// Umbrella header: everything a downstream user of the smpst library needs.
//
//   #include "smpst.hpp"
//
// pulls in the graph substrate, the generators, every spanning tree /
// connectivity / MSF algorithm, the applications layer, the cost model, and
// the runtime primitives. Individual headers remain includable on their own
// for faster builds.
#pragma once

// Graph substrate.
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"
#include "graph/transform.hpp"
#include "graph/types.hpp"

// Instance generators.
#include "gen/geographic.hpp"
#include "gen/geometric.hpp"
#include "gen/kronecker.hpp"
#include "gen/mesh.hpp"
#include "gen/random_graph.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"

// Spanning trees (the paper's contribution and every baseline).
#include "core/algorithms.hpp"
#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/dfs.hpp"
#include "core/hcs.hpp"
#include "core/parallel_bfs.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/spanning_forest.hpp"
#include "core/validate.hpp"

// Connectivity, MSF, applications.
#include "apps/biconnectivity.hpp"
#include "apps/ear_decomposition.hpp"
#include "apps/tarjan_vishkin.hpp"
#include "apps/tree_algebra.hpp"
#include "cc/connected_components.hpp"
#include "cc/union_find.hpp"
#include "msf/boruvka.hpp"
#include "msf/kruskal.hpp"
#include "msf/prim.hpp"
#include "msf/weighted.hpp"

// Cost model and virtual SMP.
#include "model/cost_model.hpp"
#include "model/simulator.hpp"
#include "model/virtual_smp.hpp"

// Runtime.
#include "sched/barrier.hpp"
#include "sched/parallel_for.hpp"
#include "sched/prefix_sum.hpp"
#include "sched/spinlock.hpp"
#include "sched/termination.hpp"
#include "sched/thread_pool.hpp"
#include "sched/work_queue.hpp"

// Support.
#include "support/prng.hpp"
#include "support/timer.hpp"
