// Descriptive statistics over graphs: degree distribution, component count,
// and a double-sweep diameter estimate. Used by the benchmark harness to
// report instance characteristics next to timings (the paper's analysis ties
// expected behaviour to diameter and degree regularity).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace smpst {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  EdgeId min_degree = 0;
  EdgeId max_degree = 0;
  double avg_degree = 0.0;
  VertexId isolated_vertices = 0;
  VertexId degree2_vertices = 0;
  VertexId num_components = 0;
  VertexId largest_component = 0;
  /// Lower bound on the diameter from a BFS double sweep on the largest
  /// component (exact on trees; a good estimate elsewhere).
  VertexId diameter_lower_bound = 0;
};

GraphStats compute_stats(const Graph& g);

/// Degree histogram: hist[d] = number of vertices with degree d
/// (d capped at max_degree).
std::vector<VertexId> degree_histogram(const Graph& g);

/// Component label for every vertex via sequential BFS (labels are dense,
/// starting at 0). Also returns the number of components through out-param.
std::vector<VertexId> component_labels(const Graph& g,
                                       VertexId* num_components = nullptr);

}  // namespace smpst
