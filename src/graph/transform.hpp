// Degree-2 chain elimination — the preprocessing step from §2 of the paper:
// "When an input graph contains vertices of degree two, these vertices along
//  with a corresponding tree edge can be eliminated as a simple preprocessing
//  step."
//
// Every maximal path whose interior vertices all have degree two is contracted
// to a single edge between its (degree != 2) endpoints. Components that are
// pure cycles keep one anchor vertex. A spanning forest computed on the
// reduced graph can be expanded back to a spanning forest of the original
// graph with `expand_parent_forest`.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace smpst {

/// A contracted chain a — v1 — v2 — ... — vk — b (k >= 1 interior vertices,
/// all of original degree two). a == b for cycles attached at a single
/// anchor, including pure-cycle components (anchor chosen as the smallest
/// vertex of the cycle).
struct Chain {
  VertexId a = kInvalidVertex;
  VertexId b = kInvalidVertex;
  std::vector<VertexId> interior;
};

struct Degree2Reduction {
  Graph reduced;                      ///< simple graph on compacted ids
  std::vector<VertexId> to_original;  ///< reduced id -> original id
  std::vector<VertexId> to_reduced;   ///< original id -> reduced id (kInvalidVertex if eliminated)
  std::vector<Chain> chains;          ///< every eliminated chain

  /// For each reduced edge {x, y} (x < y, reduced ids): the realization used
  /// when that edge appears in a spanning tree. Value is an index into
  /// `chains`, or -1 when the original graph has a direct edge.
  std::unordered_map<std::uint64_t, std::int32_t> realization;

  [[nodiscard]] std::size_t eliminated_vertices() const noexcept {
    std::size_t k = 0;
    for (const Chain& c : chains) k += c.interior.size();
    return k;
  }

  static std::uint64_t pair_key(VertexId x, VertexId y) noexcept {
    if (x > y) std::swap(x, y);
    return (static_cast<std::uint64_t>(x) << 32) | y;
  }
};

/// Contracts all maximal degree-2 chains of `g`.
Degree2Reduction eliminate_degree2(const Graph& g);

/// Expands a parent forest of the reduced graph (parent[v] == v for roots,
/// reduced ids) into a parent forest of the original graph. The result covers
/// every original vertex, including eliminated chain interiors.
std::vector<VertexId> expand_parent_forest(
    const Graph& original, const Degree2Reduction& red,
    const std::vector<VertexId>& reduced_parent);

/// Quotient of g under a vertex partition — the "merge the grown spanning
/// subtree into a super-vertex" operation of the paper's fallback path, made
/// reusable (multilevel schemes, Borůvka-style contraction).
struct Contraction {
  Graph quotient;                       ///< one vertex per partition class
  std::vector<VertexId> class_of;       ///< original vertex -> quotient vertex
  std::vector<VertexId> representative; ///< quotient vertex -> one original

  /// For each quotient edge {x, y} (pair_key of quotient ids), one original
  /// edge realizing it (useful to pull quotient-level tree edges back down).
  std::unordered_map<std::uint64_t, Edge> witness;

  static std::uint64_t pair_key(VertexId x, VertexId y) noexcept {
    if (x > y) std::swap(x, y);
    return (static_cast<std::uint64_t>(x) << 32) | y;
  }
};

/// `labels[v]` names v's class; labels may be arbitrary values (they are
/// densified internally). Self-loops (intra-class edges) are dropped;
/// parallel class edges are merged, keeping the first witness.
Contraction contract_classes(const Graph& g,
                             const std::vector<VertexId>& labels);

}  // namespace smpst
