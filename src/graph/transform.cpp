#include "graph/transform.hpp"

#include <utility>

#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst {

namespace {

/// Walks a maximal chain starting at kept vertex `a` through its degree-2
/// neighbour `first`, marking interiors visited. Returns the chain; its `b`
/// endpoint is the first non-chain vertex reached (possibly `a` again).
Chain walk_chain(const Graph& g, const std::vector<char>& is_chain,
                 std::vector<char>& visited, VertexId a, VertexId first) {
  Chain chain;
  chain.a = a;
  VertexId prev = a;
  VertexId cur = first;
  while (is_chain[cur]) {
    visited[cur] = 1;
    chain.interior.push_back(cur);
    const auto nbrs = g.neighbors(cur);
    SMPST_ASSERT(nbrs.size() == 2);
    const VertexId next = (nbrs[0] == prev) ? nbrs[1] : nbrs[0];
    prev = cur;
    cur = next;
  }
  chain.b = cur;
  return chain;
}

/// Sets parents along `chain` so that the tree path runs from endpoint
/// `from` (already attached elsewhere) down to endpoint `to`.
void route_chain(const Chain& chain, VertexId from, VertexId to,
                 std::vector<VertexId>& parent) {
  SMPST_ASSERT((from == chain.a && to == chain.b) ||
               (from == chain.b && to == chain.a));
  VertexId prev = from;
  if (from == chain.a) {
    for (VertexId v : chain.interior) {
      parent[v] = prev;
      prev = v;
    }
  } else {
    for (auto it = chain.interior.rbegin(); it != chain.interior.rend(); ++it) {
      parent[*it] = prev;
      prev = *it;
    }
  }
  parent[to] = prev;
}

}  // namespace

Degree2Reduction eliminate_degree2(const Graph& g) {
  const VertexId n = g.num_vertices();
  Degree2Reduction red;

  std::vector<char> is_chain(n, 0);
  for (VertexId v = 0; v < n; ++v) is_chain[v] = (g.degree(v) == 2);

  std::vector<char> visited(n, 0);

  // Chains reachable from kept (degree != 2) endpoints.
  for (VertexId a = 0; a < n; ++a) {
    if (is_chain[a]) continue;
    for (VertexId c : g.neighbors(a)) {
      if (is_chain[c] && !visited[c]) {
        red.chains.push_back(walk_chain(g, is_chain, visited, a, c));
      }
    }
  }

  // Pure-cycle components: every vertex has degree two and none was reached
  // above. Keep the smallest vertex of each cycle as an anchor.
  for (VertexId v = 0; v < n; ++v) {
    if (is_chain[v] && !visited[v]) {
      is_chain[v] = 0;  // promote the anchor to a kept vertex
      const VertexId c = g.neighbors(v)[0];
      red.chains.push_back(walk_chain(g, is_chain, visited, v, c));
    }
  }

  // Compact ids for kept vertices.
  red.to_reduced.assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (!is_chain[v]) {
      red.to_reduced[v] = static_cast<VertexId>(red.to_original.size());
      red.to_original.push_back(v);
    }
  }
  const auto rn = static_cast<VertexId>(red.to_original.size());

  // Reduced edge list: direct kept-kept edges first (preferred realization),
  // then one reduced edge per contracted chain pair.
  EdgeList list(rn);
  for (VertexId u = 0; u < n; ++u) {
    if (is_chain[u]) continue;
    for (VertexId v : g.neighbors(u)) {
      if (!is_chain[v] && u < v) {
        const VertexId ru = red.to_reduced[u];
        const VertexId rv = red.to_reduced[v];
        list.add_edge(ru, rv);
        red.realization.emplace(Degree2Reduction::pair_key(ru, rv), -1);
      }
    }
  }
  for (std::size_t i = 0; i < red.chains.size(); ++i) {
    const Chain& chain = red.chains[i];
    if (chain.a == chain.b) continue;  // attached or pure cycle: no edge
    const VertexId ra = red.to_reduced[chain.a];
    const VertexId rb = red.to_reduced[chain.b];
    const auto [it, inserted] = red.realization.emplace(
        Degree2Reduction::pair_key(ra, rb), static_cast<std::int32_t>(i));
    if (inserted) list.add_edge(ra, rb);
    // Parallel chains between the same endpoints stay unused; expansion
    // threads them off one endpoint without closing a cycle.
  }

  red.reduced = GraphBuilder::build(std::move(list));
  return red;
}

Contraction contract_classes(const Graph& g,
                             const std::vector<VertexId>& labels) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(labels.size() == n, "contract_classes: label size mismatch");

  Contraction result;
  result.class_of.assign(n, kInvalidVertex);

  // Densify the labels into quotient ids, first occurrence first.
  std::unordered_map<VertexId, VertexId> dense;
  dense.reserve(n / 4 + 1);
  for (VertexId v = 0; v < n; ++v) {
    const auto [it, inserted] =
        dense.emplace(labels[v], static_cast<VertexId>(dense.size()));
    if (inserted) result.representative.push_back(v);
    result.class_of[v] = it->second;
  }
  const auto qn = static_cast<VertexId>(dense.size());

  EdgeList qedges(qn);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      const VertexId qu = result.class_of[u];
      const VertexId qv = result.class_of[v];
      if (qu == qv) continue;
      const auto [it, inserted] =
          result.witness.emplace(Contraction::pair_key(qu, qv), Edge{u, v});
      if (inserted) qedges.add_edge(qu, qv);
    }
  }
  result.quotient = GraphBuilder::build(std::move(qedges));
  return result;
}

std::vector<VertexId> expand_parent_forest(
    const Graph& original, const Degree2Reduction& red,
    const std::vector<VertexId>& reduced_parent) {
  const VertexId n = original.num_vertices();
  const VertexId rn = red.reduced.num_vertices();
  SMPST_CHECK(reduced_parent.size() == rn,
              "reduced forest size must match the reduced graph");

  std::vector<VertexId> parent(n, kInvalidVertex);
  std::vector<char> chain_used(red.chains.size(), 0);

  for (VertexId rc = 0; rc < rn; ++rc) {
    const VertexId child = red.to_original[rc];
    const VertexId rp = reduced_parent[rc];
    if (rp == rc) {
      parent[child] = child;  // root stays a root
      continue;
    }
    SMPST_CHECK(rp < rn, "reduced parent id out of range");
    const VertexId par = red.to_original[rp];
    const auto it = red.realization.find(Degree2Reduction::pair_key(rc, rp));
    SMPST_CHECK(it != red.realization.end(),
                "reduced tree edge is not an edge of the reduced graph");
    if (it->second < 0) {
      parent[child] = par;
    } else {
      const auto idx = static_cast<std::size_t>(it->second);
      route_chain(red.chains[idx], par, child, parent);
      chain_used[idx] = 1;
    }
  }

  // Chains that did not realize a tree edge (including all cycles): hang the
  // interior off endpoint `a`, leaving the final cycle-closing edge out.
  for (std::size_t i = 0; i < red.chains.size(); ++i) {
    if (chain_used[i]) continue;
    const Chain& chain = red.chains[i];
    VertexId prev = chain.a;
    for (VertexId v : chain.interior) {
      parent[v] = prev;
      prev = v;
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    SMPST_CHECK(parent[v] != kInvalidVertex,
                "expansion left a vertex without a parent");
  }
  return parent;
}

}  // namespace smpst
