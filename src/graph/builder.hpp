// Construction of the immutable CSR Graph from edge lists.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace smpst {

/// Builds CSR graphs via two counting-sort passes over the edge list.
/// Self-loops are always dropped; parallel edges are deduplicated by default
/// (the spanning tree algorithms tolerate them, but deduplication keeps
/// degree statistics meaningful and matches the paper's generators).
struct BuildOptions {
  bool dedup_parallel_edges = true;
};

class GraphBuilder {
 public:
  using Options = BuildOptions;

  /// Consumes `list` (it is canonicalized in place when dedup is requested).
  static Graph build(EdgeList list, const Options& opts = {});

  /// Convenience: build directly from a vector of edges.
  static Graph from_edges(VertexId num_vertices, std::vector<Edge> edges,
                          const Options& opts = {});
};

}  // namespace smpst
