#include "graph/edge_list.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace smpst {

void EdgeList::add_edge(VertexId u, VertexId v) {
  SMPST_ASSERT(u < num_vertices_ && v < num_vertices_);
  edges_.push_back(Edge{u, v});
}

std::size_t EdgeList::canonicalize() {
  const std::size_t before = edges_.size();
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return before - edges_.size();
}

bool EdgeList::is_canonical() const noexcept {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].u >= edges_[i].v) return false;
    if (i > 0 && !(edges_[i - 1] < edges_[i])) return false;
  }
  return true;
}

}  // namespace smpst
