// Mutable edge-list representation used by the generators and as the exchange
// format before the immutable CSR graph is built.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace smpst {

/// An undirected multigraph as a flat list of endpoint pairs plus a vertex
/// count. The list owns no adjacency structure; use GraphBuilder / Graph for
/// traversal.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Appends edge {u, v}. Endpoints must be < num_vertices().
  void add_edge(VertexId u, VertexId v);

  /// Grows the vertex set (never shrinks).
  void ensure_vertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  /// Rewrites each edge so u <= v, drops self-loops, sorts, and removes
  /// duplicate edges. Returns the number of edges removed.
  std::size_t canonicalize();

  /// True if every edge is canonical (u < v), sorted, and unique.
  [[nodiscard]] bool is_canonical() const noexcept;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace smpst
