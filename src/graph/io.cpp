#include "graph/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst::io {

namespace {

constexpr std::array<char, 8> kMagic = {'S', 'M', 'P', 'S', 'T', 'G', 'R', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("smpst::io: " + what);
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void write_edge_list_text(const EdgeList& list, std::ostream& os) {
  os << list.num_vertices() << ' ' << list.num_edges() << '\n';
  for (const Edge& e : list.edges()) os << e.u << ' ' << e.v << '\n';
}

EdgeList read_edge_list_text(std::istream& is) {
  std::uint64_t n = 0, m = 0;
  if (!(is >> n >> m)) fail("bad text header");
  if (n > kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  EdgeList list(static_cast<VertexId>(n));
  list.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(is >> u >> v)) fail("truncated edge list");
    if (u >= n || v >= n) fail("edge endpoint out of range");
    list.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return list;
}

void write_edge_list_binary(const EdgeList& list, std::ostream& os) {
  os.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = list.num_vertices();
  const std::uint64_t m = list.num_edges();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId),
                "Edge must be two packed u32s for binary I/O");
  os.write(reinterpret_cast<const char*>(list.edges().data()),
           static_cast<std::streamsize>(m * sizeof(Edge)));
}

EdgeList read_edge_list_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) fail("bad binary magic");
  std::uint64_t n = 0, m = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!is) fail("truncated binary header");
  if (n > kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  EdgeList list(static_cast<VertexId>(n));
  list.edges().resize(m);
  is.read(reinterpret_cast<char*>(list.edges().data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!is) fail("truncated binary edge data");
  for (const Edge& e : list.edges()) {
    if (e.u >= n || e.v >= n) fail("edge endpoint out of range");
  }
  return list;
}

void save_edge_list(const EdgeList& list, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write: " + path);
  if (has_suffix(path, ".bin")) {
    write_edge_list_binary(list, os);
  } else {
    write_edge_list_text(list, os);
  }
  if (!os) fail("write failed: " + path);
}

EdgeList load_edge_list(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  return has_suffix(path, ".bin") ? read_edge_list_binary(is)
                                  : read_edge_list_text(is);
}

EdgeList to_edge_list(const Graph& g) {
  EdgeList list(g.num_vertices());
  list.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) list.add_edge(u, v);
    }
  }
  return list;
}

void save_graph(const Graph& g, const std::string& path) {
  save_edge_list(to_edge_list(g), path);
}

Graph load_graph(const std::string& path) {
  return GraphBuilder::build(load_edge_list(path));
}

}  // namespace smpst::io
