#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace smpst::io {

namespace {

constexpr std::array<char, 8> kMagic = {'S', 'M', 'P', 'S', 'T', 'G', 'R', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("smpst::io: " + what);
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void write_edge_list_text(const EdgeList& list, std::ostream& os) {
  os << list.num_vertices() << ' ' << list.num_edges() << '\n';
  for (const Edge& e : list.edges()) os << e.u << ' ' << e.v << '\n';
}

EdgeList read_edge_list_text(std::istream& is) {
  std::uint64_t n = 0, m = 0;
  if (!(is >> n >> m)) fail("bad text header");
  if (n > kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  EdgeList list(static_cast<VertexId>(n));
  // The header's m is untrusted until the edges actually parse: cap the
  // speculative reservation so a lying header cannot demand the allocator
  // commit gigabytes up front.
  list.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(m, 1u << 20)));
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    if (!(is >> u >> v)) {
      fail("truncated edge list: header promised " + std::to_string(m) +
           " edges, input ended at edge " + std::to_string(i));
    }
    if (u >= n || v >= n) {
      fail("edge " + std::to_string(i) + " endpoint out of range: " +
           std::to_string(u) + " " + std::to_string(v) + " with n=" +
           std::to_string(n));
    }
    list.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return list;
}

void write_edge_list_binary(const EdgeList& list, std::ostream& os) {
  os.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = list.num_vertices();
  const std::uint64_t m = list.num_edges();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId),
                "Edge must be two packed u32s for binary I/O");
  // Checked multiply, mirroring the chunked reader: m * sizeof(Edge) must not
  // wrap before the streamsize cast (a wrapped count would silently write a
  // short payload under a header that promises m edges).
  constexpr std::uint64_t kMaxStreamBytes = static_cast<std::uint64_t>(
      std::numeric_limits<std::streamsize>::max());
  if (m > kMaxStreamBytes / sizeof(Edge)) {
    fail("edge list too large for binary serialization: " + std::to_string(m) +
         " edges");
  }
  os.write(reinterpret_cast<const char*>(list.edges().data()),
           static_cast<std::streamsize>(m * sizeof(Edge)));
}

EdgeList read_edge_list_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) fail("bad binary magic");
  std::uint64_t n = 0, m = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!is) fail("truncated binary header");
  if (n > kInvalidVertex) fail("vertex count exceeds 32-bit id space");
  EdgeList list(static_cast<VertexId>(n));
  // Grow in bounded chunks instead of resize(m): a hostile header can claim
  // petabytes of edges, and a single up-front allocation (or the
  // m * sizeof(Edge) byte count, which can overflow) would trust it. With
  // chunks, a lying m fails on the truncated stream, not in the allocator.
  auto& edges = list.edges();
  constexpr std::uint64_t kChunkEdges = std::uint64_t{1} << 20;
  std::uint64_t done = 0;
  while (done < m) {
    const std::uint64_t take = std::min(kChunkEdges, m - done);
    edges.resize(static_cast<std::size_t>(done + take));
    is.read(reinterpret_cast<char*>(edges.data() + done),
            static_cast<std::streamsize>(take * sizeof(Edge)));
    if (!is) {
      fail("truncated binary edge data: header promised " +
           std::to_string(m) + " edges, stream ended near edge " +
           std::to_string(done));
    }
    done += take;
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    const Edge& e = edges[static_cast<std::size_t>(i)];
    if (e.u >= n || e.v >= n) {
      fail("edge " + std::to_string(i) + " endpoint out of range: " +
           std::to_string(e.u) + " " + std::to_string(e.v) + " with n=" +
           std::to_string(n));
    }
  }
  return list;
}

void save_edge_list(const EdgeList& list, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write: " + path);
  if (has_suffix(path, ".bin")) {
    write_edge_list_binary(list, os);
  } else {
    write_edge_list_text(list, os);
  }
  if (!os) fail("write failed: " + path);
}

EdgeList load_edge_list(const std::string& path) {
  SMPST_FAILPOINT("graph.io.load");
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  return has_suffix(path, ".bin") ? read_edge_list_binary(is)
                                  : read_edge_list_text(is);
}

EdgeList to_edge_list(const Graph& g) {
  EdgeList list(g.num_vertices());
  list.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) list.add_edge(u, v);
    }
  }
  return list;
}

void save_graph(const Graph& g, const std::string& path) {
  save_edge_list(to_edge_list(g), path);
}

Graph load_graph(const std::string& path) {
  return GraphBuilder::build(load_edge_list(path));
}

}  // namespace smpst::io
