// Vertex relabelling.
//
// The paper shows that Shiloach–Vishkin's iteration count — and therefore its
// running time — depends heavily on the vertex labelling (Fig. 4 contrasts
// row-major vs random torus labels and sequential vs random chain labels),
// while the new work-stealing algorithm is labelling-insensitive. These
// helpers produce the labelings used in that study.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace smpst {

/// perm[old_id] == new_id. Must be a permutation of [0, n).
using Permutation = std::vector<VertexId>;

/// Identity labelling (row-major for generators that emit row-major ids).
Permutation identity_permutation(VertexId n);

/// Uniformly random permutation (Fisher–Yates driven by `seed`).
Permutation random_permutation(VertexId n, std::uint64_t seed);

/// Labels vertices by BFS discovery order from `source`; vertices unreachable
/// from the source keep their relative order after all reachable ones.
Permutation bfs_permutation(const Graph& g, VertexId source = 0);

/// Labels vertices in reverse (n-1-v); a cheap adversarial labelling for SV.
Permutation reverse_permutation(VertexId n);

/// Returns the graph with vertex v renamed to perm[v].
Graph apply_permutation(const Graph& g, const Permutation& perm);

/// True if perm is a permutation of [0, n).
bool is_permutation(const Permutation& perm);

}  // namespace smpst
