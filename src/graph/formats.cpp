#include "graph/formats.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace smpst::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("smpst::io (dimacs): " + what);
}

}  // namespace

void write_dimacs(const EdgeList& list, std::ostream& os,
                  const std::string& comment) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p edge " << list.num_vertices() << ' ' << list.num_edges() << '\n';
  for (const Edge& e : list.edges()) {
    os << "e " << e.u + 1 << ' ' << e.v + 1 << '\n';
  }
}

EdgeList read_dimacs(std::istream& is) {
  EdgeList list;
  bool have_problem = false;
  std::uint64_t declared_edges = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    switch (kind) {
      case 'c':
        break;  // comment
      case 'p': {
        std::string format;
        std::uint64_t n = 0;
        ls >> format >> n >> declared_edges;
        if (!ls || (format != "edge" && format != "col")) {
          fail("bad problem line: " + line);
        }
        if (n > kInvalidVertex) fail("vertex count exceeds 32-bit id space");
        list.ensure_vertices(static_cast<VertexId>(n));
        have_problem = true;
        break;
      }
      case 'e': {
        if (!have_problem) fail("edge line before problem line");
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        ls >> u >> v;
        if (!ls || u == 0 || v == 0 || u > list.num_vertices() ||
            v > list.num_vertices()) {
          fail("bad edge line: " + line);
        }
        list.add_edge(static_cast<VertexId>(u - 1),
                      static_cast<VertexId>(v - 1));
        break;
      }
      default:
        fail("unrecognized line kind '" + std::string(1, kind) + "'");
    }
  }
  if (!have_problem) fail("missing problem line");
  if (list.num_edges() != declared_edges) {
    fail("edge count mismatch: declared " + std::to_string(declared_edges) +
         ", found " + std::to_string(list.num_edges()));
  }
  return list;
}

void write_dot(const Graph& g, std::ostream& os,
               const std::vector<VertexId>* parent,
               const std::string& graph_name) {
  os << "graph " << graph_name << " {\n";
  os << "  node [shape=circle, fontsize=10];\n";
  if (parent != nullptr) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if ((*parent)[v] == v) os << "  " << v << " [shape=box];\n";
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      os << "  " << u << " -- " << v;
      if (parent != nullptr) {
        const bool tree = (*parent)[u] == v || (*parent)[v] == u;
        os << (tree ? " [penwidth=2]" : " [style=dashed, color=gray]");
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace smpst::io
