// Fundamental graph typedefs shared by every subsystem.
//
// Vertices are 32-bit: the paper's largest instances are 1M vertices / 20M
// edges and 32-bit ids halve the memory traffic of the traversals, which the
// Helman–JáJá cost model identifies as the dominant cost. Edge *counts* are
// 64-bit so CSR offsets never overflow.
#pragma once

#include <cstdint>
#include <limits>

namespace smpst {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel meaning "no vertex" (e.g. the parent of a root).
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// A single undirected edge. Stored with u <= v once canonicalized.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace smpst
