#include "graph/subgraph.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst {

Subgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(keep.size() == n, "induced_subgraph: mask size mismatch");

  Subgraph result;
  result.to_subgraph.assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (keep[v]) {
      result.to_subgraph[v] = static_cast<VertexId>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }

  EdgeList list(static_cast<VertexId>(result.to_original.size()));
  for (VertexId u = 0; u < n; ++u) {
    if (!keep[u]) continue;
    for (VertexId v : g.neighbors(u)) {
      if (u < v && keep[v]) {
        list.add_edge(result.to_subgraph[u], result.to_subgraph[v]);
      }
    }
  }
  result.graph = GraphBuilder::build(std::move(list));
  return result;
}

std::vector<VertexId> core_numbers(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<VertexId>(g.degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree; peel in nondecreasing order, updating
  // neighbours' positions in place (Batagelj–Zaveršnik).
  std::vector<VertexId> bucket_start(static_cast<std::size_t>(max_degree) + 2,
                                     0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t i = 1; i < bucket_start.size(); ++i) {
    bucket_start[i] += bucket_start[i - 1];
  }
  std::vector<VertexId> order(n);    // vertices sorted by current degree
  std::vector<VertexId> position(n); // v's index in `order`
  {
    std::vector<VertexId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<VertexId> core(n, 0);
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = degree[v];
    for (VertexId w : g.neighbors(v)) {
      if (degree[w] <= degree[v]) continue;  // w already peeled or tied
      // Swap w to the front of its degree bucket, then shrink its degree.
      const VertexId dw = degree[w];
      const VertexId front_pos = bucket_start[dw];
      const VertexId front_vertex = order[front_pos];
      std::swap(order[position[w]], order[front_pos]);
      std::swap(position[w], position[front_vertex]);
      ++bucket_start[dw];
      --degree[w];
    }
  }
  return core;
}

Subgraph k_core(const Graph& g, VertexId k) {
  const auto core = core_numbers(g);
  std::vector<bool> keep(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) keep[v] = core[v] >= k;
  return induced_subgraph(g, keep);
}

}  // namespace smpst
