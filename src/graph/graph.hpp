// Immutable compressed-sparse-row (CSR) undirected graph.
//
// This is the data structure every algorithm in the library traverses. Both
// directions of each undirected edge are stored so that a vertex's full
// neighbourhood is one contiguous slice — the sequential-BFS baseline's
// locality advantage that the paper calls out depends on exactly this layout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "support/assert.hpp"

namespace smpst {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of *undirected* edges (each stored twice internally).
  [[nodiscard]] EdgeId num_edges() const noexcept { return targets_.size() / 2; }

  /// Number of directed arcs actually stored (2 * num_edges()).
  [[nodiscard]] EdgeId num_arcs() const noexcept { return targets_.size(); }

  [[nodiscard]] EdgeId degree(VertexId v) const noexcept {
    SMPST_ASSERT(static_cast<std::size_t>(v) + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Contiguous, sorted neighbour slice of v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    SMPST_ASSERT(static_cast<std::size_t>(v) + 1 < offsets_.size());
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// True if edge {u, v} exists. O(log deg(u)) — neighbours are sorted.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// Raw CSR arrays, exposed for the cost-model replayer and I/O.
  [[nodiscard]] const std::vector<EdgeId>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<VertexId>& targets() const noexcept {
    return targets_;
  }

  /// Heap bytes held by the CSR arrays. Capacity-based: the registry budget
  /// must charge what the allocator actually committed, not just the used
  /// prefix — a vector carrying reserve() slack would otherwise let the
  /// budget be silently exceeded. GraphBuilder::build shrinks to fit, so for
  /// built graphs this equals the payload size.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.capacity() * sizeof(EdgeId) +
           targets_.capacity() * sizeof(VertexId);
  }

  /// Adopts pre-built CSR arrays (offsets monotone, offsets.front() == 0,
  /// offsets.back() == targets.size(), each slice sorted). Vector capacities
  /// are preserved as given — memory_bytes() reflects them. Used by the
  /// storage loaders and by tests that need capacity != size.
  static Graph from_csr(std::vector<EdgeId> offsets,
                        std::vector<VertexId> targets);

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  friend class GraphBuilder;
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets)
      : offsets_(std::move(offsets)), targets_(std::move(targets)) {}

  std::vector<EdgeId> offsets_;   // size n+1
  std::vector<VertexId> targets_; // size 2m, sorted within each vertex slice
};

}  // namespace smpst
