#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace smpst {

Graph GraphBuilder::build(EdgeList list, const Options& opts) {
  if (opts.dedup_parallel_edges) {
    list.canonicalize();
  } else {
    // Still normalize orientation and drop self-loops.
    for (auto& e : list.edges()) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::erase_if(list.edges(), [](const Edge& e) { return e.u == e.v; });
  }

  const VertexId n = list.num_vertices();
  const auto& edges = list.edges();

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    SMPST_CHECK(e.u < n && e.v < n, "edge endpoint out of range");
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> targets(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    targets[cursor[e.u]++] = e.v;
    targets[cursor[e.v]++] = e.u;
  }

  // Sort each adjacency slice so has_edge() can binary-search and iteration
  // order is deterministic regardless of generator emission order.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  // The counting sort sizes both vectors exactly, but shrink anyway so the
  // capacity-based Graph::memory_bytes() contract (registry budgets charge
  // committed heap, not payload) holds even if the construction above ever
  // grows a vector incrementally.
  offsets.shrink_to_fit();
  targets.shrink_to_fit();
  return Graph(std::move(offsets), std::move(targets));
}

Graph GraphBuilder::from_edges(VertexId num_vertices, std::vector<Edge> edges,
                               const Options& opts) {
  return build(EdgeList(num_vertices, std::move(edges)), opts);
}

}  // namespace smpst
