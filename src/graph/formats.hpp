// Interchange formats beyond the native edge list (graph/io.hpp):
//
//  * DIMACS — the "p edge n m" / "e u v" (1-based) format of the DIMACS
//    implementation challenges; the 3rd challenge (parallel algorithms,
//    1994) is where several of the paper's comparison studies published
//    their inputs.
//  * Graphviz DOT — for visual inspection of small graphs; spanning-forest
//    edges can be highlighted, which the examples use to render their trees.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace smpst::io {

/// Writes "c ..." header, "p edge n m", then one "e u v" line per edge
/// (1-based endpoints, as DIMACS specifies).
void write_dimacs(const EdgeList& list, std::ostream& os,
                  const std::string& comment = "");

/// Parses DIMACS; accepts "c" comments, requires a "p edge|col n m" line
/// before the first "e"; throws std::runtime_error on malformed input.
EdgeList read_dimacs(std::istream& is);

/// DOT rendering. When `parent` is non-null it must be a spanning-forest
/// parent array of g (SpanningForest::parent): tree edges are drawn bold
/// ("penwidth=2"), non-tree edges dashed, roots as boxes.
void write_dot(const Graph& g, std::ostream& os,
               const std::vector<VertexId>* parent = nullptr,
               const std::string& graph_name = "G");

}  // namespace smpst::io
