#include "graph/stats.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smpst {

namespace {

/// BFS from `source` over vertices whose label matches; returns the farthest
/// vertex and its distance.
std::pair<VertexId, VertexId> bfs_farthest(const Graph& g, VertexId source,
                                           std::vector<VertexId>& dist,
                                           std::vector<VertexId>& queue) {
  std::fill(dist.begin(), dist.end(), kInvalidVertex);
  queue.clear();
  queue.push_back(source);
  dist[source] = 0;
  VertexId far = source;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kInvalidVertex) {
        dist[w] = dist[v] + 1;
        if (dist[w] > dist[far]) far = w;
        queue.push_back(w);
      }
    }
  }
  return {far, dist[far]};
}

}  // namespace

std::vector<VertexId> component_labels(const Graph& g,
                                       VertexId* num_components) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n, kInvalidVertex);
  std::vector<VertexId> queue;
  queue.reserve(n);
  VertexId next = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (label[s] != kInvalidVertex) continue;
    const VertexId comp = next++;
    queue.clear();
    queue.push_back(s);
    label[s] = comp;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.neighbors(v)) {
        if (label[w] == kInvalidVertex) {
          label[w] = comp;
          queue.push_back(w);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

std::vector<VertexId> degree_histogram(const Graph& g) {
  EdgeId max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  std::vector<VertexId> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++hist[g.degree(v)];
  return hist;
}

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;

  s.min_degree = g.degree(0);
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    const EdgeId d = g.degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_vertices;
    if (d == 2) ++s.degree2_vertices;
  }
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : 2.0 * static_cast<double>(s.num_edges) /
                           static_cast<double>(s.num_vertices);

  const auto labels = component_labels(g, &s.num_components);
  std::vector<VertexId> sizes(s.num_components, 0);
  for (VertexId l : labels) ++sizes[l];
  VertexId big_label = 0;
  for (VertexId c = 0; c < s.num_components; ++c) {
    if (sizes[c] > sizes[big_label]) big_label = c;
  }
  s.largest_component = sizes.empty() ? 0 : sizes[big_label];

  // Double sweep inside the largest component.
  VertexId start = 0;
  while (start < s.num_vertices && labels[start] != big_label) ++start;
  if (start < s.num_vertices) {
    std::vector<VertexId> dist(s.num_vertices);
    std::vector<VertexId> queue;
    queue.reserve(s.largest_component);
    const auto [far, _] = bfs_farthest(g, start, dist, queue);
    const auto [far2, d2] = bfs_farthest(g, far, dist, queue);
    (void)far2;
    s.diameter_lower_bound = d2;
  }
  return s;
}

}  // namespace smpst
