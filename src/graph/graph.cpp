#include "graph/graph.hpp"

#include <algorithm>

namespace smpst {

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Graph Graph::from_csr(std::vector<EdgeId> offsets,
                      std::vector<VertexId> targets) {
  if (offsets.empty()) {
    SMPST_CHECK(targets.empty(), "CSR targets without an offsets array");
    return Graph();
  }
  SMPST_CHECK(offsets.front() == 0, "CSR offsets must start at 0");
  SMPST_CHECK(offsets.back() == targets.size(),
              "CSR offsets.back() must equal targets.size()");
  SMPST_CHECK(std::is_sorted(offsets.begin(), offsets.end()),
              "CSR offsets must be monotone");
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace smpst
