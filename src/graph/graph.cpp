#include "graph/graph.hpp"

#include <algorithm>

namespace smpst {

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace smpst
