// Graph serialization: a human-readable edge-list text format and a compact
// binary format for large instances.
//
// Text format:   first line "n m", then m lines "u v" (0-based).
// Binary format: magic "SMPSTGR1", u64 n, u64 m, then m {u32, u32} pairs.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace smpst::io {

/// Malformed or hostile input: bad header, out-of-range endpoint, truncated
/// stream. Derives from std::runtime_error so existing catch sites and the
/// service's error mapping keep working unchanged.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

void write_edge_list_text(const EdgeList& list, std::ostream& os);
EdgeList read_edge_list_text(std::istream& is);

void write_edge_list_binary(const EdgeList& list, std::ostream& os);
EdgeList read_edge_list_binary(std::istream& is);

/// File-path conveniences. Format chosen by extension: ".bin" -> binary,
/// everything else -> text. Throws std::runtime_error on I/O failure.
void save_edge_list(const EdgeList& list, const std::string& path);
EdgeList load_edge_list(const std::string& path);

/// Serializes a CSR graph by decomposing it back to a canonical edge list.
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

/// Converts a CSR graph back into a canonical edge list (u < v, sorted).
EdgeList to_edge_list(const Graph& g);

}  // namespace smpst::io
