// Subgraph extraction and k-core decomposition — production-library
// utilities the examples and preprocessing pipelines use (e.g. restricting a
// spanning-tree computation to a robust core of an Internet graph).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace smpst {

struct Subgraph {
  Graph graph;                        ///< induced subgraph, compact ids
  std::vector<VertexId> to_original;  ///< subgraph id -> original id
  std::vector<VertexId> to_subgraph;  ///< original id -> subgraph id
                                      ///< (kInvalidVertex if dropped)
};

/// Induced subgraph on the vertices where keep[v] is true.
Subgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep);

/// Coreness of every vertex: the largest k such that v belongs to the
/// k-core (the maximal subgraph with minimum degree >= k). Classic
/// peeling (Batagelj–Zaveršnik bucket algorithm), O(n + m).
std::vector<VertexId> core_numbers(const Graph& g);

/// The k-core itself as an induced subgraph.
Subgraph k_core(const Graph& g, VertexId k);

}  // namespace smpst
