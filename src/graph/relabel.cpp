#include "graph/relabel.hpp"

#include <numeric>
#include <queue>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst {

Permutation identity_permutation(VertexId n) {
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  return perm;
}

Permutation random_permutation(VertexId n, std::uint64_t seed) {
  Permutation perm = identity_permutation(n);
  Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    const auto j = static_cast<VertexId>(rng.next_bounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Permutation bfs_permutation(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(source < n || n == 0, "bfs_permutation: source out of range");
  Permutation perm(n, kInvalidVertex);
  if (n == 0) return perm;

  std::vector<VertexId> queue;
  queue.reserve(n);
  VertexId next_label = 0;

  auto bfs_from = [&](VertexId s) {
    queue.clear();
    queue.push_back(s);
    perm[s] = next_label++;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.neighbors(v)) {
        if (perm[w] == kInvalidVertex) {
          perm[w] = next_label++;
          queue.push_back(w);
        }
      }
    }
  };

  bfs_from(source);
  for (VertexId v = 0; v < n; ++v) {
    if (perm[v] == kInvalidVertex) bfs_from(v);
  }
  return perm;
}

Permutation reverse_permutation(VertexId n) {
  Permutation perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = n - 1 - v;
  return perm;
}

Graph apply_permutation(const Graph& g, const Permutation& perm) {
  SMPST_CHECK(perm.size() == g.num_vertices(),
              "permutation size must match vertex count");
  EdgeList list(g.num_vertices());
  list.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) list.add_edge(perm[u], perm[v]);
    }
  }
  return GraphBuilder::build(std::move(list));
}

bool is_permutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (VertexId v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace smpst
