#include "gen/mesh.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::gen {

Graph mesh2d(VertexId rows, VertexId cols, double edge_prob,
             std::uint64_t seed) {
  SMPST_CHECK(rows >= 1 && cols >= 1, "mesh2d: empty dimensions");
  const auto n = static_cast<VertexId>(rows * cols);
  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(
      2.0 * static_cast<double>(n) * edge_prob * 1.05));
  Xoshiro256 rng(seed);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols && rng.next_bernoulli(edge_prob)) list.add_edge(v, v + 1);
      if (r + 1 < rows && rng.next_bernoulli(edge_prob)) {
        list.add_edge(v, v + cols);
      }
    }
  }
  return GraphBuilder::build(std::move(list));
}

Graph mesh3d(VertexId dim_x, VertexId dim_y, VertexId dim_z, double edge_prob,
             std::uint64_t seed) {
  SMPST_CHECK(dim_x >= 1 && dim_y >= 1 && dim_z >= 1, "mesh3d: empty dims");
  const auto n = static_cast<VertexId>(dim_x * dim_y * dim_z);
  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(
      3.0 * static_cast<double>(n) * edge_prob * 1.05));
  Xoshiro256 rng(seed);
  auto id = [&](VertexId x, VertexId y, VertexId z) {
    return (z * dim_y + y) * dim_x + x;
  };
  for (VertexId z = 0; z < dim_z; ++z) {
    for (VertexId y = 0; y < dim_y; ++y) {
      for (VertexId x = 0; x < dim_x; ++x) {
        const VertexId v = id(x, y, z);
        if (x + 1 < dim_x && rng.next_bernoulli(edge_prob)) {
          list.add_edge(v, id(x + 1, y, z));
        }
        if (y + 1 < dim_y && rng.next_bernoulli(edge_prob)) {
          list.add_edge(v, id(x, y + 1, z));
        }
        if (z + 1 < dim_z && rng.next_bernoulli(edge_prob)) {
          list.add_edge(v, id(x, y, z + 1));
        }
      }
    }
  }
  return GraphBuilder::build(std::move(list));
}

Graph mesh_2d60(VertexId n, std::uint64_t seed) {
  const auto side =
      static_cast<VertexId>(std::floor(std::sqrt(static_cast<double>(n))));
  SMPST_CHECK(side >= 1, "mesh_2d60: n too small");
  return mesh2d(side, side, 0.60, seed);
}

Graph mesh_3d40(VertexId n, std::uint64_t seed) {
  const auto side =
      static_cast<VertexId>(std::floor(std::cbrt(static_cast<double>(n))));
  SMPST_CHECK(side >= 1, "mesh_3d40: n too small");
  return mesh3d(side, side, side, 0.40, seed);
}

}  // namespace smpst::gen
