// Uniform random graph G(n, m): m distinct edges added uniformly at random to
// n vertices — the construction the paper (following LEDA) uses for its
// "Random Graph" family, including Fig. 3's m = 1.5n instances and Fig. 4's
// m = 20M ≈ n log n instance.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

/// m must not exceed n*(n-1)/2. Runs in expected O(m) for sparse inputs.
Graph random_graph(VertexId n, EdgeId m, std::uint64_t seed);

}  // namespace smpst::gen
