// R-MAT / stochastic Kronecker generator — an extension beyond the paper's
// families, giving a heavy-tailed degree distribution to stress the
// work-stealing load balancer harder than the paper's near-regular inputs.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  ///< d = 1 - a - b - c
  double noise = 0.1;  ///< per-level perturbation to avoid exact self-similarity
};

/// 2^scale vertices, edge_factor * 2^scale undirected edges (before
/// deduplication, matching Graph500 conventions).
Graph rmat(unsigned scale, EdgeId edge_factor, std::uint64_t seed,
           const RmatParams& params = {});

}  // namespace smpst::gen
