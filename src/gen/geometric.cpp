#include "gen/geometric.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::gen {

namespace {

struct Point {
  double x;
  double y;
};

double sq_dist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Uniform bucket grid over [0,1)^2 with ~1 point per cell in expectation.
class BucketGrid {
 public:
  BucketGrid(const std::vector<Point>& pts, VertexId n)
      : side_(std::max<VertexId>(
            1, static_cast<VertexId>(std::sqrt(static_cast<double>(n))))),
        cells_(static_cast<std::size_t>(side_) * side_) {
    for (VertexId i = 0; i < n; ++i) {
      cells_[cell_of(pts[i])].push_back(i);
    }
  }

  [[nodiscard]] VertexId side() const noexcept { return side_; }

  [[nodiscard]] const std::vector<VertexId>& cell(VertexId cx,
                                                  VertexId cy) const {
    return cells_[static_cast<std::size_t>(cy) * side_ + cx];
  }

  [[nodiscard]] std::size_t cell_of(const Point& p) const {
    const auto clamp = [&](double t) {
      auto c = static_cast<VertexId>(t * static_cast<double>(side_));
      return std::min(c, static_cast<VertexId>(side_ - 1));
    };
    return static_cast<std::size_t>(clamp(p.y)) * side_ + clamp(p.x);
  }

 private:
  VertexId side_;
  std::vector<std::vector<VertexId>> cells_;
};

}  // namespace

Graph geometric_knn(VertexId n, VertexId k, std::uint64_t seed) {
  SMPST_CHECK(n >= 2, "geometric_knn: need at least two points");
  SMPST_CHECK(k >= 1 && k < n, "geometric_knn: need 1 <= k < n");

  std::vector<Point> pts(n);
  Xoshiro256 rng(seed);
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
  }

  const BucketGrid grid(pts, n);
  const VertexId side = grid.side();
  const double cell_w = 1.0 / static_cast<double>(side);

  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(n) * k);

  std::vector<std::pair<double, VertexId>> cand;
  for (VertexId i = 0; i < n; ++i) {
    cand.clear();
    const auto home = grid.cell_of(pts[i]);
    const auto hx = static_cast<VertexId>(home % side);
    const auto hy = static_cast<VertexId>(home / side);

    // Expand exact Chebyshev rings of cells (each cell visited once) until
    // the k-th nearest candidate is certainly inside the scanned region.
    const auto sx = static_cast<std::int64_t>(hx);
    const auto sy = static_cast<std::int64_t>(hy);
    auto scan_cell = [&](std::int64_t cx, std::int64_t cy) {
      if (cx < 0 || cy < 0 || cx >= side || cy >= side) return;
      for (VertexId j :
           grid.cell(static_cast<VertexId>(cx), static_cast<VertexId>(cy))) {
        if (j != i) cand.emplace_back(sq_dist(pts[i], pts[j]), j);
      }
    };
    for (VertexId r = 0;; ++r) {
      if (r == 0) {
        scan_cell(sx, sy);
      } else {
        const auto ri = static_cast<std::int64_t>(r);
        for (std::int64_t cx = sx - ri; cx <= sx + ri; ++cx) {
          scan_cell(cx, sy - ri);  // top row of the ring
          scan_cell(cx, sy + ri);  // bottom row
        }
        for (std::int64_t cy = sy - ri + 1; cy <= sy + ri - 1; ++cy) {
          scan_cell(sx - ri, cy);  // left column (corners already done)
          scan_cell(sx + ri, cy);  // right column
        }
      }
      if (cand.size() >= k) {
        std::nth_element(cand.begin(), cand.begin() + (k - 1), cand.end());
        const double kth = cand[k - 1].first;
        // Every unscanned point is at least r*cell_w away (ring r fully
        // scanned covers radius r*cell_w around the home cell).
        const double safe = static_cast<double>(r) * cell_w;
        if (kth <= safe * safe) break;
      }
      if (r >= side) break;  // the whole grid has been scanned
    }

    const auto take = std::min<std::size_t>(k, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + take, cand.end());
    for (std::size_t t = 0; t < take; ++t) {
      list.add_edge(i, cand[t].second);
    }
  }
  return GraphBuilder::build(std::move(list));
}

}  // namespace smpst::gen
