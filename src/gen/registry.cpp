#include "gen/registry.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/geographic.hpp"
#include "gen/geometric.hpp"
#include "gen/kronecker.hpp"
#include "gen/mesh.hpp"
#include "gen/random_graph.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/relabel.hpp"

namespace smpst::gen {

namespace {

VertexId square_side(VertexId n) {
  return static_cast<VertexId>(std::floor(std::sqrt(static_cast<double>(n))));
}

Graph make_torus(VertexId n) {
  const VertexId side = std::max<VertexId>(2, square_side(n));
  return torus2d(side, side);
}

EdgeId nlogn_edges(VertexId n) {
  const double bits = std::log2(std::max<double>(2.0, n));
  return static_cast<EdgeId>(static_cast<double>(n) * bits);
}

}  // namespace

const std::vector<FamilySpec>& families() {
  static const std::vector<FamilySpec> kFamilies = {
      {"torus-rowmajor", "2D torus, row-major vertex labels (Fig. 4.1)"},
      {"torus-random", "2D torus, random vertex labels (Fig. 4.2)"},
      {"random-nlogn", "uniform G(n,m), m = n log2 n (Fig. 4.3)"},
      {"2d60", "2D mesh with 60% of lattice edges (Fig. 4.4)"},
      {"3d40", "3D mesh with 40% of lattice edges (Fig. 4.5)"},
      {"ad3", "geometric 3-nearest-neighbour graph (Fig. 4.6)"},
      {"geo-flat", "flat geographic/Waxman internet model (Fig. 4.7)"},
      {"geo-hier", "hierarchical geographic internet model (Fig. 4.8)"},
      {"chain-seq", "degenerate chain, sequential labels (Fig. 4.9)"},
      {"chain-random", "degenerate chain, random labels (Fig. 4.10)"},
      {"random-1.5n", "uniform G(n,m), m = 1.5 n (Fig. 3)"},
      {"rmat", "R-MAT power-law graph, 8 edges/vertex (extension)"},
      {"geometric-k8", "geometric 8-nearest-neighbour graph (extension)"},
      {"star", "star graph (extension)"},
      {"binary-tree", "complete binary tree (extension)"},
      {"ring", "single cycle (extension)"},
  };
  return kFamilies;
}

bool is_family(const std::string& name) {
  for (const auto& f : families()) {
    if (f.name == name) return true;
  }
  return false;
}

Graph make_family(const std::string& name, VertexId n, std::uint64_t seed) {
  if (name == "torus-rowmajor") return make_torus(n);
  if (name == "torus-random") {
    const Graph g = make_torus(n);
    return apply_permutation(g, random_permutation(g.num_vertices(), seed));
  }
  if (name == "random-nlogn") return random_graph(n, nlogn_edges(n), seed);
  if (name == "random-1.5n") {
    return random_graph(n, static_cast<EdgeId>(1.5 * static_cast<double>(n)),
                        seed);
  }
  if (name == "2d60") return mesh_2d60(n, seed);
  if (name == "3d40") return mesh_3d40(n, seed);
  if (name == "ad3") return ad3(n, seed);
  if (name == "geo-flat") return geographic_flat(n, seed);
  if (name == "geo-hier") return geographic_hierarchical(n, seed);
  if (name == "chain-seq") return chain(n);
  if (name == "chain-random") {
    const Graph g = chain(n);
    return apply_permutation(g, random_permutation(g.num_vertices(), seed));
  }
  if (name == "rmat") {
    const auto scale =
        static_cast<unsigned>(std::ceil(std::log2(std::max<double>(2.0, n))));
    return rmat(scale, 8, seed);
  }
  if (name == "geometric-k8") return geometric_knn(n, 8, seed);
  if (name == "star") return star(n);
  if (name == "binary-tree") return binary_tree(n);
  if (name == "ring") return ring(n);
  throw std::invalid_argument("unknown graph family: " + name);
}

}  // namespace smpst::gen
