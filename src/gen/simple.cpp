#include "gen/simple.hpp"

#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst::gen {

Graph chain(VertexId n) {
  SMPST_CHECK(n >= 1, "chain: empty graph");
  EdgeList list(n);
  list.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) list.add_edge(v - 1, v);
  return GraphBuilder::build(std::move(list));
}

Graph star(VertexId n) {
  SMPST_CHECK(n >= 1, "star: empty graph");
  EdgeList list(n);
  list.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) list.add_edge(0, v);
  return GraphBuilder::build(std::move(list));
}

Graph complete(VertexId n) {
  SMPST_CHECK(n >= 1, "complete: empty graph");
  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) list.add_edge(u, v);
  }
  return GraphBuilder::build(std::move(list));
}

Graph binary_tree(VertexId n) {
  SMPST_CHECK(n >= 1, "binary_tree: empty graph");
  EdgeList list(n);
  list.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) list.add_edge((v - 1) / 2, v);
  return GraphBuilder::build(std::move(list));
}

Graph ring(VertexId n) {
  SMPST_CHECK(n >= 3, "ring: need at least three vertices");
  EdgeList list(n);
  list.reserve(n);
  for (VertexId v = 1; v < n; ++v) list.add_edge(v - 1, v);
  list.add_edge(n - 1, 0);
  return GraphBuilder::build(std::move(list));
}

Graph disjoint_chains(VertexId num_chains, VertexId chain_length,
                      VertexId isolated) {
  const VertexId n = num_chains * chain_length + isolated;
  SMPST_CHECK(n >= 1, "disjoint_chains: empty graph");
  EdgeList list(n);
  for (VertexId c = 0; c < num_chains; ++c) {
    const VertexId base = c * chain_length;
    for (VertexId i = 1; i < chain_length; ++i) {
      list.add_edge(base + i - 1, base + i);
    }
  }
  return GraphBuilder::build(std::move(list));
}

Graph caterpillar(VertexId spine, VertexId legs) {
  SMPST_CHECK(spine >= 1, "caterpillar: need a spine");
  const VertexId n = spine * (legs + 1);
  EdgeList list(n);
  for (VertexId s = 1; s < spine; ++s) list.add_edge(s - 1, s);
  for (VertexId s = 0; s < spine; ++s) {
    for (VertexId l = 0; l < legs; ++l) {
      list.add_edge(s, spine + s * legs + l);
    }
  }
  return GraphBuilder::build(std::move(list));
}

Graph lollipop(VertexId clique, VertexId tail) {
  SMPST_CHECK(clique >= 1, "lollipop: need a clique");
  const VertexId n = clique + tail;
  EdgeList list(n);
  for (VertexId u = 0; u < clique; ++u) {
    for (VertexId v = u + 1; v < clique; ++v) list.add_edge(u, v);
  }
  for (VertexId t = 0; t < tail; ++t) {
    const VertexId prev = t == 0 ? clique - 1 : clique + t - 1;
    list.add_edge(prev, clique + t);
  }
  return GraphBuilder::build(std::move(list));
}

}  // namespace smpst::gen
