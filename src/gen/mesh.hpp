// Probabilistic mesh generators: the 2D60 and 3D40 families used across the
// connected-components literature the paper compares against (Greiner;
// Krishnamurthy et al.; Hsu et al.; Goddard et al.).
//
// A rows x cols (x depth) grid is laid out without wraparound and each lattice
// edge is kept independently with probability `edge_prob` (0.60 for 2D60,
// 0.40 for 3D40).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

Graph mesh2d(VertexId rows, VertexId cols, double edge_prob,
             std::uint64_t seed);

Graph mesh3d(VertexId dim_x, VertexId dim_y, VertexId dim_z, double edge_prob,
             std::uint64_t seed);

/// 2D60 with approximately n vertices (square side = floor(sqrt(n))).
Graph mesh_2d60(VertexId n, std::uint64_t seed);

/// 3D40 with approximately n vertices (cube side = floor(cbrt(n))).
Graph mesh_3d40(VertexId n, std::uint64_t seed);

}  // namespace smpst::gen
