// Geographic (Internet-topology) graph generators after Calvert, Doar &
// Zegura, "Modeling Internet Topology" (IEEE Communications 1997) — the
// paper's "Geographic Graphs" family.
//
// Flat mode: vertices are placed uniformly in a unit square and each pair is
// joined with the Waxman probability  P(u,v) = alpha * exp(-d(u,v) / (beta*L))
// where L is the maximum possible distance. A distance cutoff plus a bucket
// grid keeps generation near-linear for sparse parameterizations.
//
// Hierarchical mode: a three-level transit-stub-like construction — a Waxman
// backbone; domains placed around backbone routers and wired as local Waxman
// graphs attached to their router; subdomains likewise attached to domain
// nodes. Every level is forced connected via a local spanning chain so the
// instance has one component (matching the paper's use of these inputs for
// spanning *tree* experiments).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

struct GeoFlatParams {
  double alpha = 0.30;  ///< Waxman scale parameter
  /// Waxman distance decay as a fraction of the max distance L. The default 0
  /// auto-derives beta so the expected average degree is target_avg_degree
  /// (the decay radius must shrink like 1/sqrt(n) or dense instances blow up).
  double beta = 0.0;
  double target_avg_degree = 6.0;
  double cutoff_factor = 6;  ///< ignore pairs farther than cutoff_factor*beta*L
  bool force_connected = true;  ///< chain components together at the end
};

Graph geographic_flat(VertexId n, std::uint64_t seed,
                      const GeoFlatParams& params = {});

struct GeoHierParams {
  VertexId backbone = 16;           ///< level-0 routers
  VertexId domains_per_backbone = 4;
  VertexId subs_per_domain = 4;
  double backbone_alpha = 0.6;
  double local_alpha = 0.4;
  double beta = 0.15;
};

/// Builds a hierarchical instance with approximately n vertices; the three
/// level populations are derived from n and `params`.
Graph geographic_hierarchical(VertexId n, std::uint64_t seed,
                              const GeoHierParams& params = {});

}  // namespace smpst::gen
