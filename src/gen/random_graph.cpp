#include "gen/random_graph.hpp"

#include <unordered_set>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::gen {

Graph random_graph(VertexId n, EdgeId m, std::uint64_t seed) {
  SMPST_CHECK(n >= 2 || m == 0, "random_graph: need >= 2 vertices for edges");
  const auto max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  SMPST_CHECK(m <= max_edges, "random_graph: m exceeds simple-graph capacity");

  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);

  EdgeList list(n);
  list.reserve(m);
  while (list.num_edges() < m) {
    auto u = static_cast<VertexId>(rng.next_bounded(n));
    auto v = static_cast<VertexId>(rng.next_bounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) list.add_edge(u, v);
  }
  return GraphBuilder::build(std::move(list));
}

}  // namespace smpst::gen
