// 2D torus generator — the regular mesh family from the paper's evaluation.
// Vertices are emitted in row-major order, which is exactly the "row-major
// labelling" used in Fig. 4's first torus panel; apply a random permutation
// (graph/relabel.hpp) for the second panel.
#pragma once

#include "graph/graph.hpp"

namespace smpst::gen {

/// rows x cols torus: every vertex joins its four mesh neighbours with
/// wraparound. Degenerate 1-wide dimensions fall back to rings/paths.
Graph torus2d(VertexId rows, VertexId cols);

/// Square torus with n vertices; n must be a perfect square.
Graph torus2d_square(VertexId n);

}  // namespace smpst::gen
