// Elementary graph families: the degenerate chain from the paper's
// pathological experiments plus standard shapes used throughout the tests.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

/// Degenerate chain (path graph) 0 — 1 — ... — n-1. Sequential labelling is
/// the emission order; use random_permutation for the randomized panel.
Graph chain(VertexId n);

/// Star: vertex 0 adjacent to all others.
Graph star(VertexId n);

/// Complete graph K_n.
Graph complete(VertexId n);

/// Complete binary tree on n vertices (vertex v's children are 2v+1, 2v+2).
Graph binary_tree(VertexId n);

/// Ring (cycle) on n vertices.
Graph ring(VertexId n);

/// n isolated vertices plus the given number of disjoint chain components of
/// the given length each; exercises spanning-*forest* behaviour.
Graph disjoint_chains(VertexId num_chains, VertexId chain_length,
                      VertexId isolated);

/// Caterpillar: a spine path with `legs` pendant vertices per spine vertex.
Graph caterpillar(VertexId spine, VertexId legs);

/// Lollipop: K_k clique joined to a path of length tail; a worst case for
/// random walks and a low-connectivity stress input.
Graph lollipop(VertexId clique, VertexId tail);

}  // namespace smpst::gen
