#include "gen/kronecker.hpp"

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::gen {

Graph rmat(unsigned scale, EdgeId edge_factor, std::uint64_t seed,
           const RmatParams& params) {
  SMPST_CHECK(scale >= 1 && scale < 31, "rmat: scale out of range");
  const auto n = static_cast<VertexId>(VertexId{1} << scale);
  const EdgeId m = edge_factor * n;

  Xoshiro256 rng(seed);
  EdgeList list(n);
  list.reserve(m);

  for (EdgeId e = 0; e < m; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (unsigned level = 0; level < scale; ++level) {
      // Perturb the quadrant probabilities slightly per level.
      const double na =
          params.a * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double nb =
          params.b * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double nc =
          params.c * (1.0 + params.noise * (rng.next_double() - 0.5));
      const double sum = na + nb + nc + (1.0 - params.a - params.b - params.c);
      const double r = rng.next_double() * sum;
      u <<= 1;
      v <<= 1;
      if (r < na) {
        // top-left quadrant: no bits set
      } else if (r < na + nb) {
        v |= 1;
      } else if (r < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) list.add_edge(u, v);
  }
  return GraphBuilder::build(std::move(list));
}

}  // namespace smpst::gen
