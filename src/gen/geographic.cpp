#include "gen/geographic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"

namespace smpst::gen {

namespace {

struct Point {
  double x;
  double y;
};

double dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Minimal union-find for the force-connected post-pass.
class MiniDsu {
 public:
  explicit MiniDsu(VertexId n) : parent_(n) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }
  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<VertexId> parent_;
};

/// Links the components of `list` into one by chaining component
/// representatives. A documented deviation from the raw Waxman model so that
/// spanning-tree instances have a single component (DESIGN.md §5).
void force_connected(EdgeList& list) {
  const VertexId n = list.num_vertices();
  MiniDsu dsu(n);
  for (const Edge& e : list.edges()) dsu.unite(e.u, e.v);
  VertexId prev_rep = kInvalidVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (dsu.find(v) != v) continue;
    if (prev_rep != kInvalidVertex) {
      list.add_edge(prev_rep, v);
      dsu.unite(prev_rep, v);
    }
    prev_rep = dsu.find(v);
  }
}

/// Adds Waxman edges among pts[lo, hi) with decay scale `range` (absolute
/// distance units), restricted to pairs within cutoff*range.
void add_waxman_edges(EdgeList& list, const std::vector<Point>& pts,
                      VertexId lo, VertexId hi, double alpha, double range,
                      double cutoff_factor, Xoshiro256& rng) {
  const double cutoff = cutoff_factor * range;
  // Bucket grid with cell size = cutoff: all qualifying pairs are in the same
  // or an adjacent cell.
  const auto cells_per_side = std::max<VertexId>(
      1, static_cast<VertexId>(std::min(1.0 / cutoff, 1e4)));
  const double cell_w = 1.0 / static_cast<double>(cells_per_side);
  std::vector<std::vector<VertexId>> grid(
      static_cast<std::size_t>(cells_per_side) * cells_per_side);
  auto cell_idx = [&](const Point& p) {
    auto cx = std::min<VertexId>(static_cast<VertexId>(p.x / cell_w),
                                 cells_per_side - 1);
    auto cy = std::min<VertexId>(static_cast<VertexId>(p.y / cell_w),
                                 cells_per_side - 1);
    return static_cast<std::size_t>(cy) * cells_per_side + cx;
  };
  for (VertexId i = lo; i < hi; ++i) grid[cell_idx(pts[i])].push_back(i);

  for (VertexId cy = 0; cy < cells_per_side; ++cy) {
    for (VertexId cx = 0; cx < cells_per_side; ++cx) {
      const auto& home = grid[static_cast<std::size_t>(cy) * cells_per_side + cx];
      for (VertexId dy = 0; dy <= 1; ++dy) {
        const VertexId ny = cy + dy;
        if (ny >= cells_per_side) continue;
        for (int dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
          const auto nxs = static_cast<std::int64_t>(cx) + dx;
          if (nxs < 0 || nxs >= static_cast<std::int64_t>(cells_per_side)) {
            continue;
          }
          const auto nx = static_cast<VertexId>(nxs);
          const bool same_cell = (dy == 0 && dx == 0);
          const auto& other =
              grid[static_cast<std::size_t>(ny) * cells_per_side + nx];
          for (std::size_t a = 0; a < home.size(); ++a) {
            const std::size_t b0 = same_cell ? a + 1 : 0;
            for (std::size_t b = b0; b < other.size(); ++b) {
              const VertexId u = home[a];
              const VertexId v = other[b];
              const double d = dist(pts[u], pts[v]);
              if (d > cutoff) continue;
              if (rng.next_bernoulli(alpha * std::exp(-d / range))) {
                list.add_edge(u, v);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

Graph geographic_flat(VertexId n, std::uint64_t seed,
                      const GeoFlatParams& params) {
  SMPST_CHECK(n >= 2, "geographic_flat: need at least two vertices");
  const double max_dist = std::numbers::sqrt2;

  double beta = params.beta;
  if (beta <= 0.0) {
    // E[deg] ~= n * alpha * 2*pi*(beta*L)^2 for the exponential kernel;
    // solve for beta*L given the target average degree.
    const double range = std::sqrt(
        params.target_avg_degree /
        (2.0 * std::numbers::pi * params.alpha * static_cast<double>(n)));
    beta = range / max_dist;
  }

  std::vector<Point> pts(n);
  Xoshiro256 rng(seed);
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
  }

  EdgeList list(n);
  add_waxman_edges(list, pts, 0, n, params.alpha, beta * max_dist,
                   params.cutoff_factor, rng);
  if (params.force_connected) force_connected(list);
  return GraphBuilder::build(std::move(list));
}

Graph geographic_hierarchical(VertexId n, std::uint64_t seed,
                              const GeoHierParams& params) {
  SMPST_CHECK(n >= 8, "geographic_hierarchical: instance too small");
  Xoshiro256 rng(seed);

  const VertexId backbone = std::min<VertexId>(params.backbone, n / 4);
  const VertexId num_domains = backbone * params.domains_per_backbone;
  const VertexId num_subs = num_domains * params.subs_per_domain;

  // Split the non-backbone population: ~30% to domains, the rest to
  // subdomains (stub networks dominate real topologies). domain_pop is
  // clamped to the remaining population — on tiny instances the "one vertex
  // per domain" floor would otherwise exceed it and wrap the unsigned
  // subtraction below.
  const VertexId rest = n - backbone;
  const VertexId domain_pop =
      std::min(rest, std::max<VertexId>(num_domains, rest * 3 / 10));
  const VertexId sub_pop = rest - domain_pop;

  std::vector<Point> pts;
  pts.reserve(n);
  EdgeList list(n);

  // Level 0: backbone routers spread over the whole square, Waxman-wired with
  // a chain fallback so the backbone is connected.
  for (VertexId i = 0; i < backbone; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  add_waxman_edges(list, pts, 0, backbone, params.backbone_alpha,
                   params.beta * std::numbers::sqrt2, 6.0, rng);
  for (VertexId i = 1; i < backbone; ++i) list.add_edge(i - 1, i);

  auto place_cluster = [&](VertexId count, Point center, double radius,
                           VertexId attach_to) {
    // First node of the cluster links to the parent level; the cluster itself
    // is a chain plus local Waxman extras, keeping it connected.
    const auto lo = static_cast<VertexId>(pts.size());
    for (VertexId i = 0; i < count; ++i) {
      const double ang =
          rng.next_double() * 2.0 * std::numbers::pi;
      const double rad = radius * std::sqrt(rng.next_double());
      const double x = std::clamp(center.x + rad * std::cos(ang), 0.0, 1.0);
      const double y = std::clamp(center.y + rad * std::sin(ang), 0.0, 1.0);
      pts.push_back({x, y});
    }
    const auto hi = static_cast<VertexId>(pts.size());
    if (lo == hi) return lo;
    list.add_edge(attach_to, lo);
    for (VertexId v = lo + 1; v < hi; ++v) list.add_edge(v - 1, v);
    add_waxman_edges(list, pts, lo, hi, params.local_alpha, radius * 0.5, 4.0,
                     rng);
    return lo;
  };

  // Level 1: domains around backbone routers.
  std::vector<VertexId> domain_first;
  std::vector<VertexId> domain_size;
  for (VertexId d = 0; d < num_domains; ++d) {
    const VertexId router = d % backbone;
    const VertexId size = domain_pop / num_domains +
                          (d < domain_pop % num_domains ? 1 : 0);
    if (size == 0) continue;
    const VertexId first = place_cluster(size, pts[router], 0.08, router);
    domain_first.push_back(first);
    domain_size.push_back(size);
  }

  // Level 2: subdomains around random nodes of their domain.
  const auto total_domains = static_cast<VertexId>(domain_first.size());
  for (VertexId s = 0; s < num_subs && total_domains > 0; ++s) {
    const VertexId d = s % total_domains;
    const VertexId size =
        sub_pop / num_subs + (s < sub_pop % num_subs ? 1 : 0);
    if (size == 0) continue;
    const VertexId attach =
        domain_first[d] +
        static_cast<VertexId>(rng.next_bounded(domain_size[d]));
    place_cluster(size, pts[attach], 0.02, attach);
  }

  // Rounding may leave a few vertices unplaced; hang them off the backbone.
  while (pts.size() < n) {
    const auto v = static_cast<VertexId>(pts.size());
    const auto attach = static_cast<VertexId>(rng.next_bounded(backbone));
    pts.push_back(pts[attach]);
    list.add_edge(attach, v);
  }

  return GraphBuilder::build(std::move(list));
}

}  // namespace smpst::gen
