// Geometric k-nearest-neighbour graphs.
//
// n points are drawn uniformly at random in the unit square and every vertex
// is connected to its k nearest neighbours (Moret & Shapiro's family from
// their sequential MST study; the paper's AD3 instance is k = 3). A uniform
// bucket grid gives expected O(n k) construction instead of O(n^2).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace smpst::gen {

Graph geometric_knn(VertexId n, VertexId k, std::uint64_t seed);

/// AD3: the "tertiary" geometric graph used by Greiner, Hsu et al.,
/// Krishnamurthy et al., and Goddard et al.
inline Graph ad3(VertexId n, std::uint64_t seed) {
  return geometric_knn(n, 3, seed);
}

}  // namespace smpst::gen
