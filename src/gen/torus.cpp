#include "gen/torus.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst::gen {

Graph torus2d(VertexId rows, VertexId cols) {
  SMPST_CHECK(rows >= 1 && cols >= 1, "torus2d: empty dimensions");
  const auto n = static_cast<VertexId>(rows * cols);
  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(n) * 2);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      const VertexId right = r * cols + (c + 1) % cols;
      const VertexId down = ((r + 1) % rows) * cols + c;
      if (right != v) list.add_edge(v, right);
      if (down != v) list.add_edge(v, down);
    }
  }
  return GraphBuilder::build(std::move(list));
}

Graph torus2d_square(VertexId n) {
  const auto side = static_cast<VertexId>(std::llround(std::sqrt(static_cast<double>(n))));
  SMPST_CHECK(side * side == n, "torus2d_square: n must be a perfect square");
  return torus2d(side, side);
}

}  // namespace smpst::gen
