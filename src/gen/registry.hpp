// Name-keyed generator registry used by the benchmark harness, tests, and
// example CLIs. The names mirror the paper's evaluation families so a bench
// invocation reads like the figure it reproduces, e.g.
//   fig4_torus --family=torus-rowmajor --n=1048576
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace smpst::gen {

struct FamilySpec {
  std::string name;
  std::string description;
};

/// All registered family names with one-line descriptions.
const std::vector<FamilySpec>& families();

/// True if `name` is a registered family.
bool is_family(const std::string& name);

/// Builds an instance of the named family with approximately n vertices.
/// Families (paper evaluation set first):
///   torus-rowmajor  2D torus, row-major labels        (Fig. 4 panel 1)
///   torus-random    2D torus, random labels           (Fig. 4 panel 2)
///   random-nlogn    G(n, m) with m = n*log2(n)        (Fig. 4 panel 3)
///   2d60            2D mesh, 60% edges                (Fig. 4 panel 4)
///   3d40            3D mesh, 40% edges                (Fig. 4 panel 5)
///   ad3             geometric k-NN, k = 3             (Fig. 4 panel 6)
///   geo-flat        flat geographic (Waxman)          (Fig. 4 panel 7)
///   geo-hier        hierarchical geographic           (Fig. 4 panel 8)
///   chain-seq       degenerate chain, sequential ids  (Fig. 4 panel 9)
///   chain-random    degenerate chain, random ids      (Fig. 4 panel 10)
///   random-1.5n     G(n, m) with m = 1.5 n            (Fig. 3)
/// Extensions: rmat, star, binary-tree, ring, geometric-k8.
/// Throws std::invalid_argument for unknown names.
Graph make_family(const std::string& name, VertexId n, std::uint64_t seed);

}  // namespace smpst::gen
