#include "bench_util/runner.hpp"

#include <ostream>

#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "graph/stats.hpp"
#include "model/simulator.hpp"
#include "model/virtual_smp.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

namespace smpst::bench {

PanelConfig panel_from_cli(const Cli& cli, const std::string& default_family,
                           VertexId default_n) {
  PanelConfig cfg;
  cfg.family = cli.get_string("family", default_family);
  cfg.n = static_cast<VertexId>(cli.get_int("n", default_n));
  cfg.threads = cli.get_int_list("threads", cfg.threads);
  cfg.reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  cfg.csv = cli.get_bool("csv", false);
  cfg.run_sv = !cli.get_bool("no-sv", false);
  cfg.sv_locked = cli.get_bool("sv-lock", false);
  cfg.pin_threads = cli.get_bool("pin", false);
  cfg.trace_path = cli.get_string("trace", "");
  return cfg;
}

void run_panel(const PanelConfig& config, std::ostream& os) {
  if (!config.trace_path.empty()) {
    obs::trace::label_current_thread("panel-driver");
    obs::trace::enable();
  }
  const Graph g = gen::make_family(config.family, config.n, config.seed);
  const auto gstats = compute_stats(g);
  const auto machine = model::sun_e4500();

  os << "# family=" << config.family << " n=" << gstats.num_vertices
     << " m=" << gstats.num_edges << " components=" << gstats.num_components
     << " avg_deg=" << fmt_double(gstats.avg_degree)
     << " diam>=" << gstats.diameter_lower_bound << "\n";

  // Sequential baseline (the horizontal "Sequential" line in the plots).
  SpanningForest seq_forest;
  const auto seq = time_repeated([&] { seq_forest = bfs_spanning_tree(g); },
                                 config.reps);
  SMPST_CHECK(validate_spanning_forest(g, seq_forest).ok,
              "sequential baseline produced an invalid forest");
  const double seq_sim = model::simulate_bfs_seconds(
      gstats.num_vertices, gstats.num_edges, machine);
  os << "# sequential-bfs wall=" << fmt_seconds(seq.min_s)
     << " e4500-model=" << fmt_seconds(seq_sim) << "\n";

  std::vector<std::string> headers = {"p",        "bc_wall",   "bc_e4500",
                                      "bc_speedup", "dup_expand", "steals"};
  if (config.run_sv) {
    headers.insert(headers.end(),
                   {"sv_wall", "sv_iters", "sv_e4500", "sv_speedup"});
  }
  Table table(headers);

  for (const std::int64_t pi : config.threads) {
    const auto p = static_cast<std::size_t>(pi);
    ThreadPoolOptions pool_opts;
    pool_opts.pin_threads = config.pin_threads;
    ThreadPool pool(p, pool_opts);

    // Bader-Cong: time uninstrumented runs, then one instrumented run for
    // the cost-model replay and race statistics.
    BaderCongOptions bc;
    bc.seed = config.seed;
    SpanningForest forest;
    const auto bc_time = time_repeated(
        [&] { forest = bader_cong_spanning_tree(g, pool, bc); }, config.reps);
    const auto bc_report = validate_spanning_forest(g, forest);
    SMPST_CHECK(bc_report.ok, bc_report.error.c_str());

    // Race statistics come from a real instrumented multithreaded run; the
    // E4500 column comes from the deterministic virtual-SMP replay, whose
    // load balance reflects p truly concurrent processors (DESIGN.md §5).
    TraversalStats tstats;
    bc.stats = &tstats;
    forest = bader_cong_spanning_tree(g, pool, bc);
    SMPST_CHECK(validate_spanning_forest(g, forest).ok,
                "instrumented run produced an invalid forest");

    model::VirtualRunOptions vopts;
    vopts.processors = p;
    vopts.seed = config.seed;
    const auto vrun = model::virtual_traversal(g, vopts);
    const double bc_sim = vrun.seconds_on(machine);
    std::vector<std::string> row = {
        std::to_string(p),
        fmt_seconds(bc_time.min_s),
        fmt_seconds(bc_sim),
        fmt_double(seq_sim / bc_sim),
        fmt_count(tstats.duplicate_expansions),
        fmt_count(tstats.total_steals()),
    };

    if (config.run_sv) {
      SvOptions sv;
      sv.use_locks = config.sv_locked;
      SvStats sv_stats;
      sv.stats = &sv_stats;
      SpanningForest sv_forest;
      const auto sv_time = time_repeated(
          [&] { sv_forest = sv_spanning_tree(g, pool, sv); }, config.reps);
      const auto sv_report = validate_spanning_forest(g, sv_forest);
      SMPST_CHECK(sv_report.ok, sv_report.error.c_str());
      const double sv_sim = model::simulate_sv_seconds(
          sv_stats, gstats.num_vertices, gstats.num_edges, p, machine);
      row.push_back(fmt_seconds(sv_time.min_s));
      row.push_back(fmt_count(sv_stats.iterations));
      row.push_back(fmt_seconds(sv_sim));
      row.push_back(fmt_double(seq_sim / sv_sim));
    }
    table.add_row(std::move(row));
  }

  if (config.csv) {
    table.print_csv(os);
  } else {
    table.print(os);
  }

  if (!config.trace_path.empty()) {
    std::size_t events = 0;
    if (obs::trace::write_chrome_trace_file(config.trace_path, &events)) {
      os << "# trace: " << events << " events -> " << config.trace_path
         << "\n";
    } else {
      os << "# trace: failed to write " << config.trace_path << "\n";
    }
  }
}

}  // namespace smpst::bench
