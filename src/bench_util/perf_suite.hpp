// Reproducible performance baseline harness (`bench/perf_suite`).
//
// Runs the paper's four algorithm columns — sequential BFS (the baseline the
// paper claims speedup over), Bader–Cong, level-synchronous parallel BFS,
// and Shiloach–Vishkin — over a configurable set of graph families and
// thread counts, reports median-of-k wall times plus speedup versus
// sequential BFS, and serializes everything into a machine-readable,
// schema-versioned `BENCH_smpst.json` so perf claims can be diffed across
// commits (docs/BENCHMARKING.md).
//
// Lives in bench_util (not bench/) so tests can drive the suite in-process
// and so it composes with the rest of the harness: the same `--trace` flag
// as the panel runner and the failpoint spec grammar of the chaos tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "graph/graph.hpp"

namespace smpst::bench {

/// Version of the BENCH_smpst.json layout. Bump on any field rename,
/// removal, or semantic change; additions of new fields do not require a
/// bump (consumers must ignore unknown keys).
/// v2: optional top-level "serving" section (an embedded ext_net_load
/// summary: offered-load sweep, goodput, shed rate, tail latency) so the
/// serving-path baseline can be diffed alongside the algorithm columns.
inline constexpr int kPerfSuiteSchemaVersion = 2;

struct PerfSuiteConfig {
  /// Graph families to measure (names from gen::make_family). The default is
  /// the paper-representative subset covering regular (torus), random,
  /// mesh-like, geographic, and degenerate-chain structure.
  std::vector<std::string> families = {"torus-rowmajor", "random-nlogn",
                                       "2d60", "geo-flat", "chain-seq"};
  VertexId n = 1 << 15;
  std::vector<std::int64_t> threads = {1, 2, 4};
  std::size_t repeats = 5;  ///< samples per timing (median-of-k)
  std::uint64_t seed = 0x5eed;
  bool run_sv = true;  ///< SV is slow on degenerate inputs; can be skipped
  bool run_parallel_bfs = true;
  /// Direction-optimizing parallel BFS column ("parallel_bfs_dir",
  /// BfsDirection::kAuto). The plain "parallel_bfs" column stays kPushOnly so
  /// it keeps measuring the pre-hybrid behaviour and the pair isolates the
  /// push↔pull heuristic's effect.
  bool run_dir = true;
  bool pin_threads = false;  ///< opt-in worker affinity (ThreadPoolOptions)
  /// Interleave the generated CSR arrays across NUMA nodes before measuring.
  /// The generators build single-threaded, so without this every page of a
  /// shared read-only graph sits on the builder's node. No-op on single-node
  /// hosts (this is why the default is on).
  bool numa_interleave = true;

  /// Same semantics as PanelConfig::trace_path: non-empty enables tracing
  /// and writes a Chrome trace_event file when the suite finishes.
  std::string trace_path;

  /// Failpoint spec list ("site=spec;..."), armed for the whole suite run —
  /// lets the chaos options compose with measurement (e.g. measuring the
  /// perf cost of delay-injected steals). Empty = untouched.
  std::string failpoint_spec;

  /// Opt-in out-of-core sweep: write each family's CSR to an SMPSTCSR file
  /// and re-run the sequential BFS column over the blocked backend
  /// (storage/blocked_graph.hpp) at each cache-budget percentage of the CSR
  /// payload, reporting block-cache hit rate and slowdown versus the
  /// in-memory sequential baseline. Off by default: it adds disk I/O to a
  /// timing run, so the resident columns stay untouched unless asked.
  bool storage_sweep = false;
  std::vector<std::int64_t> storage_budget_percents = {100, 50, 10};
  std::size_t storage_block_bytes = 1 << 16;
  /// Directory for the temporary CSR files; empty = the system temp dir.
  std::string storage_dir;
};

/// One timed (algorithm, thread-count) cell.
struct PerfRun {
  std::string algo;  ///< "bader_cong" | "parallel_bfs" | "parallel_bfs_dir"
                     ///< | "sv"
  std::size_t p = 1;
  TimingStats timing;
  double speedup_vs_seq_bfs = 0.0;  ///< seq median / this median

  // Observability column (from one instrumented, untimed run).
  // Bader–Cong only; zero elsewhere.
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t duplicate_expansions = 0;
  std::uint64_t sleep_episodes = 0;
  bool fallback_triggered = false;
  double load_imbalance = 0.0;
  std::uint64_t sv_iterations = 0;  ///< SV only; zero elsewhere
  // parallel_bfs columns only; zero elsewhere. pull_levels stays zero for
  // the kPushOnly column by construction.
  std::uint64_t pull_levels = 0;
  std::uint64_t direction_switches = 0;
};

/// One blocked-backend cell of the storage sweep: sequential BFS with the
/// block cache capped at `budget_fraction` of the CSR payload. Cache
/// counters are cumulative over the repeats, so the hit rate blends the cold
/// first pass with the warmed remainder — at 100% budget it converges
/// towards 1, at small budgets eviction keeps it low on every pass.
struct PerfStorageRun {
  double budget_fraction = 1.0;  ///< of the CSR payload bytes
  std::size_t budget_bytes = 0;
  std::size_t block_bytes = 0;
  TimingStats timing;
  double slowdown_vs_resident = 0.0;  ///< blocked median / resident median
  double hit_rate = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

struct PerfFamilyResult {
  std::string family;
  VertexId n = 0;
  EdgeId m = 0;
  std::uint64_t components = 0;
  TimingStats seq_bfs;  ///< the denominator of every speedup in `runs`
  std::vector<PerfRun> runs;
  std::uint64_t csr_bytes = 0;  ///< on-disk payload; non-zero iff swept
  std::vector<PerfStorageRun> storage;  ///< empty unless storage_sweep
};

struct PerfSuiteResult {
  PerfSuiteConfig config;
  std::size_t host_hardware_threads = 0;  ///< CPU_COUNT of the allowed mask
  std::size_t host_numa_nodes = 0;        ///< nodes among the allowed CPUs
  /// Worker pin attempts that failed across every pool the suite created
  /// (support/cpu.hpp pin semantics). Non-zero means some timing ran
  /// unpinned even though --pin was requested.
  std::uint64_t pin_failures = 0;
  /// True when the CSR arrays were actually mbind-interleaved (multi-node
  /// host, config.numa_interleave, and the kernel accepted).
  bool csr_interleaved = false;
  std::int64_t generated_unix_ms = 0;
  std::vector<PerfFamilyResult> families;

  /// Optional serving-path measurement: the verbatim JSON object written by
  /// `bench/ext_net_load --json` (docs/SERVICE.md). Empty = section omitted.
  /// Embedded raw, not re-parsed — the load generator owns that layout.
  std::string serving_json;
};

/// Reads the suite flags: --families --scale (tiny|small|medium|large, a
/// preset for --n) --n --threads --repeats --seed --no-sv --no-pbfs
/// --no-dir --pin --no-interleave --trace --failpoints --storage
/// --storage-budgets (percent list) --storage-block --storage-dir. `--out`
/// is left to the caller (it names a file, not a measurement).
PerfSuiteConfig perf_suite_config_from_cli(const Cli& cli);

/// Runs every (family, algorithm, p) cell, validating each algorithm's
/// forest once per cell. Progress lines ("# family=... p=...") go to
/// `progress`. Throws on invalid config (unknown family, empty thread list).
PerfSuiteResult run_perf_suite(const PerfSuiteConfig& config,
                               std::ostream& progress);

/// Serializes the result as the BENCH_smpst.json document (schema above;
/// layout documented in docs/BENCHMARKING.md). Always emits finite numbers.
void write_perf_suite_json(const PerfSuiteResult& result, std::ostream& os);

/// write_perf_suite_json to `path`; returns false on I/O failure.
bool write_perf_suite_json_file(const PerfSuiteResult& result,
                                const std::string& path);

}  // namespace smpst::bench
