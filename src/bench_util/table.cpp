#include "bench_util/table.hpp"

#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace smpst::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  SMPST_CHECK(cells.size() == headers_.size(),
              "table row width must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace smpst::bench
