// Timing statistics for the benchmark harness: repeated measurement with
// warmup, reporting min / mean / median / stddev.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace smpst::bench {

struct TimingStats {
  double min_s = 0.0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double stddev_s = 0.0;
  std::size_t repetitions = 0;
};

/// Summarizes raw per-repetition seconds.
TimingStats summarize(std::vector<double> samples);

/// Times `body` `reps` times after `warmup` unrecorded runs.
TimingStats time_repeated(const std::function<void()>& body, std::size_t reps,
                          std::size_t warmup = 1);

}  // namespace smpst::bench
