#include "bench_util/perf_suite.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/parallel_bfs.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "graph/stats.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/csr_file.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/cpu.hpp"
#include "support/failpoint.hpp"
#include "support/topology.hpp"

namespace smpst::bench {

namespace {

/// Wall times can quantize to ~0 on tiny instances; dividing by the clamp
/// instead keeps every published speedup finite and positive.
constexpr double kMinSeconds = 1e-12;

double safe_speedup(double baseline_s, double this_s) {
  return (baseline_s < kMinSeconds ? kMinSeconds : baseline_s) /
         (this_s < kMinSeconds ? kMinSeconds : this_s);
}

VertexId scale_to_n(const std::string& scale) {
  if (scale == "tiny") return 1 << 12;
  if (scale == "small") return 1 << 15;
  if (scale == "medium") return 1 << 17;
  if (scale == "large") return 1 << 20;
  throw std::invalid_argument("unknown --scale '" + scale +
                              "' (tiny|small|medium|large)");
}

/// JSON string escaping for the keys/values we emit (family names, algo
/// names, failpoint specs). Control characters become \u00XX.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Infinity literals; non-finite values (which the suite
/// should never produce) degrade to 0 rather than corrupting the document.
std::string json_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_timing(std::ostream& os, const TimingStats& t,
                  const char* indent) {
  os << "{\n"
     << indent << "  \"median_s\": " << json_double(t.median_s) << ",\n"
     << indent << "  \"min_s\": " << json_double(t.min_s) << ",\n"
     << indent << "  \"mean_s\": " << json_double(t.mean_s) << ",\n"
     << indent << "  \"stddev_s\": " << json_double(t.stddev_s) << ",\n"
     << indent << "  \"repetitions\": " << t.repetitions << "\n"
     << indent << "}";
}

PerfRun measure_bader_cong(const Graph& g, ThreadPool& pool, std::size_t p,
                           const PerfSuiteConfig& config, double seq_median) {
  BaderCongOptions opts;
  opts.seed = config.seed;
  SpanningForest forest;
  PerfRun run;
  run.algo = "bader_cong";
  run.p = p;
  run.timing = time_repeated(
      [&] { forest = bader_cong_spanning_tree(g, pool, opts); },
      config.repeats);
  const auto report = validate_spanning_forest(g, forest);
  SMPST_CHECK(report.ok, report.error.c_str());
  run.speedup_vs_seq_bfs = safe_speedup(seq_median, run.timing.median_s);

  // One extra instrumented run for the observability column (kept out of the
  // timed loop: stats collection is cheap but not free).
  TraversalStats stats;
  opts.stats = &stats;
  forest = bader_cong_spanning_tree(g, pool, opts);
  SMPST_CHECK(validate_spanning_forest(g, forest).ok,
              "instrumented bader_cong run produced an invalid forest");
  run.steals = stats.total_steals();
  for (const auto& t : stats.per_thread) {
    run.steal_attempts += t.steal_attempts;
    run.sleep_episodes += t.sleep_episodes;
  }
  run.duplicate_expansions = stats.duplicate_expansions;
  run.fallback_triggered = stats.fallback_triggered;
  run.load_imbalance = stats.load_imbalance();
  return run;
}

/// Shared by the "parallel_bfs" (kPushOnly: the pre-hybrid behaviour) and
/// "parallel_bfs_dir" (kAuto) columns; the pair isolates the
/// direction-optimizing heuristic's effect. Stats collection is free for
/// this algorithm (counters are maintained unconditionally and copied out
/// once), so the timed runs are also the instrumented ones.
PerfRun measure_parallel_bfs(const Graph& g, ThreadPool& pool, std::size_t p,
                             const PerfSuiteConfig& config, double seq_median,
                             BfsDirection direction, const char* algo_name) {
  ParallelBfsOptions opts;
  opts.direction = direction;
  ParallelBfsStats stats;
  opts.stats = &stats;
  SpanningForest forest;
  PerfRun run;
  run.algo = algo_name;
  run.p = p;
  run.timing = time_repeated(
      [&] { forest = parallel_bfs_spanning_tree(g, pool, opts); },
      config.repeats);
  const auto report = validate_spanning_forest(g, forest);
  SMPST_CHECK(report.ok, report.error.c_str());
  run.speedup_vs_seq_bfs = safe_speedup(seq_median, run.timing.median_s);
  run.pull_levels = stats.pull_levels;
  run.direction_switches = stats.direction_switches;
  return run;
}

PerfRun measure_sv(const Graph& g, ThreadPool& pool, std::size_t p,
                   const PerfSuiteConfig& config, double seq_median) {
  SvOptions opts;
  SvStats stats;
  opts.stats = &stats;
  SpanningForest forest;
  PerfRun run;
  run.algo = "sv";
  run.p = p;
  run.timing = time_repeated(
      [&] { forest = sv_spanning_tree(g, pool, opts); }, config.repeats);
  const auto report = validate_spanning_forest(g, forest);
  SMPST_CHECK(report.ok, report.error.c_str());
  run.speedup_vs_seq_bfs = safe_speedup(seq_median, run.timing.median_s);
  run.sv_iterations = stats.iterations;
  return run;
}

/// The blocked-backend sweep for one family: serialize the CSR once, then
/// time sequential BFS through the block cache at each budget percentage.
/// Sequential BFS is the purest cache workload of the columns — one thread
/// streaming adjacency in vertex order — so its slowdown isolates the
/// storage layer from scheduling effects.
void run_storage_sweep(const Graph& g, PerfFamilyResult& fam,
                       const PerfSuiteConfig& config, std::ostream& progress) {
  namespace fs = std::filesystem;
  const fs::path dir = config.storage_dir.empty()
                           ? fs::temp_directory_path()
                           : fs::path(config.storage_dir);
  const fs::path file = dir / ("smpst_perf_" + fam.family + ".csr");
  storage::write_csr_file(g, file.string());
  const auto header = storage::read_csr_header(file.string());
  fam.csr_bytes = header.payload_bytes();

  for (const std::int64_t pct : config.storage_budget_percents) {
    SMPST_CHECK(pct >= 1 && pct <= 100,
                "perf_suite: --storage-budgets entries must be in [1, 100]");
    storage::BlockCacheOptions copts;
    copts.block_bytes = config.storage_block_bytes;
    copts.budget_bytes = std::max<std::size_t>(
        copts.block_bytes,
        static_cast<std::size_t>(fam.csr_bytes *
                                 static_cast<std::uint64_t>(pct) / 100));
    const storage::BlockedGraph bg(file.string(), copts);

    PerfStorageRun run;
    run.budget_fraction = static_cast<double>(pct) / 100.0;
    run.budget_bytes = copts.budget_bytes;
    run.block_bytes = copts.block_bytes;
    SpanningForest forest;
    run.timing = time_repeated([&] { forest = bfs_spanning_tree(bg); },
                               config.repeats);
    const auto report = validate_spanning_forest(bg, forest);
    SMPST_CHECK(report.ok, report.error.c_str());
    run.slowdown_vs_resident =
        safe_speedup(run.timing.median_s, fam.seq_bfs.median_s);
    const auto cstats = bg.cache_stats();
    run.hits = cstats.hits;
    run.misses = cstats.misses;
    run.evictions = cstats.evictions;
    run.hit_rate = cstats.hit_rate();
    progress << "#   storage budget=" << pct
             << "% hit_rate=" << json_double(run.hit_rate)
             << " slowdown=" << json_double(run.slowdown_vs_resident) << "\n";
    fam.storage.push_back(run);
  }
  std::error_code ec;
  fs::remove(file, ec);  // best-effort: a stale temp file is not a failure
}

}  // namespace

PerfSuiteConfig perf_suite_config_from_cli(const Cli& cli) {
  PerfSuiteConfig cfg;

  const std::string families = cli.get_string("families", "");
  if (!families.empty()) {
    cfg.families.clear();
    std::size_t start = 0;
    while (start <= families.size()) {
      const std::size_t comma = families.find(',', start);
      const std::size_t end = comma == std::string::npos ? families.size()
                                                         : comma;
      if (end > start) {
        cfg.families.push_back(families.substr(start, end - start));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  cfg.n = scale_to_n(cli.get_string("scale", "small"));
  cfg.n = static_cast<VertexId>(cli.get_int("n", cfg.n));
  cfg.threads = cli.get_int_list("threads", cfg.threads);
  cfg.repeats = static_cast<std::size_t>(cli.get_int("repeats", 5));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  cfg.run_sv = !cli.get_bool("no-sv", false);
  cfg.run_parallel_bfs = !cli.get_bool("no-pbfs", false);
  cfg.run_dir = !cli.get_bool("no-dir", false);
  cfg.pin_threads = cli.get_bool("pin", false);
  cfg.numa_interleave = !cli.get_bool("no-interleave", false);
  cfg.trace_path = cli.get_string("trace", "");
  cfg.failpoint_spec = cli.get_string("failpoints", "");
  cfg.storage_sweep = cli.get_bool("storage", false);
  cfg.storage_budget_percents =
      cli.get_int_list("storage-budgets", cfg.storage_budget_percents);
  cfg.storage_block_bytes = static_cast<std::size_t>(cli.get_int(
      "storage-block", static_cast<std::int64_t>(cfg.storage_block_bytes)));
  cfg.storage_dir = cli.get_string("storage-dir", "");
  return cfg;
}

PerfSuiteResult run_perf_suite(const PerfSuiteConfig& config,
                               std::ostream& progress) {
  SMPST_CHECK(!config.families.empty(), "perf_suite: no families given");
  SMPST_CHECK(!config.threads.empty(), "perf_suite: no thread counts given");
  SMPST_CHECK(config.repeats >= 1, "perf_suite: repeats must be >= 1");
  for (const auto& family : config.families) {
    if (!gen::is_family(family)) {
      throw std::invalid_argument("perf_suite: unknown family '" + family +
                                  "'");
    }
  }

  if (!config.trace_path.empty()) {
    obs::trace::label_current_thread("perf-suite-driver");
    obs::trace::enable();
  }
  if (!config.failpoint_spec.empty()) {
    fail::enable_from_spec_list(config.failpoint_spec);
  }

  PerfSuiteResult result;
  result.config = config;
  result.host_hardware_threads = hardware_threads();
  const CpuTopology topo = CpuTopology::discover();
  result.host_numa_nodes = topo.num_nodes;
  result.generated_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  for (const auto& family : config.families) {
    PerfFamilyResult fam;
    fam.family = family;
    const Graph g = gen::make_family(family, config.n, config.seed);
    if (config.numa_interleave && topo.num_nodes > 1) {
      // The generator built the CSR single-threaded, so every page sits on
      // the builder's node; spread the shared read-only arrays before any
      // timing touches them. Both arrays must succeed to claim interleaved.
      const bool ok =
          interleave_memory(g.offsets().data(),
                            g.offsets().size() * sizeof(EdgeId)) &&
          interleave_memory(g.targets().data(),
                            g.targets().size() * sizeof(VertexId));
      result.csr_interleaved = ok;
      if (!ok) progress << "# numa: CSR interleave refused by the kernel\n";
    }
    const auto gstats = compute_stats(g);
    fam.n = g.num_vertices();
    fam.m = g.num_edges();
    fam.components = gstats.num_components;

    SpanningForest seq_forest;
    fam.seq_bfs = time_repeated(
        [&] { seq_forest = bfs_spanning_tree(g); }, config.repeats);
    SMPST_CHECK(validate_spanning_forest(g, seq_forest).ok,
                "sequential baseline produced an invalid forest");
    progress << "# family=" << family << " n=" << fam.n << " m=" << fam.m
             << " seq_bfs_median=" << json_double(fam.seq_bfs.median_s)
             << "s\n";

    for (const std::int64_t pi : config.threads) {
      const auto p = static_cast<std::size_t>(pi);
      SMPST_CHECK(p >= 1, "perf_suite: thread counts must be >= 1");
      ThreadPoolOptions pool_opts;
      pool_opts.pin_threads = config.pin_threads;
      ThreadPool pool(p, pool_opts);

      fam.runs.push_back(
          measure_bader_cong(g, pool, p, config, fam.seq_bfs.median_s));
      progress << "#   p=" << p << " bader_cong median="
               << json_double(fam.runs.back().timing.median_s) << "s speedup="
               << json_double(fam.runs.back().speedup_vs_seq_bfs) << "\n";

      if (config.run_parallel_bfs) {
        fam.runs.push_back(measure_parallel_bfs(g, pool, p, config,
                                                fam.seq_bfs.median_s,
                                                BfsDirection::kPushOnly,
                                                "parallel_bfs"));
      }
      if (config.run_dir) {
        fam.runs.push_back(measure_parallel_bfs(g, pool, p, config,
                                                fam.seq_bfs.median_s,
                                                BfsDirection::kAuto,
                                                "parallel_bfs_dir"));
        progress << "#   p=" << p << " parallel_bfs_dir median="
                 << json_double(fam.runs.back().timing.median_s)
                 << "s pull_levels=" << fam.runs.back().pull_levels << "\n";
      }
      if (config.run_sv) {
        fam.runs.push_back(
            measure_sv(g, pool, p, config, fam.seq_bfs.median_s));
      }
      // All regions have joined by now, so the count is exact for this pool.
      result.pin_failures += pool.pin_failures();
    }
    if (config.storage_sweep) {
      run_storage_sweep(g, fam, config, progress);
    }
    result.families.push_back(std::move(fam));
  }

  if (!config.trace_path.empty()) {
    std::size_t events = 0;
    if (obs::trace::write_chrome_trace_file(config.trace_path, &events)) {
      progress << "# trace: " << events << " events -> " << config.trace_path
               << "\n";
    } else {
      progress << "# trace: failed to write " << config.trace_path << "\n";
    }
  }
  if (!config.failpoint_spec.empty()) {
    fail::disable_all();  // leave the process clean for in-process callers
  }
  return result;
}

void write_perf_suite_json(const PerfSuiteResult& result, std::ostream& os) {
  const auto& cfg = result.config;
  os << "{\n"
     << "  \"schema_version\": " << kPerfSuiteSchemaVersion << ",\n"
     << "  \"benchmark\": \"smpst.perf_suite\",\n"
     << "  \"generated_unix_ms\": " << result.generated_unix_ms << ",\n"
     << "  \"host\": {\n"
     << "    \"hardware_threads\": " << result.host_hardware_threads << ",\n"
     << "    \"numa_nodes\": " << result.host_numa_nodes << ",\n"
     << "    \"pinned\": " << (cfg.pin_threads ? "true" : "false") << ",\n"
     << "    \"pin_failures\": " << result.pin_failures << ",\n"
     << "    \"csr_interleaved\": "
     << (result.csr_interleaved ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"config\": {\n"
     << "    \"n\": " << cfg.n << ",\n"
     << "    \"repeats\": " << cfg.repeats << ",\n"
     << "    \"seed\": " << cfg.seed << ",\n"
     << "    \"failpoints\": \"" << json_escape(cfg.failpoint_spec) << "\",\n"
     << "    \"threads\": [";
  for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
    os << (i == 0 ? "" : ", ") << cfg.threads[i];
  }
  os << "],\n"
     << "    \"families\": [";
  for (std::size_t i = 0; i < cfg.families.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(cfg.families[i]) << '"';
  }
  os << "]\n"
     << "  },\n"
     << "  \"families\": [\n";

  for (std::size_t fi = 0; fi < result.families.size(); ++fi) {
    const auto& fam = result.families[fi];
    os << "    {\n"
       << "      \"family\": \"" << json_escape(fam.family) << "\",\n"
       << "      \"n\": " << fam.n << ",\n"
       << "      \"m\": " << fam.m << ",\n"
       << "      \"components\": " << fam.components << ",\n"
       << "      \"seq_bfs\": ";
    write_timing(os, fam.seq_bfs, "      ");
    os << ",\n"
       << "      \"runs\": [\n";
    for (std::size_t ri = 0; ri < fam.runs.size(); ++ri) {
      const auto& run = fam.runs[ri];
      os << "        {\n"
         << "          \"algo\": \"" << json_escape(run.algo) << "\",\n"
         << "          \"p\": " << run.p << ",\n"
         << "          \"timing\": ";
      write_timing(os, run.timing, "          ");
      os << ",\n"
         << "          \"speedup_vs_seq_bfs\": "
         << json_double(run.speedup_vs_seq_bfs) << ",\n"
         << "          \"obs\": {\n"
         << "            \"steals\": " << run.steals << ",\n"
         << "            \"steal_attempts\": " << run.steal_attempts << ",\n"
         << "            \"duplicate_expansions\": "
         << run.duplicate_expansions << ",\n"
         << "            \"sleep_episodes\": " << run.sleep_episodes << ",\n"
         << "            \"fallback_triggered\": "
         << (run.fallback_triggered ? "true" : "false") << ",\n"
         << "            \"load_imbalance\": "
         << json_double(run.load_imbalance) << ",\n"
         << "            \"sv_iterations\": " << run.sv_iterations << ",\n"
         << "            \"pull_levels\": " << run.pull_levels << ",\n"
         << "            \"direction_switches\": " << run.direction_switches
         << "\n"
         << "          }\n"
         << "        }" << (ri + 1 < fam.runs.size() ? "," : "") << "\n";
    }
    os << "      ]";
    if (!fam.storage.empty()) {
      // Additive section (schema stays v2): only emitted when the sweep ran,
      // so the resident-only document is byte-identical to before.
      os << ",\n"
         << "      \"csr_bytes\": " << fam.csr_bytes << ",\n"
         << "      \"storage\": [\n";
      for (std::size_t si = 0; si < fam.storage.size(); ++si) {
        const auto& srun = fam.storage[si];
        os << "        {\n"
           << "          \"budget_fraction\": "
           << json_double(srun.budget_fraction) << ",\n"
           << "          \"budget_bytes\": " << srun.budget_bytes << ",\n"
           << "          \"block_bytes\": " << srun.block_bytes << ",\n"
           << "          \"timing\": ";
        write_timing(os, srun.timing, "          ");
        os << ",\n"
           << "          \"slowdown_vs_resident\": "
           << json_double(srun.slowdown_vs_resident) << ",\n"
           << "          \"hit_rate\": " << json_double(srun.hit_rate)
           << ",\n"
           << "          \"hits\": " << srun.hits << ",\n"
           << "          \"misses\": " << srun.misses << ",\n"
           << "          \"evictions\": " << srun.evictions << "\n"
           << "        }" << (si + 1 < fam.storage.size() ? "," : "") << "\n";
      }
      os << "      ]";
    }
    os << "\n    }" << (fi + 1 < result.families.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!result.serving_json.empty()) {
    // Embed the ext_net_load summary verbatim; trim whitespace so the
    // document stays a single well-formed object.
    std::string serving = result.serving_json;
    while (!serving.empty() &&
           (serving.back() == '\n' || serving.back() == '\r' ||
            serving.back() == ' ')) {
      serving.pop_back();
    }
    os << ",\n  \"serving\": " << serving;
  }
  os << "\n}\n";
}

bool write_perf_suite_json_file(const PerfSuiteResult& result,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_perf_suite_json(result, out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace smpst::bench
