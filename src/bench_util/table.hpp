// Aligned-column table writer used by every benchmark binary, with optional
// CSV emission for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace smpst::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_seconds(double seconds);
std::string fmt_double(double value, int precision = 2);
std::string fmt_count(std::uint64_t value);

}  // namespace smpst::bench
