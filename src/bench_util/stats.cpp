#include "bench_util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace smpst::bench {

TimingStats summarize(std::vector<double> samples) {
  TimingStats s;
  s.repetitions = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min_s = samples.front();
  s.median_s = samples[samples.size() / 2];
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean_s = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean_s) * (v - s.mean_s);
  s.stddev_s = samples.size() > 1
                   ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                   : 0.0;
  return s;
}

TimingStats time_repeated(const std::function<void()>& body, std::size_t reps,
                          std::size_t warmup) {
  SMPST_CHECK(reps >= 1, "time_repeated: need at least one repetition");
  for (std::size_t w = 0; w < warmup; ++w) body();
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    body();
    samples.push_back(timer.elapsed_seconds());
  }
  return summarize(std::move(samples));
}

}  // namespace smpst::bench
