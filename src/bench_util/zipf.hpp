// Zipfian item popularity for load generators.
//
// YCSB-style rejection-free zipfian sampler over [0, n): item 0 is the most
// popular, with P(k) proportional to 1/(k+1)^theta. theta in (0, 1) — 0.99
// is the YCSB default and a reasonable stand-in for real content popularity;
// theta -> 0 approaches uniform. The zeta normalization constant is computed
// once in the constructor (O(n)), so sampling is O(1) and allocation-free.
//
// Deterministic given the caller's Xoshiro256 stream, like every randomized
// component in this repo (support/prng.hpp).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "support/prng.hpp"

namespace smpst::bench {

class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    if (n == 0) throw std::invalid_argument("zipf: n must be >= 1");
    if (!(theta > 0.0 && theta < 1.0)) {
      throw std::invalid_argument("zipf: theta must be in (0, 1)");
    }
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Samples one item rank in [0, n); rank 0 is the hottest.
  [[nodiscard]] std::uint64_t next(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return n_ > 1 ? 1 : 0;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) noexcept {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace smpst::bench
