// Minimal --flag=value command-line parser for the benchmark binaries and
// example CLIs (no external dependency; flags unknown to the binary are an
// error so typos do not silently fall back to defaults).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smpst::bench {

class Cli {
 public:
  /// Parses "--name=value" and bare "--name" (value "1") arguments.
  /// Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --threads=1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Errors out (throws) if any parsed flag was never queried; call after all
  /// get_* calls to reject typos.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace smpst::bench
