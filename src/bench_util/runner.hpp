// Shared experiment driver for the Fig. 3 / Fig. 4 reproduction binaries.
//
// One "panel" = one graph instance swept over processor counts, reporting for
// each p the measured wall time of the Bader–Cong traversal and of
// Shiloach–Vishkin next to the sequential BFS baseline, plus the Sun-E4500
// cost-model simulation of the same run (DESIGN.md §5: wall-clock speedup is
// physically unobservable on this single-core container, so the simulated
// columns carry the figure-shape comparison while the measured columns prove
// the implementations are real and correct).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench_util/cli.hpp"
#include "graph/graph.hpp"

namespace smpst::bench {

struct PanelConfig {
  std::string family;
  VertexId n = 1 << 17;
  std::vector<std::int64_t> threads = {1, 2, 4, 8};
  std::size_t reps = 3;
  std::uint64_t seed = 0x5eed;
  bool csv = false;
  bool run_sv = true;       ///< SV is slow on big instances; can be skipped
  bool sv_locked = false;   ///< also run the lock-grafting variant
  bool pin_threads = false; ///< opt-in worker affinity: steadier scaling
                            ///< curves on multi-core hosts (BENCHMARKING.md)

  /// When non-empty, enable per-phase tracing for the panel and write a
  /// Chrome trace_event file here when the panel finishes
  /// (docs/OBSERVABILITY.md). Empty = tracing untouched.
  std::string trace_path;
};

/// Reads the standard panel flags: --family --n --threads --reps --seed
/// --csv --no-sv --sv-lock --pin --trace.
PanelConfig panel_from_cli(const Cli& cli, const std::string& default_family,
                           VertexId default_n = 1 << 17);

/// Runs the full panel and writes the table to `os`.
void run_panel(const PanelConfig& config, std::ostream& os);

}  // namespace smpst::bench
