#include "bench_util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace smpst::bench {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag[=value], got: " + arg);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::stoll(token));
  }
  return out;
}

void Cli::reject_unknown() const {
  for (const auto& [name, _] : values_) {
    if (queried_.find(name) == queried_.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
  }
}

}  // namespace smpst::bench
