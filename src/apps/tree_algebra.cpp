#include "apps/tree_algebra.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace smpst::apps {

RootedForest::RootedForest(const SpanningForest& forest)
    : parent_(forest.parent) {
  const VertexId n = num_vertices();
  depth_.assign(n, 0);
  subtree_size_.assign(n, 1);
  preorder_.assign(n, 0);
  tree_id_.assign(n, kInvalidVertex);

  // Children CSR via counting sort over parents.
  child_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (parent_[v] == v) {
      roots_.push_back(v);
    } else {
      ++child_offsets_[parent_[v] + 1];
    }
  }
  for (std::size_t i = 1; i < child_offsets_.size(); ++i) {
    child_offsets_[i] += child_offsets_[i - 1];
  }
  children_.resize(n - roots_.size());
  {
    std::vector<EdgeId> cursor(child_offsets_.begin(),
                               child_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (parent_[v] != v) children_[cursor[parent_[v]]++] = v;
    }
  }

  // Iterative DFS per tree: preorder, depth, Euler tour; postorder pass for
  // subtree sizes.
  euler_.reserve(n == 0 ? 0 : 2 * static_cast<std::size_t>(n));
  VertexId next_pre = 0;
  std::vector<std::pair<VertexId, EdgeId>> stack;  // (vertex, next child idx)
  for (VertexId root : roots_) {
    stack.push_back({root, child_offsets_[root]});
    tree_id_[root] = root;
    depth_[root] = 0;
    preorder_[root] = next_pre++;
    euler_.push_back(root);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < child_offsets_[v + 1]) {
        const VertexId c = children_[next++];
        tree_id_[c] = root;
        depth_[c] = depth_[v] + 1;
        preorder_[c] = next_pre++;
        euler_.push_back(c);
        stack.push_back({c, child_offsets_[c]});
      } else {
        const VertexId done = v;
        stack.pop_back();
        if (!stack.empty()) {
          subtree_size_[stack.back().first] += subtree_size_[done];
          euler_.push_back(stack.back().first);
        }
      }
    }
  }
  SMPST_CHECK(next_pre == n, "rooted forest DFS did not cover every vertex "
                             "(is the parent array cyclic?)");

  // Binary lifting table.
  VertexId max_depth = 0;
  for (VertexId d : depth_) max_depth = std::max(max_depth, d);
  std::size_t levels = 1;
  while ((VertexId{1} << levels) <= max_depth) ++levels;
  up_.assign(levels, std::vector<VertexId>(n));
  for (VertexId v = 0; v < n; ++v) up_[0][v] = parent_[v];
  for (std::size_t k = 1; k < levels; ++k) {
    for (VertexId v = 0; v < n; ++v) up_[k][v] = up_[k - 1][up_[k - 1][v]];
  }
}

bool RootedForest::is_ancestor(VertexId ancestor, VertexId v) const {
  return preorder_[ancestor] <= preorder_[v] &&
         preorder_[v] < preorder_[ancestor] + subtree_size_[ancestor] &&
         tree_id_[ancestor] == tree_id_[v];
}

VertexId RootedForest::lca(VertexId u, VertexId v) const {
  if (tree_id_[u] != tree_id_[v]) return kInvalidVertex;
  if (is_ancestor(u, v)) return u;
  if (is_ancestor(v, u)) return v;
  // Lift u just below the common ancestor.
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (!is_ancestor(up_[k][u], v)) u = up_[k][u];
  }
  return up_[0][u];
}

VertexId RootedForest::path_length(VertexId u, VertexId v) const {
  const VertexId a = lca(u, v);
  SMPST_CHECK(a != kInvalidVertex, "path_length: vertices in different trees");
  return depth_[u] + depth_[v] - 2 * depth_[a];
}

}  // namespace smpst::apps
