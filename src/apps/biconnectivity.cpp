#include "apps/biconnectivity.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/assert.hpp"

namespace smpst::apps {

namespace {

constexpr VertexId kUnvisited = kInvalidVertex;

/// Index of the arc w -> v in the CSR (the twin of an arc v -> w).
EdgeId twin_arc(const Graph& g, VertexId w, VertexId v) {
  const auto nbrs = g.neighbors(w);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  SMPST_ASSERT(it != nbrs.end() && *it == v);
  return g.offsets()[w] + static_cast<EdgeId>(it - nbrs.begin());
}

struct Frame {
  VertexId v;
  EdgeId next_arc;      ///< next CSR arc of v to examine
  VertexId parent;      ///< DFS parent (kInvalidVertex at roots)
  EdgeId entry_arc;     ///< arc that discovered v (kNoArc at roots)
  bool parent_skipped;  ///< the single arc back to the parent was consumed
  VertexId tree_children = 0;
};

constexpr EdgeId kNoArc = std::numeric_limits<EdgeId>::max();

}  // namespace

BiconnectivityResult biconnectivity(const Graph& g) {
  const VertexId n = g.num_vertices();
  BiconnectivityResult result;
  result.is_articulation.assign(n, false);
  result.two_edge_component.assign(n, kInvalidVertex);
  result.bcc_of_arc.assign(g.num_arcs(), kInvalidVertex);
  if (n == 0) return result;

  std::vector<VertexId> disc(n, kUnvisited);
  std::vector<VertexId> low(n, 0);
  VertexId timer = 0;

  std::vector<Frame> stack;
  std::vector<EdgeId> edge_stack;  // arcs of the current biconnected chunk

  // Arc source lookup: sources[a] = vertex owning CSR slot a. Built once so
  // twin labeling at BCC extraction is O(log deg).
  std::vector<VertexId> arc_source(g.num_arcs());
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId a = g.offsets()[v]; a < g.offsets()[v + 1]; ++a) {
      arc_source[a] = v;
    }
  }

  auto pop_bcc_until = [&](EdgeId entry_arc) {
    const VertexId id = result.bcc_count++;
    for (;;) {
      SMPST_ASSERT(!edge_stack.empty());
      const EdgeId a = edge_stack.back();
      edge_stack.pop_back();
      const VertexId src = arc_source[a];
      const VertexId dst = g.targets()[a];
      result.bcc_of_arc[a] = id;
      result.bcc_of_arc[twin_arc(g, dst, src)] = id;
      if (a == entry_arc) break;
    }
  };

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, g.offsets()[root], kInvalidVertex, kNoArc, false});

    while (!stack.empty()) {
      Frame& top = stack.back();
      const VertexId v = top.v;
      bool descended = false;

      while (top.next_arc < g.offsets()[v + 1]) {
        const EdgeId a = top.next_arc++;
        const VertexId w = g.targets()[a];
        if (w == top.parent && !top.parent_skipped) {
          top.parent_skipped = true;  // simple graph: exactly one parent arc
          continue;
        }
        if (disc[w] == kUnvisited) {
          disc[w] = low[w] = timer++;
          ++top.tree_children;
          edge_stack.push_back(a);
          stack.push_back({w, g.offsets()[w], v, a, false});
          descended = true;
          break;
        }
        if (disc[w] < disc[v]) {
          // Back edge to an ancestor.
          edge_stack.push_back(a);
          low[v] = std::min(low[v], disc[w]);
        }
        // disc[w] > disc[v]: the other direction of an edge already on the
        // stack; nothing to do.
      }
      if (descended) continue;

      // v is finished: propagate lowpoint and classify.
      const Frame finished = stack.back();
      stack.pop_back();
      if (!stack.empty()) {
        Frame& par = stack.back();
        low[par.v] = std::min(low[par.v], low[v]);
        if (low[v] > disc[par.v]) {
          const VertexId a = std::min(par.v, v);
          const VertexId b = std::max(par.v, v);
          result.bridges.push_back(Edge{a, b});
        }
        if (low[v] >= disc[par.v]) {
          // par.v separates v's subtree: one biconnected component ends at
          // the tree arc that discovered v.
          pop_bcc_until(finished.entry_arc);
          if (par.parent != kInvalidVertex) {
            result.is_articulation[par.v] = true;
          }
        }
      }
      if (finished.parent == kInvalidVertex) {
        // DFS root: articulation iff it has two or more tree children.
        result.is_articulation[v] = finished.tree_children >= 2;
        SMPST_ASSERT(edge_stack.empty());
      }
    }
  }

  std::sort(result.bridges.begin(), result.bridges.end());

  // 2-edge-connected components: connectivity after deleting the bridges.
  std::unordered_set<std::uint64_t> bridge_keys;
  bridge_keys.reserve(result.bridges.size() * 2);
  for (const Edge& e : result.bridges) {
    bridge_keys.insert((static_cast<std::uint64_t>(e.u) << 32) | e.v);
  }
  auto is_bridge = [&](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return bridge_keys.count((static_cast<std::uint64_t>(a) << 32) | b) > 0;
  };
  std::vector<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (result.two_edge_component[s] != kInvalidVertex) continue;
    const VertexId id = result.two_edge_component_count++;
    queue.assign(1, s);
    result.two_edge_component[s] = id;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      for (VertexId w : g.neighbors(v)) {
        if (result.two_edge_component[w] == kInvalidVertex &&
            !is_bridge(v, w)) {
          result.two_edge_component[w] = id;
          queue.push_back(w);
        }
      }
    }
  }
  return result;
}

std::vector<Edge> find_bridges(const Graph& g) {
  return biconnectivity(g).bridges;
}

std::vector<VertexId> find_articulation_points(const Graph& g) {
  const auto result = biconnectivity(g);
  std::vector<VertexId> points;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (result.is_articulation[v]) points.push_back(v);
  }
  return points;
}

}  // namespace smpst::apps
