// Rooted-tree algebra over spanning forests — the substrate the paper's
// intro motivates: spanning trees as the building block for downstream graph
// algorithms (biconnected components, ear decomposition, planarity testing).
//
// RootedForest materializes a SpanningForest's children lists (CSR), Euler
// tour, preorder numbering, subtree sizes, depths, and binary-lifting LCA —
// everything the applications in this directory need.
#pragma once

#include <span>
#include <vector>

#include "core/spanning_forest.hpp"
#include "graph/types.hpp"

namespace smpst::apps {

class RootedForest {
 public:
  /// Materializes the forest; O(n log n) time and space (the log factor is
  /// the LCA lifting table).
  explicit RootedForest(const SpanningForest& forest);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(parent_.size());
  }
  [[nodiscard]] const std::vector<VertexId>& roots() const noexcept {
    return roots_;
  }

  [[nodiscard]] VertexId parent(VertexId v) const { return parent_[v]; }
  [[nodiscard]] VertexId depth(VertexId v) const { return depth_[v]; }
  [[nodiscard]] VertexId subtree_size(VertexId v) const {
    return subtree_size_[v];
  }

  /// Children of v, in ascending vertex order.
  [[nodiscard]] std::span<const VertexId> children(VertexId v) const {
    return {children_.data() + child_offsets_[v],
            children_.data() + child_offsets_[v + 1]};
  }

  /// Preorder (DFS discovery) index of v within the whole forest; vertices
  /// of one subtree occupy the contiguous range
  /// [preorder(v), preorder(v) + subtree_size(v)).
  [[nodiscard]] VertexId preorder(VertexId v) const { return preorder_[v]; }

  /// True if `ancestor` lies on the root path of v (including v itself).
  [[nodiscard]] bool is_ancestor(VertexId ancestor, VertexId v) const;

  /// Lowest common ancestor; u and v must be in the same tree
  /// (kInvalidVertex is returned otherwise).
  [[nodiscard]] VertexId lca(VertexId u, VertexId v) const;

  /// Euler tour of the forest: each tree contributes its vertices in
  /// enter/leave order (2 * size - 1 entries per tree, concatenated).
  [[nodiscard]] const std::vector<VertexId>& euler_tour() const noexcept {
    return euler_;
  }

  /// Number of tree edges on the u..v path (same tree required).
  [[nodiscard]] VertexId path_length(VertexId u, VertexId v) const;

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> roots_;
  std::vector<EdgeId> child_offsets_;
  std::vector<VertexId> children_;
  std::vector<VertexId> depth_;
  std::vector<VertexId> subtree_size_;
  std::vector<VertexId> preorder_;
  std::vector<VertexId> euler_;
  std::vector<VertexId> tree_id_;
  // up_[k][v] = 2^k-th ancestor of v (root maps to itself).
  std::vector<std::vector<VertexId>> up_;
};

}  // namespace smpst::apps
