// Bridges, articulation points, and 2-edge-/biconnected components — the
// downstream algorithms the paper names as consumers of spanning trees
// ("finding a spanning tree of a graph is an important building block for
// many graph algorithms, for example, biconnected components and ear
// decomposition").
//
// The implementation is the classic DFS lowpoint method (iterative, so
// million-vertex chains are safe). The spanning tree connection is explicit
// in ear decomposition (ear_decomposition.hpp), which consumes any spanning
// forest produced by this library.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace smpst::apps {

struct BiconnectivityResult {
  /// Bridge edges (canonical u < v): removing one disconnects its endpoints.
  std::vector<Edge> bridges;

  /// True for vertices whose removal increases the component count.
  std::vector<bool> is_articulation;

  /// 2-edge-connected component label per vertex (dense, [0, count)):
  /// vertices connected after deleting all bridges.
  std::vector<VertexId> two_edge_component;
  VertexId two_edge_component_count = 0;

  /// Biconnected component id per *directed arc position* of the CSR (same
  /// indexing as Graph::targets()); arcs of the same undirected edge share
  /// the id. kInvalidVertex for nothing (never produced for real edges).
  std::vector<VertexId> bcc_of_arc;
  VertexId bcc_count = 0;
};

/// Full biconnectivity analysis of g. O(n + m).
BiconnectivityResult biconnectivity(const Graph& g);

/// Convenience: just the bridges.
std::vector<Edge> find_bridges(const Graph& g);

/// Convenience: just the articulation points (as vertex ids).
std::vector<VertexId> find_articulation_points(const Graph& g);

}  // namespace smpst::apps
