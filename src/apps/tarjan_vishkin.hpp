// Tarjan–Vishkin-style parallel biconnected components.
//
// The classic demonstration of the paper's thesis that a spanning tree is
// the building block for parallel graph algorithms: unlike the sequential
// lowpoint method (biconnectivity.hpp), which is tied to DFS — "inherently
// sequential" per Reif, as the paper notes — Tarjan & Vishkin (1985) reduce
// biconnectivity to connectivity over an auxiliary graph built from ANY
// rooted spanning tree:
//
//   * per-vertex low/high: the extreme preorder numbers reachable from the
//     vertex's subtree through one non-tree edge,
//   * auxiliary graph on the tree edges (keyed by child endpoint):
//       Rule A: a non-tree edge {u, v} with u, v unrelated in the tree joins
//               tree edges e_u and e_v;
//       Rule B: a tree edge e_v joins its parent edge e_{p(v)} iff some
//               non-tree edge escapes p(v)'s subtree from inside v's
//               (low(v) < pre(p(v)) or high(v) >= pre(p(v)) + size(p(v))).
//   * connected components of the auxiliary graph == biconnected components.
//
// Every ingredient is provided by this library: the tree comes from any
// spanning tree algorithm (including the paper's), the tree functionals from
// RootedForest, and the connectivity step runs on the parallel SV engine.
#pragma once

#include <vector>

#include "cc/connected_components.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::apps {

struct ParallelBccResult {
  /// Canonical edges of g (u < v, sorted), the labelling's index space.
  std::vector<Edge> edges;

  /// Dense biconnected-component label per canonical edge.
  std::vector<VertexId> bcc_of_edge;
  VertexId bcc_count = 0;

  /// Bridges fall out for free: BCCs containing exactly one edge.
  [[nodiscard]] std::vector<Edge> bridges() const;
};

/// Computes biconnected components from any valid spanning forest of g.
/// The connectivity step uses the parallel Shiloach–Vishkin engine with
/// `cc_options` threads.
ParallelBccResult tarjan_vishkin_bcc(const Graph& g,
                                     const SpanningForest& forest,
                                     const cc::ParallelCcOptions& cc_options = {});

}  // namespace smpst::apps
