#include "apps/ear_decomposition.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace smpst::apps {

namespace {

/// Skip-list disjoint set over the tree: find(v) returns the deepest vertex
/// on v's root path whose parent edge is still unlabelled (or an ancestor at
/// or above the stopping depth). Labelling an edge splices its child out, so
/// each tree edge is visited exactly once across all ears.
class AncestorJumper {
 public:
  explicit AncestorJumper(VertexId n) : jump_(n) {
    std::iota(jump_.begin(), jump_.end(), VertexId{0});
  }

  VertexId find(VertexId v) {
    while (jump_[v] != v) {
      jump_[v] = jump_[jump_[v]];
      v = jump_[v];
    }
    return v;
  }

  /// Marks v's parent edge consumed: future finds skip to `parent`.
  void consume(VertexId v, VertexId parent) { jump_[v] = parent; }

 private:
  std::vector<VertexId> jump_;
};

}  // namespace

EarDecomposition ear_decomposition(const Graph& g,
                                   const SpanningForest& forest) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(forest.parent.size() == n,
              "ear_decomposition: forest does not match graph");
  const RootedForest rf(forest);

  EarDecomposition result;
  result.ear_of_tree_edge.assign(n, kInvalidVertex);

  // Non-tree edges with their LCA depth.
  struct Seed {
    Edge e;
    VertexId lca;
    VertexId lca_depth;
  };
  std::vector<Seed> seeds;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      const bool tree_edge =
          forest.parent[u] == v || forest.parent[v] == u;
      if (tree_edge) continue;
      const VertexId a = rf.lca(u, v);
      SMPST_CHECK(a != kInvalidVertex,
                  "graph edge spans two trees: invalid spanning forest");
      seeds.push_back({Edge{u, v}, a, rf.depth(a)});
    }
  }
  std::stable_sort(seeds.begin(), seeds.end(),
                   [](const Seed& x, const Seed& y) {
                     return x.lca_depth < y.lca_depth;
                   });

  // Label every tree edge with the first (shallowest-LCA) covering ear.
  AncestorJumper jumper(n);
  result.ear_seed.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto ear = static_cast<VertexId>(i);
    result.ear_seed.push_back(seeds[i].e);
    for (VertexId endpoint : {seeds[i].e.u, seeds[i].e.v}) {
      VertexId cur = jumper.find(endpoint);
      while (rf.depth(cur) > seeds[i].lca_depth) {
        result.ear_of_tree_edge[cur] = ear;
        jumper.consume(cur, rf.parent(cur));
        cur = jumper.find(cur);
      }
    }
  }

  // Members CSR (tree edges per ear, keyed by child vertex).
  result.ear_offsets.assign(seeds.size() + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] == v) continue;
    if (result.ear_of_tree_edge[v] == kInvalidVertex) {
      ++result.uncovered_tree_edges;
    } else {
      ++result.ear_offsets[result.ear_of_tree_edge[v] + 1];
    }
  }
  for (std::size_t i = 1; i < result.ear_offsets.size(); ++i) {
    result.ear_offsets[i] += result.ear_offsets[i - 1];
  }
  result.ear_members.resize(result.ear_offsets.back());
  std::vector<EdgeId> cursor(result.ear_offsets.begin(),
                             result.ear_offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (forest.parent[v] == v) continue;
    const VertexId ear = result.ear_of_tree_edge[v];
    if (ear != kInvalidVertex) result.ear_members[cursor[ear]++] = v;
  }
  return result;
}

}  // namespace smpst::apps
