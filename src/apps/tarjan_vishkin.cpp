#include "apps/tarjan_vishkin.hpp"

#include <algorithm>

#include "apps/tree_algebra.hpp"
#include "graph/builder.hpp"
#include "support/assert.hpp"

namespace smpst::apps {

std::vector<Edge> ParallelBccResult::bridges() const {
  std::vector<VertexId> size(bcc_count, 0);
  for (VertexId label : bcc_of_edge) ++size[label];
  std::vector<Edge> result;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (size[bcc_of_edge[i]] == 1) result.push_back(edges[i]);
  }
  return result;
}

ParallelBccResult tarjan_vishkin_bcc(const Graph& g,
                                     const SpanningForest& forest,
                                     const cc::ParallelCcOptions& cc_options) {
  const VertexId n = g.num_vertices();
  SMPST_CHECK(forest.parent.size() == n,
              "tarjan_vishkin_bcc: forest does not match graph");
  const RootedForest rf(forest);

  ParallelBccResult result;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) result.edges.push_back({u, v});
    }
  }
  result.bcc_of_edge.assign(result.edges.size(), kInvalidVertex);
  if (result.edges.empty()) return result;

  auto is_tree_edge = [&](const Edge& e) {
    return forest.parent[e.u] == e.v || forest.parent[e.v] == e.u;
  };

  // low/high: extreme preorder values reachable from each subtree through a
  // single non-tree edge. Seed with the vertex's own preorder and its
  // incident non-tree edges, then fold children into parents in decreasing
  // preorder order (children always have larger preorder than parents).
  std::vector<VertexId> low(n);
  std::vector<VertexId> high(n);
  for (VertexId v = 0; v < n; ++v) low[v] = high[v] = rf.preorder(v);
  for (const Edge& e : result.edges) {
    if (is_tree_edge(e)) continue;
    low[e.u] = std::min(low[e.u], rf.preorder(e.v));
    high[e.u] = std::max(high[e.u], rf.preorder(e.v));
    low[e.v] = std::min(low[e.v], rf.preorder(e.u));
    high[e.v] = std::max(high[e.v], rf.preorder(e.u));
  }
  {
    // pre_to_vertex lets us sweep in decreasing preorder.
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[rf.preorder(v)] = v;
    for (VertexId i = n; i-- > 0;) {
      const VertexId v = order[i];
      const VertexId p = rf.parent(v);
      if (p != v) {
        low[p] = std::min(low[p], low[v]);
        high[p] = std::max(high[p], high[v]);
      }
    }
  }

  // Auxiliary graph over vertex ids (vertex v stands for tree edge
  // {v, parent(v)}; roots stay isolated).
  EdgeList aux(n);
  for (const Edge& e : result.edges) {
    if (is_tree_edge(e)) continue;
    const bool u_anc = rf.is_ancestor(e.u, e.v);
    const bool v_anc = rf.is_ancestor(e.v, e.u);
    if (!u_anc && !v_anc) aux.add_edge(e.u, e.v);  // Rule A
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId p = rf.parent(v);
    if (p == v) continue;                // v is a root: no tree edge e_v
    if (rf.parent(p) == p) continue;     // p is a root: no parent edge e_p
    // Rule B: does some non-tree edge escape p's subtree from inside v's?
    if (low[v] < rf.preorder(p) ||
        high[v] >= rf.preorder(p) + rf.subtree_size(p)) {
      aux.add_edge(v, p);
    }
  }

  const Graph aux_graph = GraphBuilder::build(std::move(aux));
  const auto aux_cc = cc::cc_shiloach_vishkin(aux_graph, cc_options);

  // Edge labels: tree edge -> its child's aux component; non-tree edge ->
  // the deeper endpoint's aux component (for related endpoints the deeper
  // one is inside the cycle; for unrelated ones Rule A made them equal).
  std::vector<VertexId> raw(result.edges.size());
  for (std::size_t i = 0; i < result.edges.size(); ++i) {
    const Edge& e = result.edges[i];
    if (is_tree_edge(e)) {
      const VertexId child = forest.parent[e.u] == e.v ? e.u : e.v;
      raw[i] = aux_cc.label[child];
    } else {
      const VertexId deeper =
          rf.depth(e.u) >= rf.depth(e.v) ? e.u : e.v;
      raw[i] = aux_cc.label[deeper];
    }
  }

  // Densify over the edge labels.
  std::vector<VertexId> remap(aux_cc.count, kInvalidVertex);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (remap[raw[i]] == kInvalidVertex) {
      remap[raw[i]] = result.bcc_count++;
    }
    result.bcc_of_edge[i] = remap[raw[i]];
  }
  return result;
}

}  // namespace smpst::apps
