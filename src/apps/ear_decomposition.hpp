// Ear decomposition on top of a spanning tree — the second application the
// paper's introduction names, and the one that consumes a spanning forest
// directly: every non-tree edge closes exactly one fundamental cycle, and
// ordering those cycles yields the ears.
//
// Construction (the standard spanning-tree-based scheme): root the tree,
// number the non-tree edges 0..k-1 by the depth of the LCA of their
// endpoints (shallower first; ties by edge order). Each tree edge belongs to
// the smallest-numbered non-tree edge whose fundamental cycle covers it; ear
// i is then non-tree edge i plus the tree edges labelled i. Ear 0 is a cycle
// through the root of its component; on a 2-edge-connected graph every later
// ear is a simple path whose endpoints lie on earlier ears (an open ear
// decomposition). Tree edges covered by no cycle are exactly the bridges of
// the graph and are reported separately.
#pragma once

#include <vector>

#include "apps/tree_algebra.hpp"
#include "core/spanning_forest.hpp"
#include "graph/graph.hpp"

namespace smpst::apps {

struct EarDecomposition {
  /// ear_of_tree_edge[v] = ear index of tree edge {v, parent(v)} for
  /// non-root v, or kInvalidVertex if the edge is a bridge (covered by no
  /// non-tree cycle). Indexed by the child endpoint v.
  std::vector<VertexId> ear_of_tree_edge;

  /// The non-tree edge that seeds each ear, in ear order.
  std::vector<Edge> ear_seed;

  /// Tree edges (as child vertex ids) per ear, concatenated CSR-style.
  std::vector<EdgeId> ear_offsets;
  std::vector<VertexId> ear_members;

  [[nodiscard]] VertexId num_ears() const noexcept {
    return static_cast<VertexId>(ear_seed.size());
  }

  /// Number of tree edges not covered by any ear (== number of bridges that
  /// are tree edges; on a 2-edge-connected input this is 0).
  VertexId uncovered_tree_edges = 0;
};

/// Decomposes g along `forest` (any valid spanning forest of g, e.g. from
/// bader_cong_spanning_tree). O((n + m) log n) via binary-lifting LCA.
EarDecomposition ear_decomposition(const Graph& g,
                                   const SpanningForest& forest);

}  // namespace smpst::apps
