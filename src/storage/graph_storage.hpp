// The storage surface traversal kernels compile against.
//
// Every spanning-tree kernel in src/core is a function template over a
// GraphStorage type: the in-memory `Graph` (CSR vectors, `neighbors()` is a
// std::span over contiguous memory) and the disk-resident
// `storage::BlockedGraph` (block-cached CSR file, `neighbors()` is a pinned
// block-backed span). The kernels are instantiated explicitly for both in
// their .cpp files, so the in-memory instantiation compiles to exactly the
// code it did before this interface existed — no virtual dispatch anywhere
// near a neighbour loop.
//
// `is_resident` distinguishes the two at compile time where it matters:
// software prefetch of a neighbour slice is a win when `neighbors()` is a
// pointer computation but would trigger real I/O on a blocked graph, so the
// kernels gate those hints with `if constexpr (is_resident_v<GS>)`.
#pragma once

#include <concepts>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace smpst::storage {

/// Disk-backed storage failure: unreadable file, bad header, or a block
/// cache that cannot make progress (all frames pinned). Derives from
/// std::runtime_error so the service's error mapping handles it like the
/// other typed I/O failures.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

/// What a traversal kernel needs from a graph backend. `neighbors()` must
/// return a forward-iterable range of VertexId with data()/size()/operator[];
/// for Graph that is std::span, for BlockedGraph a pinned NeighborSpan.
template <typename GS>
concept GraphStorage = requires(const GS& g, VertexId v) {
  { g.num_vertices() } -> std::convertible_to<VertexId>;
  { g.num_edges() } -> std::convertible_to<EdgeId>;
  { g.num_arcs() } -> std::convertible_to<EdgeId>;
  { g.degree(v) } -> std::convertible_to<EdgeId>;
  { g.neighbors(v).size() } -> std::convertible_to<std::size_t>;
};

/// True when neighbour access is a pure pointer computation (no I/O, no
/// pinning) — the licence for prefetch hints and repeated cheap calls.
template <typename GS>
struct is_resident : std::false_type {};

template <>
struct is_resident<Graph> : std::true_type {};

template <typename GS>
inline constexpr bool is_resident_v = is_resident<GS>::value;

static_assert(GraphStorage<Graph>,
              "Graph must satisfy the storage concept it was extracted from");

}  // namespace smpst::storage
