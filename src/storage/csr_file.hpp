// On-disk CSR graph format ("SMPSTCSR"), the persistent twin of
// graph/io.hpp's edge-list formats.
//
// Layout (all integers little-endian, the only byte order the toolchain
// targets):
//
//   byte 0   magic "SMPSTCSR" (8 bytes)
//   byte 8   u32 version (currently 1)
//   byte 12  u32 reserved (zero)
//   byte 16  u64 num_vertices (n)
//   byte 24  u64 num_arcs    (2m — both directions, like the in-memory CSR)
//   byte 32  u64 offsets_pos (== kCsrHeaderBytes)
//   byte 40  u64 targets_pos (== kCsrHeaderBytes + 8 * (n + 1))
//   byte 48  zero padding to 64
//   ...      (n + 1) u64 offsets, then num_arcs u32 targets
//
// The 64-byte header plus a power-of-two block size >= 64 gives the block
// cache a free alignment guarantee: every block boundary is 8-byte aligned,
// so no u64 offset or u32 target ever straddles two blocks and a scalar read
// pins exactly one block.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "storage/graph_storage.hpp"

namespace smpst::storage {

inline constexpr std::uint64_t kCsrHeaderBytes = 64;
inline constexpr std::uint32_t kCsrFormatVersion = 1;

struct CsrFileHeader {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t offsets_pos = 0;
  std::uint64_t targets_pos = 0;
  /// Total file size the header implies: targets_pos + 4 * num_arcs.
  std::uint64_t file_bytes = 0;
  /// CSR payload bytes (offsets + targets arrays, excluding the header) —
  /// the figure cache-budget fractions are computed against.
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return file_bytes - kCsrHeaderBytes;
  }
};

/// Serializes a built graph. Throws StorageError on I/O failure.
void write_csr_file(const Graph& g, const std::string& path);

/// Reads and validates the 64-byte header (magic, version, positions
/// consistent, sizes overflow-checked against the actual file size).
/// Throws StorageError on any mismatch.
CsrFileHeader read_csr_header(const std::string& path);

/// Loads the whole file back into an in-memory Graph (round-trip tests and
/// tooling; the block-cached path is storage::BlockedGraph).
Graph read_csr_file(const std::string& path);

}  // namespace smpst::storage
