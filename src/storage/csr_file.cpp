#include "storage/csr_file.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

namespace smpst::storage {

namespace {

constexpr std::array<char, 8> kCsrMagic = {'S', 'M', 'P', 'S', 'T',
                                           'C', 'S', 'R'};

[[noreturn]] void fail(const std::string& what) {
  throw StorageError("smpst::storage: " + what);
}

void write_bytes(std::ostream& os, const void* data, std::uint64_t bytes) {
  constexpr std::uint64_t kMaxChunk = std::uint64_t{1} << 30;
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const std::uint64_t take = bytes < kMaxChunk ? bytes : kMaxChunk;
    os.write(p, static_cast<std::streamsize>(take));
    p += take;
    bytes -= take;
  }
}

}  // namespace

void write_csr_file(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) fail("cannot open for write: " + path);

  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  std::array<char, kCsrHeaderBytes> header{};
  std::memcpy(header.data(), kCsrMagic.data(), kCsrMagic.size());
  const std::uint32_t version = kCsrFormatVersion;
  std::memcpy(header.data() + 8, &version, sizeof(version));
  const std::uint64_t offsets_pos = kCsrHeaderBytes;
  const std::uint64_t targets_pos =
      kCsrHeaderBytes + sizeof(EdgeId) * (n + 1);
  std::memcpy(header.data() + 16, &n, sizeof(n));
  std::memcpy(header.data() + 24, &arcs, sizeof(arcs));
  std::memcpy(header.data() + 32, &offsets_pos, sizeof(offsets_pos));
  std::memcpy(header.data() + 40, &targets_pos, sizeof(targets_pos));
  os.write(header.data(), header.size());

  write_bytes(os, g.offsets().data(), sizeof(EdgeId) * (n + 1));
  write_bytes(os, g.targets().data(), sizeof(VertexId) * arcs);
  if (!os) fail("write failed: " + path);
}

CsrFileHeader read_csr_header(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  std::array<char, kCsrHeaderBytes> header{};
  is.read(header.data(), header.size());
  if (!is) fail("truncated CSR header: " + path);
  if (std::memcmp(header.data(), kCsrMagic.data(), kCsrMagic.size()) != 0) {
    fail("bad CSR magic: " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header.data() + 8, sizeof(version));
  if (version != kCsrFormatVersion) {
    fail("unsupported CSR version " + std::to_string(version) + ": " + path);
  }

  CsrFileHeader h;
  std::memcpy(&h.num_vertices, header.data() + 16, sizeof(h.num_vertices));
  std::memcpy(&h.num_arcs, header.data() + 24, sizeof(h.num_arcs));
  std::memcpy(&h.offsets_pos, header.data() + 32, sizeof(h.offsets_pos));
  std::memcpy(&h.targets_pos, header.data() + 40, sizeof(h.targets_pos));

  // Every size below comes from an untrusted header: check each derived
  // quantity before using it, exactly like the chunked edge-list reader.
  if (h.num_vertices > kInvalidVertex) {
    fail("vertex count exceeds 32-bit id space: " + path);
  }
  constexpr std::uint64_t kMaxU64 = std::numeric_limits<std::uint64_t>::max();
  if (h.num_vertices + 1 > kMaxU64 / sizeof(EdgeId)) {
    fail("offsets array size overflows: " + path);
  }
  const std::uint64_t offsets_bytes = sizeof(EdgeId) * (h.num_vertices + 1);
  if (h.offsets_pos != kCsrHeaderBytes ||
      h.targets_pos != kCsrHeaderBytes + offsets_bytes) {
    fail("inconsistent CSR section positions: " + path);
  }
  if (h.num_arcs > (kMaxU64 - h.targets_pos) / sizeof(VertexId)) {
    fail("targets array size overflows: " + path);
  }
  h.file_bytes = h.targets_pos + sizeof(VertexId) * h.num_arcs;

  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec) fail("cannot stat: " + path);
  if (actual != h.file_bytes) {
    fail("CSR file size mismatch (header implies " +
         std::to_string(h.file_bytes) + " bytes, file has " +
         std::to_string(actual) + "): " + path);
  }
  return h;
}

Graph read_csr_file(const std::string& path) {
  const CsrFileHeader h = read_csr_header(path);
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open for read: " + path);
  is.seekg(static_cast<std::streamoff>(h.offsets_pos));

  std::vector<EdgeId> offsets(static_cast<std::size_t>(h.num_vertices) + 1);
  is.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(sizeof(EdgeId) * offsets.size()));
  std::vector<VertexId> targets(static_cast<std::size_t>(h.num_arcs));
  is.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(sizeof(VertexId) * targets.size()));
  if (!is) fail("truncated CSR payload: " + path);
  if (offsets.front() != 0 || offsets.back() != targets.size() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    fail("corrupt CSR offsets array: " + path);
  }
  for (const VertexId t : targets) {
    if (t >= h.num_vertices) fail("CSR target out of range: " + path);
  }
  return Graph::from_csr(std::move(offsets), std::move(targets));
}

}  // namespace smpst::storage
