// Disk-resident CSR graph: the blocked GraphStorage implementation.
//
// A BlockedGraph never holds the CSR arrays in memory — every offsets/targets
// access goes through a BlockCache over the SMPSTCSR file, so its footprint
// is the cache budget (plus per-frame metadata), not the graph size. That is
// exactly the figure memory_bytes() reports and the GraphRegistry charges.
//
// neighbors(v) returns a NeighborSpan: when v's slice lies inside one cache
// block (the common case for any realistic block size) the span is zero-copy
// — it holds a pin on that block and points into the frame, released on
// destruction. A slice crossing block boundaries is copied into the span's
// owned buffer block-by-block, so at most one pin is held at a time and the
// cache can make progress with as few as two frames per shard.
//
// Thread safety: const access from any number of threads concurrently (the
// BlockCache does its own sharded locking); that is what lets the traversal
// kernels run over a BlockedGraph unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "storage/block_cache.hpp"
#include "storage/csr_file.hpp"
#include "storage/graph_storage.hpp"

namespace smpst::storage {

/// Neighbour slice of one vertex, backed by a pinned cache block (zero-copy)
/// or an owned copy when the slice crosses blocks. Move-only: the pin
/// travels with the span and is released exactly once.
class NeighborSpan {
 public:
  using value_type = VertexId;

  NeighborSpan() = default;
  NeighborSpan(NeighborSpan&& o) noexcept
      : cache_(std::exchange(o.cache_, nullptr)),
        block_(o.block_),
        data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        owned_(std::move(o.owned_)) {}
  NeighborSpan& operator=(NeighborSpan&& o) noexcept {
    if (this != &o) {
      release();
      cache_ = std::exchange(o.cache_, nullptr);
      block_ = o.block_;
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      owned_ = std::move(o.owned_);
    }
    return *this;
  }
  NeighborSpan(const NeighborSpan&) = delete;
  NeighborSpan& operator=(const NeighborSpan&) = delete;
  ~NeighborSpan() { release(); }

  [[nodiscard]] const VertexId* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const VertexId* begin() const noexcept { return data_; }
  [[nodiscard]] const VertexId* end() const noexcept { return data_ + size_; }
  VertexId operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  friend class BlockedGraph;

  void release() noexcept {
    if (cache_ != nullptr) {
      cache_->unpin(block_);
      cache_ = nullptr;
    }
  }

  BlockCache* cache_ = nullptr;  // non-null: span holds a pin on block_
  std::uint64_t block_ = 0;
  const VertexId* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<VertexId> owned_;  // multi-block slices copy here
};

class BlockedGraph {
 public:
  /// Opens an SMPSTCSR file (see csr_file.hpp) behind a block cache. Throws
  /// StorageError on a bad file or malformed options.
  explicit BlockedGraph(const std::string& path,
                        const BlockCacheOptions& opts = {});

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(header_.num_vertices);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return header_.num_arcs / 2;
  }
  [[nodiscard]] EdgeId num_arcs() const noexcept { return header_.num_arcs; }

  /// Degree via two cached offset reads. Throws StorageError on I/O failure.
  [[nodiscard]] EdgeId degree(VertexId v) const;

  /// Sorted neighbour slice of v; see the class comment for pinning rules.
  [[nodiscard]] NeighborSpan neighbors(VertexId v) const;

  /// Bytes this graph is charged against a registry budget: the block-cache
  /// frames and metadata — NOT the CSR size, which is csr_bytes().
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(BlockedGraph) + cache_.memory_bytes();
  }
  /// On-disk CSR payload bytes (offsets + targets) — what cache-budget
  /// fractions are computed against.
  [[nodiscard]] std::uint64_t csr_bytes() const noexcept {
    return header_.payload_bytes();
  }

  [[nodiscard]] BlockCache::Stats cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const CsrFileHeader& header() const noexcept {
    return header_;
  }

 private:
  [[nodiscard]] EdgeId offset_at(std::uint64_t i) const;

  std::string path_;
  CsrFileHeader header_;
  mutable BlockCache cache_;
};

static_assert(!is_resident_v<BlockedGraph>,
              "BlockedGraph neighbour access does I/O; kernels must not "
              "treat it as resident");

}  // namespace smpst::storage
