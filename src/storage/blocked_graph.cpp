#include "storage/blocked_graph.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"

namespace smpst::storage {

static_assert(GraphStorage<BlockedGraph>,
              "BlockedGraph must satisfy the kernel storage concept");

BlockedGraph::BlockedGraph(const std::string& path,
                           const BlockCacheOptions& opts)
    : path_(path),
      header_(read_csr_header(path)),
      cache_(path, header_.file_bytes, opts) {}

EdgeId BlockedGraph::offset_at(std::uint64_t i) const {
  const std::size_t bb = cache_.block_bytes();
  const std::uint64_t pos = header_.offsets_pos + i * sizeof(EdgeId);
  // Blocks are >= 64 bytes and the header is 64 bytes, so an 8-byte offset
  // entry is 8-aligned within the file and never straddles a block.
  const std::uint64_t blk = pos / bb;
  const std::byte* frame = cache_.pin(blk);
  EdgeId out = 0;
  std::memcpy(&out, frame + (pos - blk * bb), sizeof(out));
  cache_.unpin(blk);
  return out;
}

EdgeId BlockedGraph::degree(VertexId v) const {
  SMPST_ASSERT(static_cast<std::uint64_t>(v) < header_.num_vertices);
  const std::size_t bb = cache_.block_bytes();
  const std::uint64_t pos =
      header_.offsets_pos + static_cast<std::uint64_t>(v) * sizeof(EdgeId);
  const std::uint64_t blk = pos / bb;
  if ((pos + sizeof(EdgeId)) / bb == blk) {
    // Both bounding offsets live in one block: single pin.
    const std::byte* frame = cache_.pin(blk);
    EdgeId lo = 0;
    EdgeId hi = 0;
    std::memcpy(&lo, frame + (pos - blk * bb), sizeof(lo));
    std::memcpy(&hi, frame + (pos - blk * bb) + sizeof(EdgeId), sizeof(hi));
    cache_.unpin(blk);
    return hi - lo;
  }
  return offset_at(v + 1) - offset_at(v);
}

NeighborSpan BlockedGraph::neighbors(VertexId v) const {
  SMPST_ASSERT(static_cast<std::uint64_t>(v) < header_.num_vertices);
  const EdgeId lo = offset_at(v);
  const EdgeId hi = offset_at(static_cast<std::uint64_t>(v) + 1);
  NeighborSpan span;
  if (lo == hi) return span;

  const std::size_t bb = cache_.block_bytes();
  const std::uint64_t byte_lo = header_.targets_pos + lo * sizeof(VertexId);
  const std::uint64_t byte_hi = header_.targets_pos + hi * sizeof(VertexId);
  const std::uint64_t blk_lo = byte_lo / bb;
  const std::uint64_t blk_hi = (byte_hi - 1) / bb;
  if (blk_lo == blk_hi) {
    // Zero-copy: point into the pinned frame. The 4-byte targets are
    // 4-aligned within the block (targets_pos is 8-aligned), so the cast
    // pointer is properly aligned for VertexId loads.
    const std::byte* frame = cache_.pin(blk_lo);
    span.cache_ = &cache_;
    span.block_ = blk_lo;
    span.data_ =
        reinterpret_cast<const VertexId*>(frame + (byte_lo - blk_lo * bb));
    span.size_ = static_cast<std::size_t>(hi - lo);
    return span;
  }

  // Slice crosses blocks: copy block-by-block holding one pin at a time, so
  // a minimal cache (two frames per shard) still makes progress.
  span.owned_.resize(static_cast<std::size_t>(hi - lo));
  auto* dst = reinterpret_cast<std::byte*>(span.owned_.data());
  std::uint64_t cur = byte_lo;
  while (cur < byte_hi) {
    const std::uint64_t blk = cur / bb;
    const std::uint64_t take =
        std::min<std::uint64_t>(byte_hi, (blk + 1) * bb) - cur;
    const std::byte* frame = cache_.pin(blk);
    std::memcpy(dst, frame + (cur - blk * bb),
                static_cast<std::size_t>(take));
    cache_.unpin(blk);
    dst += take;
    cur += take;
  }
  span.data_ = span.owned_.data();
  span.size_ = span.owned_.size();
  return span;
}

}  // namespace smpst::storage
