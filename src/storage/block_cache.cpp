#include "storage/block_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace smpst::storage {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw StorageError("smpst::storage: " + what);
}

bool is_pow2(std::size_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

const char* to_string(EvictionPolicy p) noexcept {
  return p == EvictionPolicy::kClock ? "clock" : "lru";
}

EvictionPolicy parse_eviction_policy(const std::string& s) {
  if (s == "clock") return EvictionPolicy::kClock;
  if (s == "lru") return EvictionPolicy::kLru;
  fail("unknown eviction policy: " + s);
}

BlockCache::BlockCache(std::string path, std::uint64_t file_bytes,
                       const BlockCacheOptions& opts)
    : path_(std::move(path)),
      file_bytes_(file_bytes),
      block_bytes_(opts.block_bytes),
      num_blocks_((file_bytes + opts.block_bytes - 1) / opts.block_bytes),
      policy_(opts.policy),
      obs_hits_(obs::MetricsRegistry::instance().counter("storage.cache.hits")),
      obs_misses_(
          obs::MetricsRegistry::instance().counter("storage.cache.misses")),
      obs_evictions_(
          obs::MetricsRegistry::instance().counter("storage.cache.evictions")),
      obs_read_latency_(
          obs::MetricsRegistry::instance().histogram("storage.block.read")) {
  if (!is_pow2(block_bytes_) || block_bytes_ < 64) {
    fail("block_bytes must be a power of two >= 64, got " +
         std::to_string(block_bytes_));
  }
  if (file_bytes_ == 0) fail("empty file: " + path_);

  const std::size_t shards = opts.shards == 0 ? 1 : opts.shards;
  // The budget is a target, floored at two frames per shard so a pin plus a
  // concurrent miss can always coexist; never more frames than blocks.
  // Both divisions round up: a budget covering the whole file must yield a
  // frame for every block of every shard (block→shard is modular, so the
  // fullest shard holds ceil(blocks/shards)), or a "100%" cache would evict.
  const std::uint64_t budget_frames =
      (opts.budget_bytes + block_bytes_ - 1) / block_bytes_;
  std::size_t per_shard = static_cast<std::size_t>(
      (budget_frames + shards - 1) / static_cast<std::uint64_t>(shards));
  if (per_shard < 2) per_shard = 2;
  const std::uint64_t cap =
      (num_blocks_ + shards - 1) / static_cast<std::uint64_t>(shards);
  if (per_shard > cap) per_shard = static_cast<std::size_t>(cap);
  if (per_shard == 0) per_shard = 1;

  shards_ = std::vector<Shard>(shards);
  for (Shard& sh : shards_) {
    LockGuard<Mutex> lk(sh.mutex);
    sh.frames.resize(per_shard);
    sh.free.reserve(per_shard);
    for (std::size_t i = per_shard; i > 0; --i) sh.free.push_back(i - 1);
  }
  frames_total_ = per_shard * shards;

  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    fail("cannot open for read: " + path_ + " (" +
         std::string(std::strerror(errno)) + ")");
  }
}

BlockCache::~BlockCache() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t BlockCache::memory_bytes() const noexcept {
  return frames_total_ * (block_bytes_ + sizeof(Frame)) +
         shards_.size() * sizeof(Shard);
}

std::size_t BlockCache::claim_frame_locked(Shard& sh, bool& evicted) {
  if (!sh.free.empty()) {
    const std::size_t idx = sh.free.back();
    sh.free.pop_back();
    return idx;
  }
  const std::size_t nf = sh.frames.size();
  std::size_t victim = nf;  // sentinel: none found
  if (policy_ == EvictionPolicy::kClock) {
    // Second chance: up to two sweeps — the first pass may only be clearing
    // reference bits, the second then finds the first unpinned clear frame.
    for (std::size_t step = 0; step < 2 * nf; ++step) {
      Frame& f = sh.frames[sh.hand];
      const std::size_t idx = sh.hand;
      sh.hand = (sh.hand + 1) % nf;
      if (f.pins > 0 || f.loading) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      victim = idx;
      break;
    }
  } else {
    std::uint64_t best = ~std::uint64_t{0};
    for (std::size_t i = 0; i < nf; ++i) {
      const Frame& f = sh.frames[i];
      if (f.pins > 0 || f.loading) continue;
      if (f.last_use <= best) {
        best = f.last_use;
        victim = i;
      }
    }
  }
  if (victim == nf) {
    pin_refusals_.fetch_add(1, std::memory_order_relaxed);
    fail("block cache refuses to evict: every frame in the shard is pinned "
         "(budget too small for the number of concurrently held spans)");
  }
  Frame& f = sh.frames[victim];
  SMPST_ASSERT(f.block != Frame::kNoBlock);
  sh.map.erase(f.block);
  f.block = Frame::kNoBlock;
  evicted = true;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  obs_evictions_.add();
  return victim;
}

void BlockCache::read_block(std::uint64_t block, std::byte* dst) {
  const std::uint64_t pos = block * block_bytes_;
  SMPST_ASSERT(pos < file_bytes_);
  std::size_t want = block_bytes_;
  if (file_bytes_ - pos < want) {
    want = static_cast<std::size_t>(file_bytes_ - pos);
  }
  std::size_t done = 0;
  while (done < want) {
    const ssize_t got =
        ::pread(fd_, dst + done, want - done,
                static_cast<off_t>(pos + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("pread failed at offset " + std::to_string(pos + done) + ": " +
           std::string(std::strerror(errno)) + " (" + path_ + ")");
    }
    if (got == 0) {
      fail("unexpected EOF at offset " + std::to_string(pos + done) + " (" +
           path_ + ")");
    }
    done += static_cast<std::size_t>(got);
  }
}

const std::byte* BlockCache::pin(std::uint64_t block) {
  SMPST_ASSERT(block < num_blocks_);
  Shard& sh = shard_of(block);
  for (;;) {
    Frame* claimed = nullptr;
    bool evicted = false;
    {
      LockGuard<Mutex> lk(sh.mutex);
      const auto it = sh.map.find(block);
      if (it != sh.map.end()) {
        Frame& f = sh.frames[it->second];
        if (f.loading) {
          // Another thread owns the disk read. Wait it out, then re-run the
          // whole lookup: a failed load unmaps the block and may hand the
          // frame to a different block entirely.
          while (f.loading && f.block == block) sh.cv.wait(sh.mutex);
          continue;
        }
        ++f.pins;
        f.ref = true;
        f.last_use = ++sh.tick;
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs_hits_.add();
        return f.data.get();
      }
      const std::size_t idx = claim_frame_locked(sh, evicted);
      Frame& f = sh.frames[idx];
      f.block = block;
      f.loading = true;
      f.pins = 1;
      f.ref = true;
      f.last_use = ++sh.tick;
      if (f.data == nullptr) f.data.reset(new std::byte[block_bytes_]);
      sh.map.emplace(block, idx);
      claimed = &f;
    }

    // Unlocked I/O window: other blocks in the shard stay pinnable while the
    // read is in flight; same-block pins wait on the CondVar above. The
    // failpoints live here — injected faults model exactly the disk errors
    // this path can produce (and SL002 keeps failpoints out of lock scopes).
    try {
      if (evicted) SMPST_FAILPOINT("storage.cache.evict");
      SMPST_FAILPOINT("storage.block.read");
      const auto t0 = std::chrono::steady_clock::now();
      read_block(block, claimed->data.get());
      const auto t1 = std::chrono::steady_clock::now();
      obs_read_latency_.record_ms(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    } catch (...) {
      // Counts every failed load — real pread errors and injected faults
      // alike; both take this rollback.
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      {
        LockGuard<Mutex> lk(sh.mutex);
        sh.map.erase(block);
        claimed->block = Frame::kNoBlock;
        claimed->loading = false;
        claimed->pins = 0;
        claimed->ref = false;
        sh.free.push_back(
            static_cast<std::size_t>(claimed - sh.frames.data()));
      }
      sh.cv.notify_all();
      throw;
    }
    {
      LockGuard<Mutex> lk(sh.mutex);
      claimed->loading = false;
    }
    sh.cv.notify_all();
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs_misses_.add();
    return claimed->data.get();
  }
}

void BlockCache::unpin(std::uint64_t block) noexcept {
  Shard& sh = shard_of(block);
  LockGuard<Mutex> lk(sh.mutex);
  const auto it = sh.map.find(block);
  SMPST_ASSERT(it != sh.map.end());
  Frame& f = sh.frames[it->second];
  SMPST_ASSERT(f.pins > 0);
  --f.pins;
}

BlockCache::Stats BlockCache::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.pin_refusals = pin_refusals_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace smpst::storage
