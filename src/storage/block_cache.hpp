// Sharded block cache over a read-only file — the paging engine under
// storage::BlockedGraph (architecture after BU-DiSC/CAVE's BlockCache, see
// SNIPPETS.md snippet 1 and docs/STORAGE.md).
//
// The file is divided into fixed-size blocks (power of two, >= 64 bytes).
// pin(block) returns a pointer to an in-memory frame holding that block's
// bytes and guarantees the frame stays put until the matching unpin(block).
// Frames come from a fixed budget; a miss with no free frame evicts an
// unpinned frame chosen by the configured policy:
//
//   * CLOCK (default) — second-chance sweep over the shard's frames; a hit
//     sets the frame's reference bit, the sweep clears bits until it finds a
//     clear, unpinned frame. O(1) amortized, no ordering metadata on hits.
//   * LRU (reference policy) — exact least-recently-used by per-shard tick;
//     O(frames) victim scan, used by tests as the behavioural reference.
//
// If every frame in the shard is pinned the cache refuses — it throws
// StorageError rather than evicting under a pin or blocking indefinitely —
// so a traversal with more simultaneously-pinned slices than frames fails
// loudly instead of corrupting a reader (size the budget to at least a few
// frames per worker thread; see docs/STORAGE.md).
//
// Concurrency: state is sharded by block id; each shard is guarded by one
// smpst::Mutex (lockdep rank storage.block_cache.shard). Disk reads happen
// OUTSIDE the shard lock: a miss claims a frame, marks it loading, drops the
// lock, reads, then clears the flag and notifies — concurrent pins of the
// same block wait on the shard's CondVar, pins of other blocks proceed. The
// failpoints (storage.cache.evict, storage.block.read) sit in that unlocked
// window, both because injected faults should hit the I/O path they model
// and because lint rule SL002 forbids failpoints under a lock guard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "storage/graph_storage.hpp"
#include "support/thread_annotations.hpp"

namespace smpst::storage {

enum class EvictionPolicy {
  kClock,  ///< second-chance sweep (default)
  kLru,    ///< exact least-recently-used (reference implementation)
};

[[nodiscard]] const char* to_string(EvictionPolicy p) noexcept;

/// Parses "clock" / "lru"; throws StorageError on anything else.
[[nodiscard]] EvictionPolicy parse_eviction_policy(const std::string& s);

struct BlockCacheOptions {
  /// Bytes per block; power of two, >= 64 (so no u64/u32 CSR value straddles
  /// a block boundary — see csr_file.hpp).
  std::size_t block_bytes = std::size_t{1} << 16;
  /// Target bytes of cached data across all shards. Floored so every shard
  /// keeps at least two frames; memory_bytes() reports the real figure.
  std::size_t budget_bytes = std::size_t{1} << 24;
  std::size_t shards = 8;
  EvictionPolicy policy = EvictionPolicy::kClock;
};

class BlockCache {
 public:
  /// Opens `path` read-only. Throws StorageError if the file cannot be
  /// opened or the options are malformed.
  BlockCache(std::string path, std::uint64_t file_bytes,
             const BlockCacheOptions& opts);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Pins the block and returns its bytes (valid until unpin). Counts a hit
  /// or a miss; a miss may evict and reads from disk. Throws StorageError on
  /// read failure or when every frame in the shard is pinned.
  const std::byte* pin(std::uint64_t block);

  /// Releases one pin taken by pin() on the same block.
  void unpin(std::uint64_t block) noexcept;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t read_errors = 0;
    std::uint64_t pin_refusals = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const noexcept;

  [[nodiscard]] std::size_t block_bytes() const noexcept {
    return block_bytes_;
  }
  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return num_blocks_;
  }
  [[nodiscard]] std::size_t num_frames() const noexcept {
    return frames_total_;
  }
  /// Bytes this cache is charged for: frame data plus per-frame metadata.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct Frame {
    static constexpr std::uint64_t kNoBlock = ~std::uint64_t{0};
    std::uint64_t block = kNoBlock;
    std::uint32_t pins = 0;
    bool loading = false;
    bool ref = false;             // CLOCK reference bit
    std::uint64_t last_use = 0;   // LRU tick
    std::unique_ptr<std::byte[]> data;  // allocated on first claim
  };

  struct Shard {
    mutable Mutex mutex{lockdep::rank::kStorageCacheShard};
    CondVar cv;  // load-completion waits; paired with mutex
    std::unordered_map<std::uint64_t, std::size_t> map
        SMPST_GUARDED_BY(mutex);  // block id -> frame index
    std::vector<Frame> frames SMPST_GUARDED_BY(mutex);
    std::vector<std::size_t> free SMPST_GUARDED_BY(mutex);
    std::size_t hand SMPST_GUARDED_BY(mutex) = 0;  // CLOCK sweep position
    std::uint64_t tick SMPST_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t block) noexcept {
    return shards_[block % shards_.size()];
  }
  /// Picks a frame for a new block: free-list first, then a policy victim.
  /// Sets `evicted` when a mapped block was displaced. Throws StorageError
  /// when every frame is pinned or loading.
  std::size_t claim_frame_locked(Shard& sh, bool& evicted)
      SMPST_REQUIRES(sh.mutex);
  void read_block(std::uint64_t block, std::byte* dst);

  const std::string path_;
  const std::uint64_t file_bytes_;
  const std::size_t block_bytes_;
  const std::uint64_t num_blocks_;
  const EvictionPolicy policy_;
  int fd_ = -1;
  std::size_t frames_total_ = 0;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> pin_refusals_{0};

  obs::Counter& obs_hits_;
  obs::Counter& obs_misses_;
  obs::Counter& obs_evictions_;
  obs::LatencyHistogram& obs_read_latency_;
};

}  // namespace smpst::storage
