// Tests for the Helman–JáJá cost model and the E4500 simulator: formula
// sanity, monotonicity in p, and agreement between the closed forms and the
// counter-replay on instrumented runs.
#include <gtest/gtest.h>

#include "core/bader_cong.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "model/cost_model.hpp"
#include "model/simulator.hpp"
#include "model/virtual_smp.hpp"

namespace smpst {
namespace {

TEST(CostModel, BfsCostMatchesClosedForm) {
  const auto c = model::bfs_cost(1000, 1500);
  EXPECT_DOUBLE_EQ(c.mem_accesses, 1000.0 + 2.0 * 1500.0);
  EXPECT_DOUBLE_EQ(c.barriers, 0.0);
}

TEST(CostModel, PredictSecondsIsLinearInParams) {
  model::CostTriple c;
  c.mem_accesses = 1e6;
  auto m = model::sun_e4500();
  const double base = model::predict_seconds(c, m);
  m.noncontig_access_ns *= 2.0;
  EXPECT_DOUBLE_EQ(model::predict_seconds(c, m), 2.0 * base);
}

TEST(CostModel, TraversalCostScalesWithP) {
  const VertexId n = 1 << 20;
  const EdgeId m = 1 << 21;
  const auto p1 = model::bader_cong_cost(n, m, 1);
  const auto p8 = model::bader_cong_cost(n, m, 8);
  // Near-linear scaling: p=8 does ~1/8 the per-processor accesses (plus the
  // O(p) stub term).
  EXPECT_LT(p8.mem_accesses, p1.mem_accesses / 7.0);
  EXPECT_DOUBLE_EQ(p1.barriers, p8.barriers);
}

TEST(CostModel, SvCostsMoreThanTraversal) {
  // The paper's central comparison: even a single SV iteration does ~log n
  // more work per vertex, and the worst case carries log^2 n.
  const VertexId n = 1 << 20;
  const EdgeId m = 3 * (1 << 20);
  for (std::size_t p : {std::size_t{1}, std::size_t{8}}) {
    const auto bc = model::bader_cong_cost(n, m, p);
    const auto sv = model::sv_worst_case_cost(n, m, p);
    EXPECT_GT(sv.mem_accesses, 5.0 * bc.mem_accesses) << p;
    EXPECT_GT(sv.barriers, bc.barriers) << p;
  }
}

TEST(CostModel, MachinePresetsAreOrdered) {
  // The modern machine is faster across the board.
  const auto old_m = model::sun_e4500();
  const auto new_m = model::modern_smp();
  EXPECT_LT(new_m.noncontig_access_ns, old_m.noncontig_access_ns);
  EXPECT_LT(new_m.barrier_ns, old_m.barrier_ns);
  EXPECT_FALSE(old_m.name.empty());
}

TEST(VirtualSmp, SpeedupGrowsWithProcessors) {
  // The virtual execution spreads work across p processors deterministically;
  // simulated speedup over sequential BFS must grow with p — exactly the
  // shape of the paper's Fig. 3/4 curves.
  const Graph g = gen::make_family("random-nlogn", 20000, 5);
  const auto machine = model::sun_e4500();
  const double seq =
      model::simulate_bfs_seconds(g.num_vertices(), g.num_edges(), machine);

  double prev_speedup = 0.0;
  for (std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    model::VirtualRunOptions o;
    o.processors = p;
    const auto run = model::virtual_traversal(g, o);
    const double s = seq / run.seconds_on(machine);
    EXPECT_GT(s, prev_speedup * 1.3)
        << "speedup should grow near-linearly, p=" << p;
    prev_speedup = s;
  }
  // At p=8 the paper reports speedups of 4.5-5.5 on random graphs.
  EXPECT_GT(prev_speedup, 3.0);
  EXPECT_LT(prev_speedup, 9.0);
}

TEST(VirtualSmp, IsDeterministic) {
  const Graph g = gen::make_family("ad3", 3000, 7);
  model::VirtualRunOptions o;
  o.processors = 4;
  const auto a = model::virtual_traversal(g, o);
  const auto b = model::virtual_traversal(g, o);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.stub_vertices, b.stub_vertices);
}

TEST(VirtualSmp, ProcessesEveryVertexExactlyOnce) {
  // The virtual machine is single-threaded, so there are no benign races:
  // total processed must equal n exactly, across components too.
  const Graph g = gen::disjoint_chains(5, 100, 7);
  model::VirtualRunOptions o;
  o.processors = 4;
  const auto run = model::virtual_traversal(g, o);
  std::uint64_t total = 0;
  std::uint64_t claimed = 0;
  for (const auto& t : run.per_thread) {
    total += t.vertices_processed;
    claimed += t.roots_claimed;
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_GE(claimed, 11u);  // at least the other chains + isolated vertices
}

TEST(VirtualSmp, WorkStealingBalancesLoad) {
  // The paper's central load-balancing claim: with work stealing every
  // processor ends up with ~n/p vertices. On a random graph the imbalance
  // factor should be close to 1.
  const Graph g = gen::make_family("random-nlogn", 30000, 9);
  model::VirtualRunOptions o;
  o.processors = 8;
  const auto run = model::virtual_traversal(g, o);
  EXPECT_LT(run.load_imbalance(), 1.5);
  std::uint64_t steals = 0;
  for (const auto& t : run.per_thread) steals += t.steals_succeeded;
  EXPECT_GT(steals, 0u);
}

TEST(VirtualSmp, ChainStillCompletes) {
  // The pathological low-connectivity case: queues hold one vertex, thieves
  // thrash, but the run still terminates and covers everything.
  const Graph g = gen::chain(20000);
  model::VirtualRunOptions o;
  o.processors = 8;
  const auto run = model::virtual_traversal(g, o);
  std::uint64_t total = 0;
  for (const auto& t : run.per_thread) total += t.vertices_processed;
  EXPECT_EQ(total, g.num_vertices());
  // And the makespan shows little parallel benefit (diameter-bound work).
  EXPECT_GT(run.makespan, run.total_work / 16.0);
}

TEST(Simulator, SvSlowerThanTraversalOnE4500) {
  const Graph g = gen::make_family("torus-rowmajor", 10000, 5);
  const auto machine = model::sun_e4500();
  const std::size_t p = 8;

  model::VirtualRunOptions vo;
  vo.processors = p;
  const double bc_s = model::virtual_traversal(g, vo).seconds_on(machine);

  SvStats sstats;
  SvOptions so;
  so.num_threads = p;
  so.stats = &sstats;
  sv_spanning_tree(g, so);
  const double sv_s = model::simulate_sv_seconds(
      sstats, g.num_vertices(), g.num_edges(), p, machine);

  EXPECT_GT(sv_s, bc_s);
}

TEST(Simulator, BfsSecondsPositiveAndScalesWithSize) {
  const auto machine = model::sun_e4500();
  const double small = model::simulate_bfs_seconds(1000, 1500, machine);
  const double large = model::simulate_bfs_seconds(100000, 150000, machine);
  EXPECT_GT(small, 0.0);
  EXPECT_NEAR(large / small, 100.0, 1.0);
}

}  // namespace
}  // namespace smpst
