// Tests for degree-2 chain elimination and forest expansion (the paper's
// preprocessing step).
#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "graph/transform.hpp"

namespace smpst {
namespace {

/// Expand a reduced BFS forest and validate it against the original graph.
void check_roundtrip(const Graph& g) {
  const auto red = eliminate_degree2(g);
  const auto reduced_forest = bfs_spanning_tree(red.reduced);
  ASSERT_TRUE(validate_spanning_forest(red.reduced, reduced_forest))
      << "reduced forest invalid";
  SpanningForest expanded;
  expanded.parent = expand_parent_forest(g, red, reduced_forest.parent);
  const auto report = validate_spanning_forest(g, expanded);
  ASSERT_TRUE(report) << report.error;
}

TEST(Degree2, PathCollapsesToSingleEdge) {
  // 0 - 1 - 2 - 3: interior 1, 2 have degree two; endpoints are kept.
  const Graph g = gen::chain(4);
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.reduced.num_vertices(), 2u);
  EXPECT_EQ(red.reduced.num_edges(), 1u);
  EXPECT_EQ(red.eliminated_vertices(), 2u);
  ASSERT_EQ(red.chains.size(), 1u);
  EXPECT_EQ(red.chains[0].interior.size(), 2u);
  check_roundtrip(g);
}

TEST(Degree2, PureCycleKeepsAnchor) {
  const Graph g = gen::ring(6);
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.reduced.num_vertices(), 1u);
  EXPECT_EQ(red.reduced.num_edges(), 0u);
  ASSERT_EQ(red.chains.size(), 1u);
  EXPECT_EQ(red.chains[0].a, red.chains[0].b);
  EXPECT_EQ(red.chains[0].interior.size(), 5u);
  check_roundtrip(g);
}

TEST(Degree2, AttachedCycle) {
  // Triangle 0-1-2 plus pendant edges on 0 making 0 degree 4.
  const Graph g =
      GraphBuilder::from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {0, 4}});
  const auto red = eliminate_degree2(g);
  // 1 and 2 form a chain from 0 back to 0 (attached cycle).
  EXPECT_EQ(red.eliminated_vertices(), 2u);
  check_roundtrip(g);
}

TEST(Degree2, ParallelChainsBetweenSameEndpoints) {
  // Two disjoint chains joining 0 and 3: 0-1-3 and 0-2-3, plus degree boosts
  // on the endpoints so only 1, 2 are eliminated.
  const Graph g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {3, 5}});
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.eliminated_vertices(), 2u);
  check_roundtrip(g);
}

TEST(Degree2, GraphWithoutDegree2IsUntouched) {
  const Graph g = gen::star(5);
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.reduced.num_vertices(), g.num_vertices());
  EXPECT_EQ(red.reduced.num_edges(), g.num_edges());
  EXPECT_TRUE(red.chains.empty());
  check_roundtrip(g);
}

TEST(Degree2, TorusIsAllDegreeFourUntouched) {
  const Graph g = gen::torus2d(4, 4);
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.reduced.num_vertices(), 16u);
  check_roundtrip(g);
}

TEST(Degree2, LongChainReducesFully) {
  const Graph g = gen::chain(1000);
  const auto red = eliminate_degree2(g);
  EXPECT_EQ(red.reduced.num_vertices(), 2u);
  EXPECT_EQ(red.eliminated_vertices(), 998u);
  check_roundtrip(g);
}

TEST(Degree2, DisconnectedMix) {
  // A ring component, a chain component, an isolated vertex.
  EdgeList list(12);
  for (VertexId v = 1; v < 5; ++v) list.add_edge(v - 1, v);  // chain 0..4
  list.add_edge(5, 6);
  list.add_edge(6, 7);
  list.add_edge(7, 8);
  list.add_edge(8, 5);  // ring 5..8
  // 9, 10, 11 isolated
  const Graph g = GraphBuilder::build(std::move(list));
  check_roundtrip(g);
}

TEST(Degree2, CaterpillarSpineSurvives) {
  const Graph g = gen::caterpillar(6, 2);
  check_roundtrip(g);
}

TEST(Degree2, ExpansionRejectsWrongSize) {
  const Graph g = gen::chain(4);
  const auto red = eliminate_degree2(g);
  std::vector<VertexId> bad(red.reduced.num_vertices() + 1, 0);
  EXPECT_DEATH(expand_parent_forest(g, red, bad), "reduced forest");
}

TEST(Contract, QuotientOfBarbell) {
  // Two triangles {0,1,2} and {3,4,5} joined by edge 2-3; contracting each
  // triangle gives a single quotient edge witnessed by {2,3}.
  const Graph g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const std::vector<VertexId> labels = {7, 7, 7, 9, 9, 9};
  const auto c = contract_classes(g, labels);
  EXPECT_EQ(c.quotient.num_vertices(), 2u);
  EXPECT_EQ(c.quotient.num_edges(), 1u);
  EXPECT_EQ(c.class_of[0], c.class_of[2]);
  EXPECT_NE(c.class_of[0], c.class_of[3]);
  EXPECT_EQ(c.representative.size(), 2u);
  const auto it = c.witness.find(Contraction::pair_key(0, 1));
  ASSERT_NE(it, c.witness.end());
  EXPECT_EQ(it->second, (Edge{2, 3}));
}

TEST(Contract, IdentityLabelsGiveIsomorphicQuotient) {
  const Graph g = gen::torus2d(4, 4);
  std::vector<VertexId> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) labels[v] = v;
  const auto c = contract_classes(g, labels);
  EXPECT_EQ(c.quotient, g);
}

TEST(Contract, AllOneClassGivesSingleton) {
  const Graph g = gen::torus2d(4, 4);
  const std::vector<VertexId> labels(g.num_vertices(), 3);
  const auto c = contract_classes(g, labels);
  EXPECT_EQ(c.quotient.num_vertices(), 1u);
  EXPECT_EQ(c.quotient.num_edges(), 0u);
  EXPECT_TRUE(c.witness.empty());
}

TEST(Contract, ComponentContractionMatchesComponentCount) {
  const Graph g = gen::disjoint_chains(3, 5, 2);
  VertexId count = 0;
  const auto labels = component_labels(g, &count);
  const auto c = contract_classes(g, labels);
  EXPECT_EQ(c.quotient.num_vertices(), count);
  EXPECT_EQ(c.quotient.num_edges(), 0u);  // no cross-component edges
}

}  // namespace
}  // namespace smpst
