// Robustness tests: the failpoint subsystem itself, malformed-input fuzzing
// of the graph IO parser and the wire codec, exception containment and
// graceful degradation in the query executor, and cooperative cancellation
// of the SV/HCS family.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/hcs.hpp"
#include "core/shiloach_vishkin.hpp"
#include "gen/registry.hpp"
#include "graph/io.hpp"
#include "service/executor.hpp"
#include "service/wire.hpp"
#include "support/failpoint.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

/// Every test leaves the global failpoint registry clean, whatever happened.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::disable_all(); }
};

// NOTE: SMPST_FAILPOINT caches its Site& in a per-call-site static, so each
// test needs its own textual expansion of the macro — a shared helper
// function would bind every name to whichever site was hit first.

// --------------------------------------------------------------------------
// Failpoint subsystem.

TEST_F(FailpointTest, DisabledSiteIsInert) {
  EXPECT_FALSE(fail::any_active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(SMPST_FAILPOINT("test.inert"));
  }
}

TEST_F(FailpointTest, ThrowActionThrows) {
  fail::enable("test.throw", "throw");
  EXPECT_TRUE(fail::any_active());
  EXPECT_THROW(SMPST_FAILPOINT("test.throw"), fail::FailpointError);
}

TEST_F(FailpointTest, EnabledSiteDoesNotAffectOthers) {
  fail::enable("test.throw2", "throw");
  EXPECT_NO_THROW(SMPST_FAILPOINT("test.other"));
}

TEST_F(FailpointTest, OneShotFiresExactlyOnce) {
  fail::enable("test.oneshot", "1*throw");
  EXPECT_THROW(SMPST_FAILPOINT("test.oneshot"), fail::FailpointError);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(SMPST_FAILPOINT("test.oneshot"));
  }
}

TEST_F(FailpointTest, AfterNSkipsFirstHits) {
  fail::enable("test.aftern", "3+throw");
  for (int i = 0; i < 3; ++i) {
    EXPECT_NO_THROW(SMPST_FAILPOINT("test.aftern"));
  }
  EXPECT_THROW(SMPST_FAILPOINT("test.aftern"), fail::FailpointError);
}

TEST_F(FailpointTest, ProbabilityIsRoughlyRespected) {
  fail::enable("test.prob", "50%throw");
  int fires = 0;
  for (int i = 0; i < 2000; ++i) {
    try {
      SMPST_FAILPOINT("test.prob");
    } catch (const fail::FailpointError&) {
      ++fires;
    }
  }
  EXPECT_GT(fires, 700);  // ~1000 expected; very loose 6-sigma bounds
  EXPECT_LT(fires, 1300);
}

TEST_F(FailpointTest, ZeroProbabilityNeverFires) {
  fail::enable("test.zero", "0%throw");
  for (int i = 0; i < 500; ++i) {
    EXPECT_NO_THROW(SMPST_FAILPOINT("test.zero"));
  }
}

TEST_F(FailpointTest, DelayActionSleeps) {
  fail::enable("test.delay", "delay(20)");
  WallTimer timer;
  SMPST_FAILPOINT("test.delay");
  EXPECT_GE(timer.elapsed_millis(), 10.0);
}

TEST_F(FailpointTest, WakeActionTriggersButDoesNotThrow) {
  fail::enable("test.wake", "wake");
  EXPECT_TRUE(SMPST_FAILPOINT_TRIGGERED("test.wake"));
  fail::disable("test.wake");
  EXPECT_FALSE(SMPST_FAILPOINT_TRIGGERED("test.wake"));
}

TEST_F(FailpointTest, OffSpecAndDisableDisarm) {
  fail::enable("test.off", "throw");
  fail::enable("test.off", "off");
  EXPECT_NO_THROW(SMPST_FAILPOINT("test.off"));
  fail::enable("test.off", "throw");
  fail::disable("test.off");
  EXPECT_NO_THROW(SMPST_FAILPOINT("test.off"));
}

TEST_F(FailpointTest, SpecListEnablesMultipleSites) {
  EXPECT_EQ(fail::enable_from_spec_list("test.a=throw;test.b=25%delay(2)"),
            2u);
  EXPECT_THROW(SMPST_FAILPOINT("test.a"), fail::FailpointError);
  bool found_a = false;
  for (const auto& info : fail::list()) {
    if (info.name == "test.a") {
      found_a = true;
      EXPECT_TRUE(info.active);
      EXPECT_GE(info.hits, 1u);
      EXPECT_GE(info.fires, 1u);
    }
  }
  EXPECT_TRUE(found_a);
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(fail::enable("test.bad", ""), std::invalid_argument);
  EXPECT_THROW(fail::enable("test.bad", "explode"), std::invalid_argument);
  EXPECT_THROW(fail::enable("test.bad", "150%throw"), std::invalid_argument);
  EXPECT_THROW(fail::enable("test.bad", "throw(1x)"), std::invalid_argument);
  EXPECT_THROW(fail::enable_from_spec_list("noequals"),
               std::invalid_argument);
  EXPECT_FALSE(fail::any_active());
}

// --------------------------------------------------------------------------
// Graph IO hardening: malformed and hostile inputs must throw ParseError (or
// parse), never crash or over-allocate.

EdgeList parse_text(const std::string& s) {
  std::istringstream is(s);
  return io::read_edge_list_text(is);
}

EdgeList parse_binary(const std::string& s) {
  std::istringstream is(s);
  return io::read_edge_list_binary(is);
}

TEST(IoHardening, TextRejectsMalformedInputs) {
  EXPECT_THROW(parse_text(""), io::ParseError);
  EXPECT_THROW(parse_text("not numbers"), io::ParseError);
  EXPECT_THROW(parse_text("3"), io::ParseError);
  EXPECT_THROW(parse_text("3 2\n0 1"), io::ParseError);      // truncated
  EXPECT_THROW(parse_text("3 1\n0 7"), io::ParseError);      // out of range
  EXPECT_THROW(parse_text("3 1\n-1 2"), io::ParseError);     // negative wraps
  EXPECT_THROW(parse_text("99999999999 0"), io::ParseError);  // n > 32-bit
}

TEST(IoHardening, TextHostileEdgeCountFailsWithoutHugeAllocation) {
  // Header claims ~1.8e19 edges; the capped reservation means this must fail
  // on the missing data, not by asking the allocator for exabytes.
  EXPECT_THROW(parse_text("4 18446744073709551615\n0 1\n"), io::ParseError);
}

TEST(IoHardening, TextErrorsCarryEdgeIndex) {
  try {
    parse_text("3 2\n0 1\n0 9\n");
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("edge 1"), std::string::npos);
  }
}

std::string valid_binary_blob() {
  EdgeList list(4);
  list.add_edge(0, 1);
  list.add_edge(1, 2);
  list.add_edge(2, 3);
  std::ostringstream os;
  io::write_edge_list_binary(list, os);
  return os.str();
}

TEST(IoHardening, BinaryRoundTrips) {
  const EdgeList list = parse_binary(valid_binary_blob());
  EXPECT_EQ(list.num_vertices(), 4u);
  EXPECT_EQ(list.num_edges(), 3u);
}

TEST(IoHardening, BinaryRejectsBadMagicAndTruncation) {
  std::string blob = valid_binary_blob();
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_binary(bad_magic), io::ParseError);
  EXPECT_THROW(parse_binary(blob.substr(0, 10)), io::ParseError);
  EXPECT_THROW(parse_binary(blob.substr(0, blob.size() - 3)), io::ParseError);
}

TEST(IoHardening, BinaryHostileEdgeCountFailsOnStreamNotAllocator) {
  // Header: n=4, m=2^55. resize(m) would be a 288-petabyte allocation; the
  // chunked reader must fail on the truncated stream instead.
  std::string blob("SMPSTGR1");
  const std::uint64_t n = 4;
  const std::uint64_t m = std::uint64_t{1} << 55;
  blob.append(reinterpret_cast<const char*>(&n), sizeof(n));
  blob.append(reinterpret_cast<const char*>(&m), sizeof(m));
  blob.append(64, '\0');  // a token amount of edge data
  EXPECT_THROW(parse_binary(blob), io::ParseError);
}

TEST(IoHardening, FuzzedInputsThrowOrParseNeverCrash) {
  Xoshiro256 rng(0xF00D);
  const std::string text_seed = "4 3\n0 1\n1 2\n2 3\n";
  const std::string bin_seed = valid_binary_blob();
  for (int i = 0; i < 400; ++i) {
    // Random garbage of random length.
    std::string garbage(rng.next_bounded(64), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next_bounded(256));
    // Seeded mutations: flip a few bytes of a valid input.
    std::string text = text_seed;
    std::string bin = bin_seed;
    for (int k = 0; k < 3; ++k) {
      text[rng.next_bounded(text.size())] =
          static_cast<char>(rng.next_bounded(256));
      bin[rng.next_bounded(bin.size())] =
          static_cast<char>(rng.next_bounded(256));
    }
    for (const std::string* input : {&garbage, &text, &bin}) {
      try {
        const EdgeList a = parse_text(*input);
        EXPECT_LE(a.num_vertices(), kInvalidVertex);
      } catch (const io::ParseError&) {
      }
      try {
        const EdgeList b = parse_binary(*input);
        EXPECT_LE(b.num_vertices(), kInvalidVertex);
      } catch (const io::ParseError&) {
      }
    }
  }
}

// --------------------------------------------------------------------------
// Wire codec hardening.

TEST(WireHardening, OversizedLineIsRejectedUpFront) {
  const std::string line(kMaxLineBytes + 1, 'a');
  EXPECT_THROW(parse_line(line), WireError);
}

TEST(WireHardening, ErrorsAreTyped) {
  EXPECT_THROW(parse_line("{\"unterminated"), WireError);
  EXPECT_THROW(parse_line("{bad json}"), WireError);
  EXPECT_THROW(parse_line(""), WireError);
  EXPECT_THROW(parse_line("   "), WireError);
}

TEST(WireHardening, FuzzedLinesThrowOrParseNeverCrash) {
  Xoshiro256 rng(0xBEEF);
  const std::string json_seed =
      "{\"cmd\":\"query\",\"graph\":\"g\",\"timeout\":50}";
  const std::string word_seed = "query graph=g algo=bader-cong timeout=50";
  for (int i = 0; i < 600; ++i) {
    std::string garbage(rng.next_bounded(48), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next_bounded(256));
    std::string json = json_seed;
    std::string word = word_seed;
    json[rng.next_bounded(json.size())] =
        static_cast<char>(rng.next_bounded(128));
    word[rng.next_bounded(word.size())] =
        static_cast<char>(rng.next_bounded(128));
    for (const std::string* line : {&garbage, &json, &word}) {
      try {
        const Fields f = parse_line(*line);
        EXPECT_FALSE(f.empty());
      } catch (const WireError&) {
      }
    }
  }
}

// --------------------------------------------------------------------------
// Executor: exception containment, retry, degradation, watchdog.

class ExecutorChaosTest : public FailpointTest {
 protected:
  ExecutorChaosTest() { registry.generate("g", "random-nlogn", 2048, 7); }

  SpanningTreeRequest request(const std::string& algo = "bader-cong") {
    SpanningTreeRequest req;
    req.graph = "g";
    req.algorithm = algo;
    return req;
  }

  GraphRegistry registry;
};

TEST_F(ExecutorChaosTest, DequeueFaultIsContainedAsFailed) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  QueryExecutor executor(registry, opts);
  fail::enable("service.executor.dequeue", "throw");
  const QueryResult r = executor.submit(request()).get();
  EXPECT_EQ(r.status, QueryStatus::kFailed);
  EXPECT_NE(r.error.find("worker exception"), std::string::npos);
  fail::disable_all();
  // The worker thread survived the fault and still serves.
  EXPECT_TRUE(executor.submit(request()).get().ok());
  EXPECT_EQ(executor.stats().failed, 1u);
}

TEST_F(ExecutorChaosTest, OneShotExecuteFaultIsRetriedToSuccess) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  opts.max_retries = 2;
  QueryExecutor executor(registry, opts);
  fail::enable("service.executor.execute", "1*throw");
  const QueryResult r = executor.submit(request()).get();
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_FALSE(r.degraded);
  EXPECT_GE(executor.stats().retries, 1u);
}

TEST_F(ExecutorChaosTest, PersistentAlgorithmFaultDegradesToSequential) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 2;
  opts.max_retries = 1;
  QueryExecutor executor(registry, opts);
  fail::enable("core.bader_cong.expand", "throw");
  const QueryResult r = executor.submit(request("bader-cong")).get();
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.attempts, 2u);  // 1 + max_retries, all thrown
  EXPECT_EQ(r.forest.num_trees(), 1u);
  const ServiceStats s = executor.stats();
  EXPECT_EQ(s.served_ok, 1u);
  EXPECT_GE(s.degraded, 1u);
}

TEST_F(ExecutorChaosTest, ExhaustedRetriesWithoutFallbackIsTypedFailure) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  opts.max_retries = 1;
  opts.degrade_to_sequential = false;
  QueryExecutor executor(registry, opts);
  fail::enable("service.executor.execute", "throw");
  const QueryResult r = executor.submit(request()).get();
  EXPECT_EQ(r.status, QueryStatus::kFailed);
  EXPECT_NE(r.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(executor.stats().failed, 1u);
}

TEST_F(ExecutorChaosTest, AdmissionFaultResolvesFutureAsRejected) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  QueryExecutor executor(registry, opts);
  fail::enable("service.bounded_queue.push", "throw");
  auto future = executor.submit(request());
  const QueryResult r = future.get();  // must not hang or rethrow
  EXPECT_EQ(r.status, QueryStatus::kRejected);
  EXPECT_NE(r.error.find("admission failure"), std::string::npos);
  EXPECT_EQ(executor.stats().rejected, 1u);
}

TEST_F(ExecutorChaosTest, WatchdogHardCancelsOverrunningQuery) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  opts.max_retries = 0;
  opts.watchdog_factor = 2.0;
  opts.watchdog_poll_ms = 1;
  QueryExecutor executor(registry, opts);
  // The injected 1 s stall ignores the token, exactly like a wedged
  // traversal; the 10 ms deadline's hard limit (20 ms) must trip the
  // watchdog while the query is stuck.  The stall is much longer than the
  // hard limit so the watchdog thread still wins the race on oversubscribed
  // or sanitizer-slowed runs (TSan at ctest -j can starve it for hundreds
  // of milliseconds).
  fail::enable("service.executor.execute", "1*delay(1000)");
  SpanningTreeRequest req = request();
  req.timeout_ms = 10;
  const QueryResult r = executor.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kTimedOut);
  EXPECT_TRUE(r.watchdog_cancelled);
  EXPECT_GE(executor.stats().watchdog_cancels, 1u);
}

TEST_F(ExecutorChaosTest, ParanoidModeValidatesEveryResult) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 2;
  opts.paranoid_validate = true;
  QueryExecutor executor(registry, opts);
  const QueryResult r = executor.submit(request()).get();
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.validated);
  EXPECT_TRUE(r.validation.ok);
  EXPECT_EQ(executor.stats().invalid, 0u);
}

TEST_F(ExecutorChaosTest, FaultStormLeavesCountersConsistent) {
  ExecutorOptions opts;
  opts.num_workers = 2;
  opts.threads_per_query = 2;
  QueryExecutor executor(registry, opts);
  fail::enable_from_spec_list(
      "service.executor.execute=20%throw;"
      "core.bader_cong.expand=10%throw;"
      "service.registry.get=10%throw;"
      "sched.work_queue.pop=5%throw");
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(executor.submit(request()));
  for (auto& f : futures) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.status == QueryStatus::kOk ||
                r.status == QueryStatus::kRejected ||
                r.status == QueryStatus::kFailed)
        << to_string(r.status);
  }
  fail::disable_all();
  const ServiceStats s = executor.stats();
  EXPECT_EQ(s.submitted, 64u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected);
  EXPECT_EQ(s.accepted, s.served_ok + s.timed_out + s.not_found + s.failed +
                            s.invalid);
}

// --------------------------------------------------------------------------
// SV / HCS cooperative cancellation.

TEST(Cancellation, SvFamilyHonoursPreCancelledToken) {
  const Graph g = gen::make_family("random-nlogn", 2048, 11);
  CancelToken token;
  token.request_cancel();
  {
    SvOptions opts;
    opts.num_threads = 2;
    opts.cancel = &token;
    EXPECT_THROW(sv_spanning_tree(g, opts), CancelledError);
  }
  {
    SvOptions opts;
    opts.num_threads = 2;
    opts.use_locks = true;
    opts.cancel = &token;
    EXPECT_THROW(sv_spanning_tree(g, opts), CancelledError);
  }
  {
    HcsOptions opts;
    opts.num_threads = 2;
    opts.cancel = &token;
    EXPECT_THROW(hcs_spanning_tree(g, opts), CancelledError);
  }
}

TEST(Cancellation, SvRunsToCompletionWithLiveToken) {
  const Graph g = gen::make_family("random-nlogn", 1024, 3);
  CancelToken token;  // never cancelled, no deadline
  SvOptions opts;
  opts.num_threads = 2;
  opts.cancel = &token;
  const SpanningForest f = sv_spanning_tree(g, opts);
  EXPECT_EQ(f.num_vertices(), g.num_vertices());
}

TEST(Cancellation, ExecutorTimesOutSvQueryDeterministically) {
  GraphRegistry registry;
  registry.generate("g", "random-nlogn", 2048, 5);
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 2;
  QueryExecutor executor(registry, opts);
  SpanningTreeRequest req;
  req.graph = "g";
  req.algorithm = "sv";
  req.timeout_ms = 0;
  const QueryResult r = executor.submit(std::move(req)).get();
  EXPECT_EQ(r.status, QueryStatus::kTimedOut);
}

}  // namespace
