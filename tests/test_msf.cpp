// Tests for the minimum-spanning-forest extension: Kruskal, Prim, and
// parallel Borůvka must produce identical forests (weights are distinct, so
// the MSF is unique).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "msf/boruvka.hpp"
#include "msf/kruskal.hpp"
#include "msf/prim.hpp"
#include "msf/weighted.hpp"

namespace smpst {
namespace {

using msf::WeightedEdge;

std::vector<WeightedEdge> sorted_by_endpoints(std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return edges;
}

TEST(Weighted, RandomWeightsAreDeterministicAndDistinct) {
  const Graph g = gen::make_family("random-1.5n", 300, 7);
  const auto a = msf::with_random_weights(g, 1);
  const auto b = msf::with_random_weights(g, 1);
  EXPECT_EQ(a.edges, b.edges);
  const auto c = msf::with_random_weights(g, 2);
  EXPECT_NE(a.edges, c.edges);
  // Distinct weights (almost surely).
  std::vector<double> ws;
  for (const auto& e : a.edges) ws.push_back(e.w);
  std::sort(ws.begin(), ws.end());
  EXPECT_EQ(std::adjacent_find(ws.begin(), ws.end()), ws.end());
}

TEST(Kruskal, HandComputedExample) {
  // Square 0-1-2-3 with diagonal: MST picks the three lightest non-cyclic.
  msf::WeightedEdgeList wg;
  wg.num_vertices = 4;
  wg.edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {0, 3, 4.0}, {0, 2, 5.0}};
  const auto msf_edges = msf::kruskal(wg);
  ASSERT_EQ(msf_edges.size(), 3u);
  EXPECT_DOUBLE_EQ(msf::total_weight(msf_edges), 6.0);
}

TEST(Prim, MatchesKruskalOnHandExample) {
  msf::WeightedEdgeList wg;
  wg.num_vertices = 5;
  wg.edges = {{0, 1, 0.9}, {1, 2, 0.1}, {2, 3, 0.5}, {3, 4, 0.2},
              {0, 4, 0.3}, {1, 3, 0.8}};
  EXPECT_EQ(sorted_by_endpoints(msf::kruskal(wg)),
            sorted_by_endpoints(msf::prim(wg)));
}

TEST(Boruvka, SingleEdge) {
  msf::WeightedEdgeList wg;
  wg.num_vertices = 2;
  wg.edges = {{0, 1, 0.5}};
  const auto result = msf::boruvka(wg, {.num_threads = 2});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (WeightedEdge{0, 1, 0.5}));
}

TEST(Boruvka, EmptyAndSingleton) {
  msf::WeightedEdgeList empty;
  EXPECT_TRUE(msf::boruvka(empty, {.num_threads = 2}).empty());
  msf::WeightedEdgeList one;
  one.num_vertices = 1;
  EXPECT_TRUE(msf::boruvka(one, {.num_threads = 2}).empty());
}

class MsfAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(MsfAgreement, AllThreeAlgorithmsProduceTheUniqueMsf) {
  const Graph g = gen::make_family(GetParam(), 400, 99);
  const auto wg = msf::with_random_weights(g, 17);
  const auto k = sorted_by_endpoints(msf::kruskal(wg));
  const auto pr = sorted_by_endpoints(msf::prim(wg));
  EXPECT_EQ(k, pr);
  for (std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto b =
        sorted_by_endpoints(msf::boruvka(wg, {.num_threads = p}));
    EXPECT_EQ(k, b) << "boruvka p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MsfAgreement,
                         ::testing::Values("torus-rowmajor", "random-nlogn",
                                           "ad3", "geo-flat", "2d60",
                                           "chain-seq", "star", "rmat"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-' || c == '.') c = '_';
                           }
                           return name;
                         });

TEST(Boruvka, DisconnectedGraphGivesForest) {
  const Graph g = gen::disjoint_chains(3, 10, 2);
  const auto wg = msf::with_random_weights(g, 5);
  const auto b = msf::boruvka(wg, {.num_threads = 4});
  // 3 chains of 10 vertices: 9 edges each; isolated vertices add nothing.
  EXPECT_EQ(b.size(), 27u);
  EXPECT_EQ(sorted_by_endpoints(msf::kruskal(wg)), sorted_by_endpoints(b));
}

TEST(Boruvka, RoundCountIsLogarithmic) {
  const Graph g = gen::make_family("random-nlogn", 2000, 3);
  const auto wg = msf::with_random_weights(g, 11);
  msf::BoruvkaStats stats;
  msf::BoruvkaOptions opts;
  opts.num_threads = 4;
  opts.stats = &stats;
  const auto b = msf::boruvka(wg, opts);
  EXPECT_FALSE(b.empty());
  // Components at least halve per round: <= log2(n) + slack.
  EXPECT_LE(stats.rounds, 16u);
  EXPECT_EQ(stats.hooks, b.size());
}

TEST(Boruvka, MsfWeightIsMinimal) {
  // Compare against brute force on a tiny instance: every spanning tree of
  // K_5 enumerated via Kruskal on shuffled orders would be heavier.
  const Graph g = gen::complete(5);
  const auto wg = msf::with_random_weights(g, 23);
  const auto b = msf::boruvka(wg, {.num_threads = 2});
  const auto k = msf::kruskal(wg);
  EXPECT_DOUBLE_EQ(msf::total_weight(b), msf::total_weight(k));
  EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace smpst
