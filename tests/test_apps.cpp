// Tests for the applications layer: rooted-tree algebra (Euler tour, LCA,
// subtree structure), biconnectivity (bridges, articulation points, BCCs),
// and spanning-tree-based ear decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/biconnectivity.hpp"
#include "apps/ear_decomposition.hpp"
#include "apps/tree_algebra.hpp"
#include "cc/connected_components.hpp"
#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "gen/registry.hpp"
#include "gen/random_graph.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "support/prng.hpp"

namespace smpst {
namespace {

using apps::RootedForest;

SpanningForest manual_forest(std::vector<VertexId> parent) {
  SpanningForest f;
  f.parent = std::move(parent);
  return f;
}

TEST(RootedForest, BasicStructure) {
  //      0
  //     / \
  //    1   2
  //   / \
  //  3   4     and a second tree {5 <- 6}
  const auto f = manual_forest({0, 0, 0, 1, 1, 5, 5});
  const RootedForest rf(f);
  EXPECT_EQ(rf.roots(), (std::vector<VertexId>{0, 5}));
  EXPECT_EQ(rf.depth(0), 0u);
  EXPECT_EQ(rf.depth(4), 2u);
  EXPECT_EQ(rf.subtree_size(0), 5u);
  EXPECT_EQ(rf.subtree_size(1), 3u);
  EXPECT_EQ(rf.subtree_size(6), 1u);
  const auto kids1 = rf.children(1);
  EXPECT_EQ(std::vector<VertexId>(kids1.begin(), kids1.end()),
            (std::vector<VertexId>{3, 4}));
  EXPECT_TRUE(rf.children(6).empty());
}

TEST(RootedForest, AncestorAndPreorderRanges) {
  const auto f = manual_forest({0, 0, 0, 1, 1, 5, 5});
  const RootedForest rf(f);
  EXPECT_TRUE(rf.is_ancestor(0, 4));
  EXPECT_TRUE(rf.is_ancestor(1, 3));
  EXPECT_TRUE(rf.is_ancestor(3, 3));
  EXPECT_FALSE(rf.is_ancestor(2, 3));
  EXPECT_FALSE(rf.is_ancestor(0, 6));  // different tree
  // Preorder of a subtree is contiguous.
  EXPECT_EQ(rf.preorder(1) + 1, rf.preorder(3));
}

TEST(RootedForest, LcaOnKnownTree) {
  const auto f = manual_forest({0, 0, 0, 1, 1, 5, 5});
  const RootedForest rf(f);
  EXPECT_EQ(rf.lca(3, 4), 1u);
  EXPECT_EQ(rf.lca(3, 2), 0u);
  EXPECT_EQ(rf.lca(3, 1), 1u);
  EXPECT_EQ(rf.lca(0, 0), 0u);
  EXPECT_EQ(rf.lca(3, 6), kInvalidVertex);  // different trees
  EXPECT_EQ(rf.path_length(3, 4), 2u);
  EXPECT_EQ(rf.path_length(3, 2), 3u);
}

TEST(RootedForest, LcaAgainstBruteForceOnChainAndRandomTree) {
  const Graph g = gen::make_family("random-nlogn", 300, 5);
  const auto forest = bfs_spanning_tree(g);
  const RootedForest rf(forest);
  // Brute-force LCA: climb both to equal depth, then together.
  auto brute = [&](VertexId u, VertexId v) {
    while (rf.depth(u) > rf.depth(v)) u = forest.parent[u];
    while (rf.depth(v) > rf.depth(u)) v = forest.parent[v];
    while (u != v) {
      u = forest.parent[u];
      v = forest.parent[v];
    }
    return u;
  };
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.next_bounded(300));
    const auto v = static_cast<VertexId>(rng.next_bounded(300));
    ASSERT_EQ(rf.lca(u, v), brute(u, v)) << u << "," << v;
  }
}

TEST(RootedForest, EulerTourShape) {
  const auto f = manual_forest({0, 0, 0, 1, 1});
  const RootedForest rf(f);
  // 2n-1 entries for one tree; starts and ends at the root.
  const auto& tour = rf.euler_tour();
  ASSERT_EQ(tour.size(), 9u);
  EXPECT_EQ(tour.front(), 0u);
  EXPECT_EQ(tour.back(), 0u);
  // Consecutive entries are parent-child pairs.
  for (std::size_t i = 1; i < tour.size(); ++i) {
    const VertexId a = tour[i - 1];
    const VertexId b = tour[i];
    EXPECT_TRUE(f.parent[a] == b || f.parent[b] == a) << i;
  }
}

TEST(Biconnectivity, ChainIsAllBridges) {
  const Graph g = gen::chain(6);
  const auto r = apps::biconnectivity(g);
  EXPECT_EQ(r.bridges.size(), 5u);
  // Interior vertices are articulation points; endpoints are not.
  EXPECT_FALSE(r.is_articulation[0]);
  EXPECT_TRUE(r.is_articulation[2]);
  EXPECT_FALSE(r.is_articulation[5]);
  // Every vertex is its own 2-edge component.
  EXPECT_EQ(r.two_edge_component_count, 6u);
}

TEST(Biconnectivity, CycleHasNone) {
  const Graph g = gen::ring(8);
  const auto r = apps::biconnectivity(g);
  EXPECT_TRUE(r.bridges.empty());
  for (bool a : r.is_articulation) EXPECT_FALSE(a);
  EXPECT_EQ(r.two_edge_component_count, 1u);
  EXPECT_EQ(r.bcc_count, 1u);
}

TEST(Biconnectivity, BarbellGraph) {
  // Two triangles joined by a bridge 2-3.
  const Graph g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto r = apps::biconnectivity(g);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], (Edge{2, 3}));
  EXPECT_TRUE(r.is_articulation[2]);
  EXPECT_TRUE(r.is_articulation[3]);
  EXPECT_FALSE(r.is_articulation[0]);
  EXPECT_EQ(r.two_edge_component_count, 2u);
  EXPECT_EQ(r.bcc_count, 3u);  // triangle, bridge, triangle
}

TEST(Biconnectivity, StarCenterIsArticulation) {
  const Graph g = gen::star(5);
  const auto r = apps::biconnectivity(g);
  EXPECT_EQ(r.bridges.size(), 4u);
  EXPECT_TRUE(r.is_articulation[0]);
  for (VertexId v = 1; v < 5; ++v) EXPECT_FALSE(r.is_articulation[v]);
}

TEST(Biconnectivity, BridgesMatchBruteForceOnRandomGraphs) {
  // Brute force: an edge is a bridge iff removing it raises the component
  // count.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::random_graph(40, 55, seed);
    const auto fast = apps::find_bridges(g);
    std::set<Edge> expected;
    const auto base = cc::cc_union_find(g).count;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (u >= v) continue;
        std::vector<Edge> edges;
        for (VertexId x = 0; x < g.num_vertices(); ++x) {
          for (VertexId y : g.neighbors(x)) {
            if (x < y && !(x == u && y == v)) edges.push_back({x, y});
          }
        }
        const Graph cut = GraphBuilder::from_edges(g.num_vertices(), edges);
        if (cc::cc_union_find(cut).count > base) expected.insert({u, v});
      }
    }
    EXPECT_EQ(std::set<Edge>(fast.begin(), fast.end()), expected)
        << "seed " << seed;
  }
}

TEST(Biconnectivity, ArticulationMatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const Graph g = gen::random_graph(35, 50, seed);
    const auto fast = apps::find_articulation_points(g);
    std::vector<VertexId> expected;
    const auto base = cc::cc_union_find(g).count;
    for (VertexId cut = 0; cut < g.num_vertices(); ++cut) {
      std::vector<Edge> edges;
      for (VertexId x = 0; x < g.num_vertices(); ++x) {
        for (VertexId y : g.neighbors(x)) {
          if (x < y && x != cut && y != cut) edges.push_back({x, y});
        }
      }
      const Graph rest = GraphBuilder::from_edges(g.num_vertices(), edges);
      // Removing `cut` leaves it isolated: compare non-trivial components.
      if (cc::cc_union_find(rest).count - 1 > base) expected.push_back(cut);
    }
    EXPECT_EQ(fast, expected) << "seed " << seed;
  }
}

TEST(Biconnectivity, BccArcLabelsAreConsistent) {
  const Graph g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto r = apps::biconnectivity(g);
  // Both arcs of each undirected edge share a label, and all edges of one
  // triangle share one.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId a = g.offsets()[u]; a < g.offsets()[u + 1]; ++a) {
      EXPECT_NE(r.bcc_of_arc[a], kInvalidVertex);
    }
  }
}

TEST(EarDecomposition, RingIsOneEar) {
  const Graph g = gen::ring(6);
  const auto forest = bfs_spanning_tree(g);
  const auto ears = apps::ear_decomposition(g, forest);
  EXPECT_EQ(ears.num_ears(), 1u);
  EXPECT_EQ(ears.uncovered_tree_edges, 0u);
  // The single ear contains all 5 tree edges.
  EXPECT_EQ(ears.ear_offsets[1] - ears.ear_offsets[0], 5u);
}

TEST(EarDecomposition, TreeHasNoEarsOnlyBridges) {
  const Graph g = gen::binary_tree(15);
  const auto forest = bfs_spanning_tree(g);
  const auto ears = apps::ear_decomposition(g, forest);
  EXPECT_EQ(ears.num_ears(), 0u);
  EXPECT_EQ(ears.uncovered_tree_edges, 14u);
}

TEST(EarDecomposition, UncoveredEdgesAreExactlyTreeBridges) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::random_graph(60, 75, seed);
    const auto forest = bfs_spanning_tree(g);
    const auto ears = apps::ear_decomposition(g, forest);
    const auto bic = apps::biconnectivity(g);
    // A tree edge is uncovered iff it is a bridge of g.
    std::set<Edge> bridges(bic.bridges.begin(), bic.bridges.end());
    VertexId uncovered = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (forest.parent[v] == v) continue;
      const VertexId p = forest.parent[v];
      const Edge e = p < v ? Edge{p, v} : Edge{v, p};
      const bool is_bridge = bridges.count(e) > 0;
      const bool covered = ears.ear_of_tree_edge[v] != kInvalidVertex;
      EXPECT_EQ(covered, !is_bridge) << "edge {" << e.u << "," << e.v << "}";
      if (!covered) ++uncovered;
    }
    EXPECT_EQ(uncovered, ears.uncovered_tree_edges);
  }
}

TEST(EarDecomposition, EarCountIsCyclomaticNumber) {
  // Every non-tree edge seeds exactly one ear: k = m - n + components.
  const Graph g = gen::make_family("2d60", 400, 9);
  const auto forest = bfs_spanning_tree(g);
  const auto ears = apps::ear_decomposition(g, forest);
  const auto comps = cc::cc_union_find(g).count;
  EXPECT_EQ(ears.num_ears(), g.num_edges() - g.num_vertices() + comps);
}

TEST(EarDecomposition, WorksWithParallelSpanningTree) {
  const Graph g = gen::make_family("geo-hier", 1500, 3);
  BaderCongOptions o;
  o.num_threads = 4;
  const auto forest = bader_cong_spanning_tree(g, o);
  const auto ears = apps::ear_decomposition(g, forest);
  // Member lists and labels agree.
  for (VertexId e = 0; e < ears.num_ears(); ++e) {
    for (EdgeId i = ears.ear_offsets[e]; i < ears.ear_offsets[e + 1]; ++i) {
      EXPECT_EQ(ears.ear_of_tree_edge[ears.ear_members[i]], e);
    }
  }
}

}  // namespace
}  // namespace smpst
