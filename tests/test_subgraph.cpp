// Tests for subgraph extraction, k-core decomposition, and the
// dissemination barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gen/random_graph.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"
#include "sched/barrier.hpp"

namespace smpst {
namespace {

TEST(InducedSubgraph, DropsVerticesAndIncidentEdges) {
  // Triangle + pendant; drop the pendant.
  const Graph g = GraphBuilder::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto sub = induced_subgraph(g, {true, true, true, false});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.to_original, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(sub.to_subgraph[3], kInvalidVertex);
}

TEST(InducedSubgraph, EmptyAndFullMasks) {
  const Graph g = gen::torus2d(4, 4);
  const auto none = induced_subgraph(g, std::vector<bool>(16, false));
  EXPECT_EQ(none.graph.num_vertices(), 0u);
  const auto all = induced_subgraph(g, std::vector<bool>(16, true));
  EXPECT_EQ(all.graph, g);
}

TEST(CoreNumbers, ChainIsOneCore) {
  const auto core = core_numbers(gen::chain(10));
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(core[v], 1u) << v;
}

TEST(CoreNumbers, CompleteGraphIsNMinusOneCore) {
  const auto core = core_numbers(gen::complete(6));
  for (VertexId c : core) EXPECT_EQ(c, 5u);
}

TEST(CoreNumbers, TriangleWithPendant) {
  const Graph g = GraphBuilder::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto core = core_numbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(CoreNumbers, IsolatedVerticesAreZeroCore) {
  const Graph g = GraphBuilder::from_edges(3, {{0, 1}});
  const auto core = core_numbers(g);
  EXPECT_EQ(core[2], 0u);
}

TEST(CoreNumbers, DefinitionHoldsOnRandomGraphs) {
  // Property: inside the k-core every vertex has >= k neighbours within it.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::random_graph(200, 600, seed);
    const auto core = core_numbers(g);
    VertexId max_core = 0;
    for (VertexId c : core) max_core = std::max(max_core, c);
    for (VertexId k = 1; k <= max_core; ++k) {
      const auto sub = k_core(g, k);
      for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
        EXPECT_GE(sub.graph.degree(v), k)
            << "seed " << seed << " k " << k << " vertex "
            << sub.to_original[v];
      }
    }
    // Maximality: the (k_max+1)-core is empty.
    EXPECT_EQ(k_core(g, max_core + 1).graph.num_vertices(), 0u);
  }
}

TEST(KCore, TorusIsItsOwn2Core) {
  const Graph g = gen::torus2d(5, 5);
  const auto sub = k_core(g, 2);
  EXPECT_EQ(sub.graph.num_vertices(), 25u);
  EXPECT_EQ(k_core(g, 5).graph.num_vertices(), 0u);
}

TEST(DisseminationBarrier, SeparatesPhases) {
  constexpr std::size_t kThreads = 6;
  constexpr int kPhases = 200;
  DisseminationBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int ph = 0; ph < kPhases; ++ph) {
        counter.fetch_add(1);
        barrier.arrive_and_wait(t);
        if (counter.load() < (ph + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(DisseminationBarrier, SinglePartyIsNoOp) {
  DisseminationBarrier barrier(1);
  barrier.arrive_and_wait(0);
  barrier.arrive_and_wait(0);  // reusable
}

TEST(DisseminationBarrier, NonPowerOfTwoParties) {
  constexpr std::size_t kThreads = 5;
  DisseminationBarrier barrier(kThreads);
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) barrier.arrive_and_wait(t);
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), static_cast<int>(kThreads));
}

}  // namespace
}  // namespace smpst
