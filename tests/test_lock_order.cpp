// Tests for the runtime lock-order layer (src/support/lock_order.hpp).
//
// The death tests only run when the build has SMPST_LOCK_ORDER on (the Debug
// default); the zero-overhead assertions only bind when it is off (Release /
// sanitizer builds), proving the layer compiles away completely.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "sched/spinlock.hpp"
#include "support/lock_order.hpp"
#include "support/thread_annotations.hpp"

namespace smpst {
namespace {

// When the checks are compiled out the Tracked member is an empty
// [[no_unique_address]] field: the wrappers must cost nothing.
static_assert(lockdep::kEnabled || sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must not grow when SMPST_LOCK_ORDER is OFF");
static_assert(lockdep::kEnabled || sizeof(SpinLock) == sizeof(std::atomic<bool>),
              "SpinLock must not grow when SMPST_LOCK_ORDER is OFF");

TEST(LockOrder, ZeroOverheadWhenDisabled) {
  if (lockdep::kEnabled) {
    GTEST_SKIP() << "SMPST_LOCK_ORDER is ON in this build";
  }
  // The static_asserts above carry the real proof; also show the stub hook
  // reports an empty held stack.
  Mutex m{lockdep::rank::kSession};
  LockGuard<Mutex> lk(m);
  EXPECT_EQ(lockdep::held_count(), 0u);
}

TEST(LockOrder, CorrectRankOrderPasses) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  Mutex session{lockdep::rank::kSession};
  Mutex mailbox{lockdep::rank::kNetMailbox};
  {
    LockGuard<Mutex> a(session);
    EXPECT_EQ(lockdep::held_count(), 1u);
    LockGuard<Mutex> b(mailbox);
    EXPECT_EQ(lockdep::held_count(), 2u);
  }
  EXPECT_EQ(lockdep::held_count(), 0u);
}

TEST(LockOrder, OutOfOrderUnlockSupported) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  Mutex a{lockdep::rank::kSession};
  Mutex b{lockdep::rank::kNetMailbox};
  a.lock();
  b.lock();
  a.unlock();  // release the *older* lock first
  EXPECT_EQ(lockdep::held_count(), 1u);
  b.unlock();
  EXPECT_EQ(lockdep::held_count(), 0u);
}

TEST(LockOrder, TryLockInversionDoesNotAbort) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  // try_lock never blocks, so it cannot complete a deadlock cycle; an
  // inverted try-acquisition is recorded but must not fire the assertion.
  Mutex low{lockdep::rank::kSession};
  Mutex high{lockdep::rank::kNetMailbox};
  LockGuard<Mutex> a(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(lockdep::held_count(), 2u);
  low.unlock();
}

TEST(LockOrder, CondVarWaitReleasesAndReacquires) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  Mutex m{lockdep::rank::kSession};
  CondVar cv;
  LockGuard<Mutex> lk(m);
  // condition_variable_any waits through Mutex::unlock()/lock(), so the
  // lockdep hooks see the handoff; the lock must be held again on return.
  (void)cv.wait_for(m, std::chrono::milliseconds(1));
  EXPECT_EQ(lockdep::held_count(), 1u);
}

TEST(LockOrder, SpinLockParticipates) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  Mutex pool{lockdep::rank::kPoolState};
  SpinLock queue{lockdep::rank::kWorkQueue};
  LockGuard<Mutex> a(pool);
  LockGuard<SpinLock> b(queue);  // 60 then 70: increasing, fine
  EXPECT_EQ(lockdep::held_count(), 2u);
}

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, InvertedRankedAcquisitionAborts) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low{lockdep::rank::kSession};      // rank 20
        Mutex high{lockdep::rank::kNetMailbox};  // rank 30
        LockGuard<Mutex> a(high);
        LockGuard<Mutex> b(low);  // descending rank: must abort
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, SameRankNestingAborts) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{lockdep::rank::kSession};
        Mutex b{lockdep::rank::kSession};
        LockGuard<Mutex> la(a);
        LockGuard<Mutex> lb(b);
      },
      "same-rank locks may never nest");
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m{lockdep::rank::kSession};
        m.lock();
        m.lock();
      },
      "recursive acquisition");
}

TEST(LockOrderDeathTest, UnrankedPairInversionAborts) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a;  // unranked: covered by the dynamic pair registry
        Mutex b;
        {
          LockGuard<Mutex> la(a);
          LockGuard<Mutex> lb(b);  // registry learns a -> b
        }
        {
          LockGuard<Mutex> lb(b);
          LockGuard<Mutex> la(a);  // inversion of the learned order
        }
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, PairInversionAcrossThreadsAborts) {
  if (!lockdep::kEnabled) GTEST_SKIP() << "SMPST_LOCK_ORDER is OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The whole point of the registry: thread 1 establishes a -> b, thread 2
  // later nests b -> a without ever contending — still a deadlock hazard,
  // still aborts.
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        std::thread t([&] {
          LockGuard<Mutex> la(a);
          LockGuard<Mutex> lb(b);
        });
        t.join();
        LockGuard<Mutex> lb(b);
        LockGuard<Mutex> la(a);
      },
      "lock-order violation");
}

}  // namespace
}  // namespace smpst
