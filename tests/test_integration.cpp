// Integration tests across modules: preprocessing + parallel traversal +
// expansion pipelines, the algorithm registry, cross-algorithm agreement on
// component structure, and I/O round trips through the full stack.
#include <gtest/gtest.h>

#include <cstdio>

#include "cc/connected_components.hpp"
#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"
#include "graph/transform.hpp"
#include "msf/boruvka.hpp"
#include "msf/kruskal.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

TEST(Registry, AlgorithmListAndDispatch) {
  EXPECT_TRUE(is_algorithm("bader-cong"));
  EXPECT_TRUE(is_algorithm("bfs"));
  EXPECT_FALSE(is_algorithm("quantum"));
  ThreadPool pool(2);
  const Graph g = gen::make_family("ad3", 300, 4);
  for (const auto& spec : algorithms()) {
    const auto f = run_algorithm(spec.name, g, pool);
    const auto report = validate_spanning_forest(g, f);
    EXPECT_TRUE(report) << spec.name << ": " << report.error;
  }
  EXPECT_THROW(run_algorithm("quantum", g, pool), std::invalid_argument);
}

TEST(Integration, AllAlgorithmsAgreeOnComponentStructure) {
  const Graph g = gen::disjoint_chains(4, 100, 7);
  ThreadPool pool(4);
  const auto truth = cc::cc_union_find(g);
  for (const auto& spec : algorithms()) {
    const auto f = run_algorithm(spec.name, g, pool);
    const auto labels = cc::cc_from_forest(f);
    EXPECT_EQ(labels.count, truth.count) << spec.name;
    EXPECT_TRUE(cc::same_partition(labels.label, truth.label)) << spec.name;
  }
}

TEST(Integration, Degree2PipelineWithParallelTraversal) {
  // Preprocess (degree-2 elimination) -> parallel spanning tree on the
  // reduced graph -> expansion back to the original: the full §2 pipeline.
  const Graph g = gen::make_family("geo-hier", 2000, 21);
  const auto red = eliminate_degree2(g);
  EXPECT_LT(red.reduced.num_vertices(), g.num_vertices());

  BaderCongOptions o;
  o.num_threads = 4;
  const auto reduced_forest = bader_cong_spanning_tree(red.reduced, o);
  ASSERT_TRUE(validate_spanning_forest(red.reduced, reduced_forest));

  SpanningForest full;
  full.parent = expand_parent_forest(g, red, reduced_forest.parent);
  const auto report = validate_spanning_forest(g, full);
  ASSERT_TRUE(report) << report.error;
}

TEST(Integration, Degree2PipelineOnEveryFamily) {
  ThreadPool pool(4);
  for (const char* family : {"ad3", "chain-seq", "geo-flat", "2d60"}) {
    const Graph g = gen::make_family(family, 800, 13);
    const auto red = eliminate_degree2(g);
    BaderCongOptions o;
    o.num_threads = 4;
    const auto rf = bader_cong_spanning_tree(red.reduced, pool, o);
    SpanningForest full;
    full.parent = expand_parent_forest(g, red, rf.parent);
    const auto report = validate_spanning_forest(g, full);
    ASSERT_TRUE(report) << family << ": " << report.error;
  }
}

TEST(Integration, RelabelInvariance) {
  // The traversal algorithm's validity is labelling-independent; run it on
  // several permutations of the same graph.
  const Graph base = gen::make_family("torus-rowmajor", 400, 2);
  ThreadPool pool(4);
  for (std::uint64_t s : {1ULL, 2ULL, 3ULL}) {
    const Graph g =
        apply_permutation(base, random_permutation(base.num_vertices(), s));
    BaderCongOptions o;
    o.num_threads = 4;
    const auto f = bader_cong_spanning_tree(g, pool, o);
    ASSERT_TRUE(validate_spanning_forest(g, f)) << "perm seed " << s;
  }
}

TEST(Integration, SaveLoadThenSolve) {
  const Graph g = gen::make_family("geo-flat", 500, 31);
  const std::string path = "/tmp/smpst_integration.bin";
  io::save_graph(g, path);
  const Graph loaded = io::load_graph(path);
  EXPECT_EQ(loaded, g);
  BaderCongOptions o;
  o.num_threads = 2;
  const auto f = bader_cong_spanning_tree(loaded, o);
  ASSERT_TRUE(validate_spanning_forest(loaded, f));
  std::remove(path.c_str());
}

TEST(Integration, SpanningTreeIsMsfWithUnitWeights) {
  // With all weights equal the MSF edge count equals any spanning forest's.
  const Graph g = gen::make_family("random-1.5n", 600, 8);
  auto wg = msf::with_random_weights(g, 3);
  const auto msf_edges = msf::kruskal(wg);
  BaderCongOptions o;
  o.num_threads = 4;
  const auto f = bader_cong_spanning_tree(g, o);
  EXPECT_EQ(msf_edges.size(), f.num_tree_edges());
}

TEST(Integration, BoruvkaLabelsMatchTraversalComponents) {
  const Graph g = gen::disjoint_chains(3, 40, 5);
  const auto wg = msf::with_random_weights(g, 9);
  const auto b = msf::boruvka(wg, {.num_threads = 4});
  BaderCongOptions o;
  o.num_threads = 4;
  const auto f = bader_cong_spanning_tree(g, o);
  EXPECT_EQ(b.size(), f.num_tree_edges());
}

}  // namespace
}  // namespace smpst
