// Tests for Tarjan-Vishkin parallel biconnectivity: agreement with the
// sequential lowpoint oracle across families, spanning tree algorithms, and
// thread counts.
#include <gtest/gtest.h>

#include <string>

#include "apps/biconnectivity.hpp"
#include "apps/tarjan_vishkin.hpp"
#include "cc/connected_components.hpp"
#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

/// Per-canonical-edge BCC labels from the sequential lowpoint result, in the
/// same edge order Tarjan-Vishkin uses.
std::vector<VertexId> sequential_edge_labels(const Graph& g) {
  const auto r = apps::biconnectivity(g);
  std::vector<VertexId> labels;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId a = g.offsets()[u]; a < g.offsets()[u + 1]; ++a) {
      if (u < g.targets()[a]) labels.push_back(r.bcc_of_arc[a]);
    }
  }
  return labels;
}

void expect_matches_sequential(const Graph& g, const SpanningForest& forest,
                               std::size_t threads,
                               const std::string& context) {
  cc::ParallelCcOptions opts;
  opts.num_threads = threads;
  const auto tv = apps::tarjan_vishkin_bcc(g, forest, opts);
  const auto seq = sequential_edge_labels(g);
  ASSERT_EQ(tv.bcc_of_edge.size(), seq.size()) << context;
  EXPECT_TRUE(cc::same_partition(tv.bcc_of_edge, seq)) << context;
}

TEST(TarjanVishkin, Triangle) {
  const Graph g = GraphBuilder::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto tv = apps::tarjan_vishkin_bcc(g, bfs_spanning_tree(g));
  EXPECT_EQ(tv.bcc_count, 1u);
  EXPECT_TRUE(tv.bridges().empty());
}

TEST(TarjanVishkin, BarbellSplitsIntoThree) {
  const Graph g = GraphBuilder::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto tv = apps::tarjan_vishkin_bcc(g, bfs_spanning_tree(g));
  EXPECT_EQ(tv.bcc_count, 3u);
  const auto bridges = tv.bridges();
  ASSERT_EQ(bridges.size(), 1u);
  EXPECT_EQ(bridges[0], (Edge{2, 3}));
}

TEST(TarjanVishkin, ChainIsAllSingletons) {
  const Graph g = gen::chain(10);
  const auto tv = apps::tarjan_vishkin_bcc(g, bfs_spanning_tree(g));
  EXPECT_EQ(tv.bcc_count, 9u);
  EXPECT_EQ(tv.bridges().size(), 9u);
}

TEST(TarjanVishkin, EmptyAndEdgeless) {
  const Graph empty;
  const auto tv = apps::tarjan_vishkin_bcc(empty, SpanningForest{});
  EXPECT_EQ(tv.bcc_count, 0u);
  const Graph iso = GraphBuilder::from_edges(3, {});
  SpanningForest f;
  f.parent = {0, 1, 2};
  EXPECT_EQ(apps::tarjan_vishkin_bcc(iso, f).bcc_count, 0u);
}

class TvFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(TvFamilies, MatchesSequentialOracle) {
  const Graph g = gen::make_family(GetParam(), 500, 2026);
  const auto forest = bfs_spanning_tree(g);
  for (std::size_t p : {std::size_t{1}, std::size_t{4}}) {
    expect_matches_sequential(g, forest, p,
                              GetParam() + " p=" + std::to_string(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, TvFamilies,
                         ::testing::Values("torus-rowmajor", "random-nlogn",
                                           "random-1.5n", "2d60", "3d40",
                                           "ad3", "geo-flat", "geo-hier",
                                           "rmat", "star"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-' || c == '.') c = '_';
                           }
                           return name;
                         });

TEST(TarjanVishkin, WorksWithAnySpanningTreeAlgorithm) {
  // The whole point of TV: no DFS tree required. Feed it trees from every
  // algorithm in the registry (shapes differ wildly; BCCs must not).
  const Graph g = gen::make_family("geo-flat", 600, 5);
  ThreadPool pool(4);
  for (const auto& spec : algorithms()) {
    const auto forest = run_algorithm(spec.name, g, pool);
    expect_matches_sequential(g, forest, 4, "tree from " + spec.name);
  }
}

TEST(TarjanVishkin, RandomizedTreesAgreeWithEachOther) {
  const Graph g = gen::make_family("random-1.5n", 800, 31);
  BaderCongOptions o;
  o.num_threads = 4;
  const auto tv1 =
      apps::tarjan_vishkin_bcc(g, bader_cong_spanning_tree(g, o));
  o.seed = 999;
  const auto tv2 =
      apps::tarjan_vishkin_bcc(g, bader_cong_spanning_tree(g, o));
  EXPECT_EQ(tv1.bcc_count, tv2.bcc_count);
  EXPECT_TRUE(cc::same_partition(tv1.bcc_of_edge, tv2.bcc_of_edge));
}

}  // namespace
}  // namespace smpst
