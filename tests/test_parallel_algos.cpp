// Tests for the extension algorithms: level-synchronous parallel BFS, the
// modified HCS spanning tree, and random-mating connectivity.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cc/connected_components.hpp"
#include "core/bfs.hpp"
#include "core/hcs.hpp"
#include "core/parallel_bfs.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

using AlgoParam = std::tuple<std::string, int>;

class ParallelBfsSweep : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(ParallelBfsSweep, ProducesValidForest) {
  const auto& [family, threads] = GetParam();
  const Graph g = gen::make_family(family, 500, 77);
  ParallelBfsOptions opts;
  opts.num_threads = static_cast<std::size_t>(threads);
  const auto f = parallel_bfs_spanning_tree(g, opts);
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << family << " p=" << threads << ": " << report.error;
}

class HcsSweep : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(HcsSweep, ProducesValidForest) {
  const auto& [family, threads] = GetParam();
  const Graph g = gen::make_family(family, 500, 77);
  HcsOptions opts;
  opts.num_threads = static_cast<std::size_t>(threads);
  const auto f = hcs_spanning_tree(g, opts);
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << family << " p=" << threads << ": " << report.error;
}

const auto kFamilies =
    ::testing::Values("torus-rowmajor", "torus-random", "random-nlogn", "2d60",
                      "ad3", "geo-hier", "chain-seq", "chain-random", "star",
                      "rmat");
const auto kThreads = ::testing::Values(1, 2, 4, 8);

const auto name_fn = [](const auto& info) {
  std::string name = std::get<0>(info.param);
  for (auto& c : name) {
    if (c == '-' || c == '.') c = '_';
  }
  return name + "_p" + std::to_string(std::get<1>(info.param));
};

INSTANTIATE_TEST_SUITE_P(Families, ParallelBfsSweep,
                         ::testing::Combine(kFamilies, kThreads), name_fn);
INSTANTIATE_TEST_SUITE_P(Families, HcsSweep,
                         ::testing::Combine(kFamilies, kThreads), name_fn);

TEST(ParallelBfs, TreeDepthsAreBfsDistances) {
  // Level-synchronous BFS produces shortest-path trees (per source), unlike
  // the work-stealing traversal whose trees have no depth guarantee.
  const Graph g = gen::make_family("torus-rowmajor", 400, 3);
  ParallelBfsOptions opts;
  opts.num_threads = 4;
  const auto f = parallel_bfs_spanning_tree(g, opts);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  const auto root = f.roots().front();
  const auto levels = bfs_levels(g, root);
  const auto depths = f.depths();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(depths[v], levels[v]) << v;
  }
}

TEST(ParallelBfs, StatsReportLevels) {
  const Graph g = gen::chain(200);
  ParallelBfsStats stats;
  ParallelBfsOptions opts;
  opts.num_threads = 2;
  opts.stats = &stats;
  const auto f = parallel_bfs_spanning_tree(g, opts);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  EXPECT_EQ(stats.levels, 200u);  // a chain has n levels from one end
  EXPECT_GE(stats.barriers, stats.levels);
  EXPECT_EQ(stats.max_frontier, 1u);
}

TEST(ParallelBfs, EmptyAndSingleton) {
  ParallelBfsOptions opts;
  opts.num_threads = 2;
  EXPECT_EQ(parallel_bfs_spanning_tree(Graph{}, opts).num_vertices(), 0u);
  const Graph one = GraphBuilder::from_edges(1, {});
  EXPECT_EQ(parallel_bfs_spanning_tree(one, opts).num_trees(), 1u);
}

TEST(Hcs, IterationCountReported) {
  const Graph g = gen::make_family("torus-random", 400, 5);
  SvStats stats;
  HcsOptions opts;
  opts.num_threads = 4;
  opts.stats = &stats;
  const auto f = hcs_spanning_tree(g, opts);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_EQ(stats.grafts, f.num_tree_edges());
  EXPECT_GT(stats.barriers, 0u);
}

TEST(Hcs, MinHookingConvergesFastOnStar) {
  // Every leaf's only neighbour is the centre: one iteration suffices.
  const Graph g = gen::star(100);
  SvStats stats;
  HcsOptions opts;
  opts.num_threads = 4;
  opts.stats = &stats;
  ASSERT_TRUE(validate_spanning_forest(g, hcs_spanning_tree(g, opts)));
  EXPECT_LE(stats.iterations, 2u);
}

TEST(RandomMate, MatchesGroundTruthAcrossFamilies) {
  for (const char* family :
       {"torus-rowmajor", "random-1.5n", "ad3", "geo-hier", "chain-seq"}) {
    const Graph g = gen::make_family(family, 500, 11);
    const auto truth = cc::cc_union_find(g);
    for (std::size_t p : {std::size_t{1}, std::size_t{4}}) {
      const auto rm = cc::cc_random_mate(g, {.num_threads = p});
      EXPECT_EQ(rm.count, truth.count) << family << " p=" << p;
      EXPECT_TRUE(cc::same_partition(rm.label, truth.label))
          << family << " p=" << p;
    }
  }
}

TEST(RandomMate, DifferentSeedsSamePartition) {
  const Graph g = gen::make_family("2d60", 400, 21);
  const auto a = cc::cc_random_mate(g, {.num_threads = 2}, /*seed=*/1);
  const auto b = cc::cc_random_mate(g, {.num_threads = 2}, /*seed=*/999);
  EXPECT_EQ(a.count, b.count);
  EXPECT_TRUE(cc::same_partition(a.label, b.label));
}

TEST(RandomMate, EmptyGraph) {
  EXPECT_EQ(cc::cc_random_mate(Graph{}, {.num_threads = 2}).count, 0u);
}

}  // namespace
}  // namespace smpst
