// Unit coverage for the TraversalStats aggregation helpers that feed the
// cost-model tables and the service's per-query statistics.
#include <gtest/gtest.h>

#include "core/instrumentation.hpp"

namespace smpst {
namespace {

TEST(TraversalStats, EmptyPerThreadIsNeutral) {
  TraversalStats stats;
  EXPECT_EQ(stats.total_processed(), 0u);
  EXPECT_EQ(stats.total_steals(), 0u);
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 1.0);
  EXPECT_EQ(stats.duplicate_expansions, 0u);
}

TEST(TraversalStats, SingleThreadIsPerfectlyBalanced) {
  TraversalStats stats;
  stats.per_thread.resize(1);
  stats.per_thread[0].vertices_processed = 1234;
  stats.per_thread[0].steals_succeeded = 5;
  EXPECT_EQ(stats.total_processed(), 1234u);
  EXPECT_EQ(stats.total_steals(), 5u);
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 1.0);
}

TEST(TraversalStats, SingleThreadWithNoWorkIsBalanced) {
  TraversalStats stats;
  stats.per_thread.resize(1);  // all counters zero: max/mean would be 0/0
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 1.0);
}

TEST(TraversalStats, ZeroWorkAcrossManyThreadsIsBalanced) {
  TraversalStats stats;
  stats.per_thread.resize(8);
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 1.0);
}

TEST(TraversalStats, ImbalanceIsMaxOverMean) {
  TraversalStats stats;
  stats.per_thread.resize(4);
  stats.per_thread[0].vertices_processed = 100;
  stats.per_thread[1].vertices_processed = 100;
  stats.per_thread[2].vertices_processed = 100;
  stats.per_thread[3].vertices_processed = 500;
  // mean = 200, max = 500.
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 2.5);
  EXPECT_EQ(stats.total_processed(), 800u);
}

TEST(TraversalStats, PerfectBalanceIsOne) {
  TraversalStats stats;
  stats.per_thread.resize(3);
  for (auto& t : stats.per_thread) t.vertices_processed = 42;
  EXPECT_DOUBLE_EQ(stats.load_imbalance(), 1.0);
}

TEST(TraversalStats, TotalStealsSumsOnlySuccesses) {
  TraversalStats stats;
  stats.per_thread.resize(2);
  stats.per_thread[0].steal_attempts = 50;
  stats.per_thread[0].steals_succeeded = 3;
  stats.per_thread[1].steal_attempts = 10;
  stats.per_thread[1].steals_succeeded = 7;
  EXPECT_EQ(stats.total_steals(), 10u);
}

TEST(TraversalStats, DuplicateExpansionsAccounting) {
  // duplicate_expansions is computed by the traversal as total dequeues minus
  // distinct vertices; verify the arithmetic relationship holds for a
  // synthetic run of 4 threads expanding 1000 distinct vertices 1003 times.
  TraversalStats stats;
  stats.per_thread.resize(4);
  stats.per_thread[0].vertices_processed = 250;
  stats.per_thread[1].vertices_processed = 251;
  stats.per_thread[2].vertices_processed = 252;
  stats.per_thread[3].vertices_processed = 250;
  stats.duplicate_expansions = stats.total_processed() - 1000;
  EXPECT_EQ(stats.duplicate_expansions, 3u);
}

}  // namespace
}  // namespace smpst
