// Compile-and-run check for the umbrella header: a downstream user's
// "hello world" using only #include "smpst.hpp".
#include <gtest/gtest.h>

#include "smpst.hpp"

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  using namespace smpst;
  const Graph g = gen::make_family("geo-hier", 800, 7);

  BaderCongOptions opts;
  opts.num_threads = 4;
  const SpanningForest forest = bader_cong_spanning_tree(g, opts);
  ASSERT_TRUE(validate_spanning_forest(g, forest).ok);

  const auto cc = cc::cc_from_forest(forest);
  EXPECT_GE(cc.count, 1u);

  const auto wg = msf::with_random_weights(g, 1);
  EXPECT_EQ(msf::boruvka(wg, {.num_threads = 2}).size(),
            forest.num_tree_edges());

  const apps::RootedForest rf(forest);
  EXPECT_EQ(rf.num_vertices(), g.num_vertices());

  const auto machine = model::sun_e4500();
  model::VirtualRunOptions vo;
  vo.processors = 8;
  EXPECT_GT(model::virtual_traversal(g, vo).seconds_on(machine), 0.0);
}

}  // namespace
