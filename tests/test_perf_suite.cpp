// Tests for the perf_suite baseline harness: the emitted BENCH_smpst.json
// must parse as JSON, carry the advertised schema version, and publish a
// positive, finite speedup for every (family, algorithm, p) cell — the
// properties the cross-commit perf trajectory depends on.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>

#include "bench_util/cli.hpp"
#include "bench_util/perf_suite.hpp"

namespace smpst::bench {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON syntax checker (no document model): accepts exactly the
// RFC 8259 grammar, so NaN/Infinity tokens, trailing commas, or unbalanced
// brackets in the writer fail the test. Good enough to prove "parses".
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

PerfSuiteConfig tiny_config(std::uint64_t seed) {
  PerfSuiteConfig cfg;
  cfg.families = {"random-nlogn", "torus-rowmajor"};
  cfg.n = 512;
  cfg.threads = {1, 2, 4};
  cfg.repeats = 2;
  cfg.seed = seed;
  return cfg;
}

TEST(PerfSuite, JsonParsesAndSchemaVersionMatches) {
  std::ostringstream progress;
  const auto result = run_perf_suite(tiny_config(1), progress);
  std::ostringstream json;
  write_perf_suite_json(result, json);
  const std::string doc = json.str();

  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema_version\": " +
                     std::to_string(kPerfSuiteSchemaVersion)),
            std::string::npos);
  EXPECT_NE(doc.find("\"benchmark\": \"smpst.perf_suite\""),
            std::string::npos);
  // JSON has no representation for these; the writer must never emit them.
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
}

// Property fuzz over seeds: every cell of every run must publish a positive,
// finite speedup at p in {1, 2, 4}, and the JSON must stay syntactically
// valid — run-to-run timing noise must never corrupt the document.
TEST(PerfSuite, SpeedupsPositiveAndFiniteAcrossSeeds) {
  for (const std::uint64_t seed : {7ULL, 99ULL, 2024ULL}) {
    std::ostringstream progress;
    const auto result = run_perf_suite(tiny_config(seed), progress);

    ASSERT_EQ(result.families.size(), 2u);
    for (const auto& fam : result.families) {
      EXPECT_GT(fam.n, 0u);
      EXPECT_GT(fam.seq_bfs.median_s, 0.0);
      // 3 thread counts x 4 algorithms (bader_cong, parallel_bfs,
      // parallel_bfs_dir, sv).
      ASSERT_EQ(fam.runs.size(), 12u) << fam.family;
      for (const auto& run : fam.runs) {
        EXPECT_TRUE(run.p == 1 || run.p == 2 || run.p == 4);
        EXPECT_GT(run.speedup_vs_seq_bfs, 0.0)
            << fam.family << " " << run.algo << " p=" << run.p;
        EXPECT_TRUE(std::isfinite(run.speedup_vs_seq_bfs))
            << fam.family << " " << run.algo << " p=" << run.p;
        EXPECT_GT(run.timing.median_s, 0.0);
        EXPECT_EQ(run.timing.repetitions, 2u);
      }
    }

    std::ostringstream json;
    write_perf_suite_json(result, json);
    EXPECT_TRUE(JsonChecker(json.str()).valid()) << "seed=" << seed;
  }
}

TEST(PerfSuite, RejectsUnknownFamily) {
  PerfSuiteConfig cfg = tiny_config(1);
  cfg.families = {"no-such-family"};
  std::ostringstream progress;
  EXPECT_THROW(run_perf_suite(cfg, progress), std::invalid_argument);
}

TEST(PerfSuite, CliRoundTrip) {
  const char* argv[] = {"perf_suite",      "--scale=tiny",
                        "--threads=1,2",   "--repeats=3",
                        "--families=ad3,chain-seq", "--no-sv", "--pin",
                        "--no-dir",        "--no-interleave"};
  const Cli cli(9, argv);
  const auto cfg = perf_suite_config_from_cli(cli);
  EXPECT_EQ(cfg.n, 4096u);
  EXPECT_EQ(cfg.threads, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(cfg.repeats, 3u);
  EXPECT_EQ(cfg.families, (std::vector<std::string>{"ad3", "chain-seq"}));
  EXPECT_FALSE(cfg.run_sv);
  EXPECT_TRUE(cfg.pin_threads);
  EXPECT_FALSE(cfg.run_dir);
  EXPECT_FALSE(cfg.numa_interleave);
  EXPECT_FALSE(cfg.storage_sweep);  // opt-in: off unless --storage
}

TEST(PerfSuite, StorageSweepCliFlags) {
  const char* argv[] = {"perf_suite", "--storage",
                        "--storage-budgets=100,25",
                        "--storage-block=4096"};
  const Cli cli(4, argv);
  const auto cfg = perf_suite_config_from_cli(cli);
  EXPECT_TRUE(cfg.storage_sweep);
  EXPECT_EQ(cfg.storage_budget_percents,
            (std::vector<std::int64_t>{100, 25}));
  EXPECT_EQ(cfg.storage_block_bytes, 4096u);
}

// The blocked-backend sweep: one PerfStorageRun per budget percentage, all
// slowdowns finite and positive, the 100% run at least as cache-friendly as
// the starved run, and the emitted JSON (with the additive "storage"
// section) still strictly valid.
TEST(PerfSuite, StorageSweepReportsHitRatePerBudget) {
  PerfSuiteConfig cfg;
  cfg.families = {"random-nlogn"};
  cfg.n = 2048;
  cfg.threads = {1};
  cfg.repeats = 2;
  cfg.seed = 5;
  cfg.run_sv = false;
  cfg.run_parallel_bfs = false;
  cfg.run_dir = false;
  cfg.storage_sweep = true;
  cfg.storage_budget_percents = {100, 10};
  cfg.storage_block_bytes = 1 << 10;  // small blocks so 10% actually evicts
  std::ostringstream progress;
  const auto result = run_perf_suite(cfg, progress);

  ASSERT_EQ(result.families.size(), 1u);
  const auto& fam = result.families[0];
  EXPECT_GT(fam.csr_bytes, 0u);
  ASSERT_EQ(fam.storage.size(), 2u);
  const auto& full = fam.storage[0];
  const auto& starved = fam.storage[1];
  EXPECT_DOUBLE_EQ(full.budget_fraction, 1.0);
  EXPECT_DOUBLE_EQ(starved.budget_fraction, 0.1);
  EXPECT_LT(starved.budget_bytes, full.budget_bytes);
  for (const auto& srun : fam.storage) {
    EXPECT_GT(srun.slowdown_vs_resident, 0.0);
    EXPECT_TRUE(std::isfinite(srun.slowdown_vs_resident));
    EXPECT_GT(srun.hits + srun.misses, 0u);
    EXPECT_GE(srun.hit_rate, 0.0);
    EXPECT_LE(srun.hit_rate, 1.0);
  }
  // At full budget nothing is ever evicted; the starved cache must evict.
  EXPECT_EQ(full.evictions, 0u);
  EXPECT_GT(starved.evictions, 0u);
  EXPECT_GE(full.hit_rate, starved.hit_rate);

  std::ostringstream json;
  write_perf_suite_json(result, json);
  const std::string doc = json.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"storage\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"hit_rate\""), std::string::npos);
}

// The direction-optimizing column must carry its observability fields: the
// push-only column never pulls by construction, and both defaults are on.
TEST(PerfSuite, DirectionColumnPresentWithStats) {
  PerfSuiteConfig cfg;
  cfg.families = {"random-nlogn"};
  cfg.n = 4096;
  cfg.threads = {2};
  cfg.repeats = 1;
  cfg.seed = 11;
  std::ostringstream progress;
  const auto result = run_perf_suite(cfg, progress);
  ASSERT_EQ(result.families.size(), 1u);
  bool saw_push = false;
  bool saw_dir = false;
  for (const auto& run : result.families[0].runs) {
    if (run.algo == "parallel_bfs") {
      saw_push = true;
      EXPECT_EQ(run.pull_levels, 0u) << "push-only column pulled";
    }
    if (run.algo == "parallel_bfs_dir") {
      saw_dir = true;
      // random-nlogn at this size is low-diameter and dense enough that the
      // heuristic must pull at least once.
      EXPECT_GE(run.pull_levels, 1u);
    }
  }
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_dir);
}

}  // namespace
}  // namespace smpst::bench
