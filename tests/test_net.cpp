// Tests of the TCP front end and its supporting pieces: LineCodec framing
// (chunked feeds, the oversized-line cap, CRLF, EOF partials), the zipfian
// load-generator sampler, and loopback integration against a live TcpServer —
// partial frames, pipelined ordering, typed too-large/overloaded/
// shutting-down errors, half-close, disconnect mid-query, slow-loris
// timeouts, the connection cap, and drain-under-load's one-response-per-
// accepted-request contract (docs/SERVICE.md).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/zipf.hpp"
#include "gen/registry.hpp"
#include "net/tcp_server.hpp"
#include "service/codec.hpp"
#include "service/executor.hpp"
#include "service/graph_registry.hpp"
#include "service/session.hpp"
#include "service/wire.hpp"
#include "support/prng.hpp"

namespace smpst::net {
namespace {

using service::Fields;
using service::LineCodec;
using service::parse_line;

// ------------------------------------------------------------------- codec

TEST(LineCodec, ByteAtATimeFeedsFrameOneLine) {
  LineCodec codec;
  const std::string line = "query graph=g algo=bfs";
  std::string out;
  for (char ch : line) {
    codec.feed(&ch, 1);
    EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  }
  const char nl = '\n';
  codec.feed(&nl, 1);
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, line);
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  EXPECT_EQ(codec.buffered(), 0u);
}

TEST(LineCodec, MultipleLinesInOneFeedComeOutInOrder) {
  LineCodec codec;
  const std::string bytes = "first\nsecond\nthird\n";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "first");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "second");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "third");
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
}

TEST(LineCodec, CrlfIsStripped) {
  LineCodec codec;
  const std::string bytes = "stats\r\nlist\r\n";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "stats");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "list");
}

TEST(LineCodec, OversizedLineReportedOnceThenStreamResyncs) {
  LineCodec codec(8);
  const std::string bytes = std::string(100, 'a') + "\nok\n";
  // Feed in two chunks so the cap is crossed mid-feed and the tail of the
  // oversized line straddles a chunk boundary.
  codec.feed(bytes.data(), 20);
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kOversized);
  EXPECT_TRUE(codec.discarding());
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);  // reported only once
  codec.feed(bytes.data() + 20, bytes.size() - 20);
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "ok");
  EXPECT_FALSE(codec.discarding());
  EXPECT_GE(codec.last_oversized_bytes(), 8u);
}

TEST(LineCodec, TakePartialSurrendersTheUnterminatedTail) {
  LineCodec codec;
  const std::string bytes = "done\nhalf a line";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "done");
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  EXPECT_EQ(codec.take_partial(), "half a line");
  EXPECT_EQ(codec.take_partial(), "");  // stream now ends cleanly
}

// -------------------------------------------------------------------- zipf

TEST(Zipfian, DeterministicGivenTheSeedAndAlwaysInRange) {
  const bench::ZipfianGenerator zipf(1000);
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t rank = zipf.next(a);
    EXPECT_EQ(rank, zipf.next(b));
    EXPECT_LT(rank, zipf.n());
  }
}

TEST(Zipfian, SkewConcentratesMassOnLowRanks) {
  const bench::ZipfianGenerator zipf(1000, 0.99);
  Xoshiro256 rng(7);
  constexpr int kSamples = 20000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf.next(rng)]++;
  // theta=0.99 over 1000 items: rank 0 carries ~12% of the mass and the top
  // ten ~36%; assert loose lower bounds that a uniform sampler (0.1% / 1%)
  // cannot reach.
  EXPECT_GT(counts[0], kSamples / 20);
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, kSamples / 4);
}

TEST(Zipfian, SingleItemDegeneratesToConstant) {
  const bench::ZipfianGenerator zipf(1);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(Zipfian, RejectsInvalidParameters) {
  EXPECT_THROW(bench::ZipfianGenerator(0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 0.0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 1.0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 1.5), std::invalid_argument);
}

// ------------------------------------------------------ loopback harness

/// A live TcpServer on an ephemeral loopback port, its run() loop on a
/// background thread, with graph "g" preloaded. stop() drains and returns
/// what run() reported.
class ServerHarness {
 public:
  explicit ServerHarness(
      service::ExecutorOptions eopts = default_executor_options(),
      TcpServerOptions sopts = TcpServerOptions())
      : executor_(registry_, eopts) {
    registry_.put("g", gen::make_family("torus-rowmajor", 256, 1));
    server_.emplace(registry_, executor_, sopts);
    loop_ = std::thread([this] { report_ = server_->run(); });
  }

  ~ServerHarness() {
    if (!joined_) stop();
  }

  static service::ExecutorOptions default_executor_options() {
    service::ExecutorOptions opts;
    opts.num_workers = 2;
    opts.threads_per_query = 2;
    return opts;
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] service::QueryExecutor& executor() { return executor_; }
  [[nodiscard]] service::GraphRegistry& registry() { return registry_; }
  void request_shutdown() { server_->request_shutdown(); }

  DrainReport stop() {
    server_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    joined_ = true;
    return report_;
  }

 private:
  service::GraphRegistry registry_;
  service::QueryExecutor executor_;
  std::optional<TcpServer> server_;
  std::thread loop_;
  DrainReport report_;
  bool joined_ = false;
};

/// Blocking loopback client with a receive deadline, so a server bug shows
/// up as a failed read instead of a hung test.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port, long deadline_sec = 10) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = deadline_sec;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  ~TestClient() { close_now(); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Reads through the next newline. False on EOF or deadline.
  bool read_line(std::string& out) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) {
        timed_out_ = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        return false;
      }
      buffer_.append(tmp, static_cast<std::size_t>(n));
    }
  }

  /// Reads one response line and parses it; registers a failure (and returns
  /// an empty field map) when the connection closes or the deadline expires
  /// first.
  Fields read_response() {
    std::string line;
    if (!read_line(line)) {
      ADD_FAILURE() << (timed_out_
                            ? "receive deadline expired before a response"
                            : "connection closed before a response arrived");
      return Fields{};
    }
    return parse_line(line);
  }

  /// True when the server closes without sending further data.
  bool wait_eof() {
    char tmp[256];
    while (true) {
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n == 0) return true;   // orderly close
      if (n < 0) return false;   // deadline — still open
    }
  }

 private:
  int fd_ = -1;
  bool timed_out_ = false;
  std::string buffer_;
};

const std::string kQuery = "query graph=g algo=bfs\n";

// ---------------------------------------------------------- loopback tests

TEST(TcpLoopback, PartialFramesAssembleIntoOneResponse) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all("query gra"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.send_all("ph=g algo"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.send_all("=bfs\n"));
  const Fields f = c.read_response();
  EXPECT_EQ(f.at("status"), "ok");
  EXPECT_EQ(f.at("graph"), "g");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, PipelinedRequestsAnswerInOrder) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // One write carrying five requests whose responses are distinguishable:
  // sync gen, ok query, parse error, not-found query, ok query.
  ASSERT_TRUE(
      c.send_all("gen name=h family=torus-rowmajor n=64 seed=3\n" + kQuery +
                 "no-such-command\nquery graph=missing\n" + kQuery));
  EXPECT_EQ(c.read_response().at("name"), "h");
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_EQ(c.read_response().at("code"), "bad-request");
  EXPECT_EQ(c.read_response().at("status"), "not-found");
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, OversizedLineGetsTypedErrorAndConnectionSurvives) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  const std::string oversized(service::kMaxLineBytes + 100, 'a');
  ASSERT_TRUE(c.send_all(oversized + "\n" + kQuery));
  const Fields err = c.read_response();
  EXPECT_EQ(err.at("ok"), "0");
  EXPECT_EQ(err.at("code"), "too-large");
  // The stream resynchronized at the newline; the next request is served.
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, HalfCloseFlushesEveryOwedResponseIncludingThePartialLine) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // Two requests, the second without its newline: EOF terminates the last
  // line (getline semantics), so both must be answered before the close.
  ASSERT_TRUE(c.send_all(kQuery + "query graph=g algo=sv"));
  c.half_close();
  EXPECT_EQ(c.read_response().at("algo"), "bfs");
  EXPECT_EQ(c.read_response().at("algo"), "sv");
  EXPECT_TRUE(c.wait_eof());
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, DisconnectMidQueryLeavesTheServerHealthy) {
  ServerHarness server;
  {
    TestClient dropper(server.port());
    ASSERT_TRUE(dropper.connected());
    ASSERT_TRUE(dropper.send_all(kQuery));
    dropper.close_now();  // vanish before the response can be written
  }
  // The dropped connection's completion drains into a detached session; the
  // server keeps serving and still drains clean.
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery));
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, ExecutorOverloadShedsWithTypedErrorAndRetryHint) {
  service::ExecutorOptions eopts = ServerHarness::default_executor_options();
  eopts.num_workers = 1;
  eopts.queue_capacity = 1;
  eopts.start_paused = true;  // hold the queue full so sheds are deterministic
  ServerHarness server(eopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery + kQuery + kQuery + kQuery));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.executor().resume();
  // Slot ordering: the accepted query answers first, then the three sheds.
  EXPECT_EQ(c.read_response().at("status"), "ok");
  for (int i = 0; i < 3; ++i) {
    const Fields shed = c.read_response();
    EXPECT_EQ(shed.at("ok"), "0");
    EXPECT_EQ(shed.at("code"), "overloaded");
    EXPECT_GE(std::stoll(shed.at("retry_after_ms")), 1);
  }
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, ConnectionCapRejectsWithTypedErrorAndKeepsServing) {
  TcpServerOptions sopts;
  sopts.max_connections = 1;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.send_all(kQuery));
  EXPECT_EQ(first.read_response().at("status"), "ok");  // definitely accepted
  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  const Fields rejected = second.read_response();
  EXPECT_EQ(rejected.at("code"), "overloaded");
  EXPECT_GE(std::stoll(rejected.at("retry_after_ms")), 0);
  EXPECT_TRUE(second.wait_eof());
  // The admitted connection is untouched by the rejection.
  ASSERT_TRUE(first.send_all(kQuery));
  EXPECT_EQ(first.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, IdleConnectionIsClosed) {
  TcpServerOptions sopts;
  sopts.idle_timeout_ms = 200;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  EXPECT_TRUE(c.wait_eof());  // no request ever sent
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, SlowLorisDribbleDoesNotCountAsProgress) {
  TcpServerOptions sopts;
  sopts.idle_timeout_ms = 200;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // Keep the socket byte-active without ever completing a line; the idle
  // timer keys on protocol progress, so the dribbler is still evicted.
  bool closed = false;
  for (int i = 0; i < 50 && !closed; ++i) {
    (void)c.send_all("x");  // may fail once the server closes — that's fine
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    char tmp[16];
    closed = ::recv(c.fd(), tmp, sizeof tmp, MSG_DONTWAIT) == 0;
  }
  EXPECT_TRUE(closed);
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, DrainUnderLoadAnswersEveryAcceptedRequest) {
  ServerHarness server;
  server.registry().put("big", gen::make_family("random-nlogn", 4096, 9));
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  constexpr int kRequests = 16;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "query graph=big algo=bader-cong\n";
  }
  ASSERT_TRUE(c.send_all(burst));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.request_shutdown();  // SIGTERM equivalent, mid-burst
  // The drain contract: one response per accepted request — completed (ok)
  // or shed (shutting-down) — then an orderly close, nothing dropped.
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(line)) << "dropped after " << answered;
    const Fields f = parse_line(line);
    const bool ok = f.count("status") != 0 && f.at("status") == "ok";
    const bool drained = f.count("code") != 0 && f.at("code") == "shutting-down";
    EXPECT_TRUE(ok || drained) << line;
    ++answered;
  }
  EXPECT_EQ(answered, kRequests);
  EXPECT_TRUE(c.wait_eof());
  const DrainReport report = server.stop();
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.responses_dropped, 0u);
}

TEST(TcpLoopback, ShutdownCommandDrainsTheWholeServer) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery + "shutdown\n"));
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_EQ(c.read_response().at("draining"), "1");
  EXPECT_TRUE(c.wait_eof());
  EXPECT_TRUE(server.stop().clean);  // run() already returning; join + report
}

// ------------------------------------------------- heavy-command offload
//
// The TCP server enables SessionOptions::offload_heavy so load/gen/trace
// never run on the epoll loop thread. These tests pin down the deferral
// semantics: dependent commands pipelined behind a heavy one still execute
// in order, other connections stay live while a heavy command runs, and the
// session-level machinery (defer/pump, pending() accounting) holds.

TEST(TcpLoopback, HeavyGenThenDependentQueryPipelinedInOneWrite) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // The query on the freshly generated graph is in the same TCP segment as
  // the gen: it must defer until the offloaded gen completes, then see the
  // graph. A second gen chained behind a dependent query exercises repeated
  // defer/pump cycles on one connection.
  ASSERT_TRUE(
      c.send_all("gen name=big family=torus-rowmajor n=4096 seed=7\n"
                 "query graph=big algo=bader-cong validate=true\n"
                 "gen name=big2 family=random-nlogn n=1024 seed=9\n"
                 "query graph=big2 algo=bfs\n"));
  EXPECT_EQ(c.read_response().at("name"), "big");
  Fields q1 = c.read_response();
  EXPECT_EQ(q1.at("status"), "ok");
  EXPECT_EQ(q1.at("graph"), "big");
  EXPECT_EQ(c.read_response().at("name"), "big2");
  Fields q2 = c.read_response();
  EXPECT_EQ(q2.at("status"), "ok");
  EXPECT_EQ(q2.at("graph"), "big2");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, OtherConnectionsAnswerWhileAHeavyCommandRuns) {
  ServerHarness server;
  // Generous deadlines: the property under test is that the light client is
  // answered while the heavy gen runs, not how fast either completes — on a
  // loaded single-core CI box the gen alone can hold the core for seconds.
  TestClient heavy(server.port(), 60);
  TestClient light(server.port(), 60);
  ASSERT_TRUE(heavy.connected());
  ASSERT_TRUE(light.connected());
  // Large enough that the gen takes real time on a worker; the light client
  // must still get served meanwhile (on the second worker) — before the
  // offload this gen would have wedged the shared loop thread.
  ASSERT_TRUE(
      heavy.send_all("gen name=huge family=random-nlogn n=150000 seed=1\n"));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(light.send_all(kQuery));
    EXPECT_EQ(light.read_response().at("status"), "ok");
  }
  EXPECT_EQ(heavy.read_response().at("name"), "huge");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, EofBehindHeavyCommandStillAnswersEverything) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // gen + dependent query + quit, then immediately half-close: the EOF is
  // deferred behind the offloaded gen and the close barrier must wait for
  // every deferred line's response.
  ASSERT_TRUE(
      c.send_all("gen name=e family=torus-rowmajor n=2048 seed=2\n"
                 "query graph=e algo=bfs\nquit\n"));
  c.half_close();
  EXPECT_EQ(c.read_response().at("name"), "e");
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_EQ(c.read_response().at("bye"), "1");
  EXPECT_TRUE(c.wait_eof());
  EXPECT_TRUE(server.stop().clean);
}

TEST(SessionOffload, DefersInputWhileHeavyCommandRunsAndReplaysInOrder) {
  service::GraphRegistry registry;
  service::QueryExecutor executor(registry,
                                  ServerHarness::default_executor_options());
  std::mutex out_mutex;
  std::vector<std::string> out;
  service::SessionOptions opts;
  opts.offload_heavy = true;
  auto session = service::Session::create(
      registry, executor,
      [&](std::string&& line) {
        std::lock_guard<std::mutex> lk(out_mutex);
        out.push_back(std::move(line));
      },
      opts);
  session->on_line("gen name=x family=torus-rowmajor n=1024 seed=1");
  // The reader thread returns immediately; the lines behind the gen defer.
  session->on_line("query graph=x algo=bfs");
  session->on_line("list");
  EXPECT_GE(session->pending(), 3u);
  // Emulate the front-end loop: pump deferred input whenever the offloaded
  // command has finished, until the pipeline drains.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (session->pending() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (session->resume_ready()) {
      session->pump_deferred();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(session->wait_idle(std::chrono::seconds(10)));
  std::lock_guard<std::mutex> lk(out_mutex);
  // gen ack, query result, list entry for x + list summary — in order.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(parse_line(out[0]).at("name"), "x");
  EXPECT_EQ(parse_line(out[1]).at("status"), "ok");
  EXPECT_EQ(parse_line(out[2]).at("name"), "x");
  EXPECT_EQ(parse_line(out[3]).at("entries"), "1");
}

TEST(SessionOffload, ShedsHeavyCommandWithTypedErrorWhenQueueIsFull) {
  service::GraphRegistry registry;
  registry.put("g", gen::make_family("torus-rowmajor", 64, 1));
  service::ExecutorOptions eopts;
  eopts.num_workers = 1;
  eopts.threads_per_query = 1;
  eopts.queue_capacity = 1;
  eopts.start_paused = true;  // nothing dequeues: the queue fills for real
  service::QueryExecutor executor(registry, eopts);
  std::mutex out_mutex;
  std::vector<std::string> out;
  service::SessionOptions opts;
  opts.offload_heavy = true;
  auto session = service::Session::create(
      registry, executor,
      [&](std::string&& line) {
        std::lock_guard<std::mutex> lk(out_mutex);
        out.push_back(std::move(line));
      },
      opts);
  // Fill the single queue slot, then the heavy command cannot be offloaded
  // and must come back as a typed overloaded error with a retry hint.
  auto future = executor.submit(service::SpanningTreeRequest{"g", "bfs"});
  session->on_line("gen name=y family=torus-rowmajor n=256 seed=1");
  {
    std::lock_guard<std::mutex> lk(out_mutex);
    ASSERT_EQ(out.size(), 1u);
    const Fields f = parse_line(out[0]);
    EXPECT_EQ(f.at("code"), "overloaded");
    EXPECT_TRUE(f.count("retry_after_ms") != 0);
  }
  executor.resume();
  (void)future.get();
}

}  // namespace
}  // namespace smpst::net
