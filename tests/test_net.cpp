// Tests of the TCP front end and its supporting pieces: LineCodec framing
// (chunked feeds, the oversized-line cap, CRLF, EOF partials), the zipfian
// load-generator sampler, and loopback integration against a live TcpServer —
// partial frames, pipelined ordering, typed too-large/overloaded/
// shutting-down errors, half-close, disconnect mid-query, slow-loris
// timeouts, the connection cap, and drain-under-load's one-response-per-
// accepted-request contract (docs/SERVICE.md).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/zipf.hpp"
#include "gen/registry.hpp"
#include "net/tcp_server.hpp"
#include "service/codec.hpp"
#include "service/executor.hpp"
#include "service/graph_registry.hpp"
#include "service/wire.hpp"
#include "support/prng.hpp"

namespace smpst::net {
namespace {

using service::Fields;
using service::LineCodec;
using service::parse_line;

// ------------------------------------------------------------------- codec

TEST(LineCodec, ByteAtATimeFeedsFrameOneLine) {
  LineCodec codec;
  const std::string line = "query graph=g algo=bfs";
  std::string out;
  for (char ch : line) {
    codec.feed(&ch, 1);
    EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  }
  const char nl = '\n';
  codec.feed(&nl, 1);
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, line);
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  EXPECT_EQ(codec.buffered(), 0u);
}

TEST(LineCodec, MultipleLinesInOneFeedComeOutInOrder) {
  LineCodec codec;
  const std::string bytes = "first\nsecond\nthird\n";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "first");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "second");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "third");
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
}

TEST(LineCodec, CrlfIsStripped) {
  LineCodec codec;
  const std::string bytes = "stats\r\nlist\r\n";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "stats");
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "list");
}

TEST(LineCodec, OversizedLineReportedOnceThenStreamResyncs) {
  LineCodec codec(8);
  const std::string bytes = std::string(100, 'a') + "\nok\n";
  // Feed in two chunks so the cap is crossed mid-feed and the tail of the
  // oversized line straddles a chunk boundary.
  codec.feed(bytes.data(), 20);
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kOversized);
  EXPECT_TRUE(codec.discarding());
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);  // reported only once
  codec.feed(bytes.data() + 20, bytes.size() - 20);
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "ok");
  EXPECT_FALSE(codec.discarding());
  EXPECT_GE(codec.last_oversized_bytes(), 8u);
}

TEST(LineCodec, TakePartialSurrendersTheUnterminatedTail) {
  LineCodec codec;
  const std::string bytes = "done\nhalf a line";
  codec.feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(codec.next(out), LineCodec::Event::kLine);
  EXPECT_EQ(out, "done");
  EXPECT_EQ(codec.next(out), LineCodec::Event::kNone);
  EXPECT_EQ(codec.take_partial(), "half a line");
  EXPECT_EQ(codec.take_partial(), "");  // stream now ends cleanly
}

// -------------------------------------------------------------------- zipf

TEST(Zipfian, DeterministicGivenTheSeedAndAlwaysInRange) {
  const bench::ZipfianGenerator zipf(1000);
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t rank = zipf.next(a);
    EXPECT_EQ(rank, zipf.next(b));
    EXPECT_LT(rank, zipf.n());
  }
}

TEST(Zipfian, SkewConcentratesMassOnLowRanks) {
  const bench::ZipfianGenerator zipf(1000, 0.99);
  Xoshiro256 rng(7);
  constexpr int kSamples = 20000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf.next(rng)]++;
  // theta=0.99 over 1000 items: rank 0 carries ~12% of the mass and the top
  // ten ~36%; assert loose lower bounds that a uniform sampler (0.1% / 1%)
  // cannot reach.
  EXPECT_GT(counts[0], kSamples / 20);
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, kSamples / 4);
}

TEST(Zipfian, SingleItemDegeneratesToConstant) {
  const bench::ZipfianGenerator zipf(1);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(Zipfian, RejectsInvalidParameters) {
  EXPECT_THROW(bench::ZipfianGenerator(0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 0.0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 1.0), std::invalid_argument);
  EXPECT_THROW(bench::ZipfianGenerator(10, 1.5), std::invalid_argument);
}

// ------------------------------------------------------ loopback harness

/// A live TcpServer on an ephemeral loopback port, its run() loop on a
/// background thread, with graph "g" preloaded. stop() drains and returns
/// what run() reported.
class ServerHarness {
 public:
  explicit ServerHarness(
      service::ExecutorOptions eopts = default_executor_options(),
      TcpServerOptions sopts = TcpServerOptions())
      : executor_(registry_, eopts) {
    registry_.put("g", gen::make_family("torus-rowmajor", 256, 1));
    server_.emplace(registry_, executor_, sopts);
    loop_ = std::thread([this] { report_ = server_->run(); });
  }

  ~ServerHarness() {
    if (!joined_) stop();
  }

  static service::ExecutorOptions default_executor_options() {
    service::ExecutorOptions opts;
    opts.num_workers = 2;
    opts.threads_per_query = 2;
    return opts;
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] service::QueryExecutor& executor() { return executor_; }
  [[nodiscard]] service::GraphRegistry& registry() { return registry_; }
  void request_shutdown() { server_->request_shutdown(); }

  DrainReport stop() {
    server_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    joined_ = true;
    return report_;
  }

 private:
  service::GraphRegistry registry_;
  service::QueryExecutor executor_;
  std::optional<TcpServer> server_;
  std::thread loop_;
  DrainReport report_;
  bool joined_ = false;
};

/// Blocking loopback client with a receive deadline, so a server bug shows
/// up as a failed read instead of a hung test.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = 10;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  ~TestClient() { close_now(); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Reads through the next newline. False on EOF or deadline.
  bool read_line(std::string& out) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return false;
      buffer_.append(tmp, static_cast<std::size_t>(n));
    }
  }

  /// Reads one response line and parses it; registers a failure (and returns
  /// an empty field map) when the connection closes first.
  Fields read_response() {
    std::string line;
    if (!read_line(line)) {
      ADD_FAILURE() << "connection closed before a response arrived";
      return Fields{};
    }
    return parse_line(line);
  }

  /// True when the server closes without sending further data.
  bool wait_eof() {
    char tmp[256];
    while (true) {
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n == 0) return true;   // orderly close
      if (n < 0) return false;   // deadline — still open
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

const std::string kQuery = "query graph=g algo=bfs\n";

// ---------------------------------------------------------- loopback tests

TEST(TcpLoopback, PartialFramesAssembleIntoOneResponse) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all("query gra"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.send_all("ph=g algo"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.send_all("=bfs\n"));
  const Fields f = c.read_response();
  EXPECT_EQ(f.at("status"), "ok");
  EXPECT_EQ(f.at("graph"), "g");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, PipelinedRequestsAnswerInOrder) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // One write carrying five requests whose responses are distinguishable:
  // sync gen, ok query, parse error, not-found query, ok query.
  ASSERT_TRUE(
      c.send_all("gen name=h family=torus-rowmajor n=64 seed=3\n" + kQuery +
                 "no-such-command\nquery graph=missing\n" + kQuery));
  EXPECT_EQ(c.read_response().at("name"), "h");
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_EQ(c.read_response().at("code"), "bad-request");
  EXPECT_EQ(c.read_response().at("status"), "not-found");
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, OversizedLineGetsTypedErrorAndConnectionSurvives) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  const std::string oversized(service::kMaxLineBytes + 100, 'a');
  ASSERT_TRUE(c.send_all(oversized + "\n" + kQuery));
  const Fields err = c.read_response();
  EXPECT_EQ(err.at("ok"), "0");
  EXPECT_EQ(err.at("code"), "too-large");
  // The stream resynchronized at the newline; the next request is served.
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, HalfCloseFlushesEveryOwedResponseIncludingThePartialLine) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // Two requests, the second without its newline: EOF terminates the last
  // line (getline semantics), so both must be answered before the close.
  ASSERT_TRUE(c.send_all(kQuery + "query graph=g algo=sv"));
  c.half_close();
  EXPECT_EQ(c.read_response().at("algo"), "bfs");
  EXPECT_EQ(c.read_response().at("algo"), "sv");
  EXPECT_TRUE(c.wait_eof());
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, DisconnectMidQueryLeavesTheServerHealthy) {
  ServerHarness server;
  {
    TestClient dropper(server.port());
    ASSERT_TRUE(dropper.connected());
    ASSERT_TRUE(dropper.send_all(kQuery));
    dropper.close_now();  // vanish before the response can be written
  }
  // The dropped connection's completion drains into a detached session; the
  // server keeps serving and still drains clean.
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery));
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, ExecutorOverloadShedsWithTypedErrorAndRetryHint) {
  service::ExecutorOptions eopts = ServerHarness::default_executor_options();
  eopts.num_workers = 1;
  eopts.queue_capacity = 1;
  eopts.start_paused = true;  // hold the queue full so sheds are deterministic
  ServerHarness server(eopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery + kQuery + kQuery + kQuery));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.executor().resume();
  // Slot ordering: the accepted query answers first, then the three sheds.
  EXPECT_EQ(c.read_response().at("status"), "ok");
  for (int i = 0; i < 3; ++i) {
    const Fields shed = c.read_response();
    EXPECT_EQ(shed.at("ok"), "0");
    EXPECT_EQ(shed.at("code"), "overloaded");
    EXPECT_GE(std::stoll(shed.at("retry_after_ms")), 1);
  }
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, ConnectionCapRejectsWithTypedErrorAndKeepsServing) {
  TcpServerOptions sopts;
  sopts.max_connections = 1;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient first(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.send_all(kQuery));
  EXPECT_EQ(first.read_response().at("status"), "ok");  // definitely accepted
  TestClient second(server.port());
  ASSERT_TRUE(second.connected());
  const Fields rejected = second.read_response();
  EXPECT_EQ(rejected.at("code"), "overloaded");
  EXPECT_GE(std::stoll(rejected.at("retry_after_ms")), 0);
  EXPECT_TRUE(second.wait_eof());
  // The admitted connection is untouched by the rejection.
  ASSERT_TRUE(first.send_all(kQuery));
  EXPECT_EQ(first.read_response().at("status"), "ok");
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, IdleConnectionIsClosed) {
  TcpServerOptions sopts;
  sopts.idle_timeout_ms = 200;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  EXPECT_TRUE(c.wait_eof());  // no request ever sent
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, SlowLorisDribbleDoesNotCountAsProgress) {
  TcpServerOptions sopts;
  sopts.idle_timeout_ms = 200;
  ServerHarness server(ServerHarness::default_executor_options(), sopts);
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // Keep the socket byte-active without ever completing a line; the idle
  // timer keys on protocol progress, so the dribbler is still evicted.
  bool closed = false;
  for (int i = 0; i < 50 && !closed; ++i) {
    (void)c.send_all("x");  // may fail once the server closes — that's fine
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    char tmp[16];
    closed = ::recv(c.fd(), tmp, sizeof tmp, MSG_DONTWAIT) == 0;
  }
  EXPECT_TRUE(closed);
  EXPECT_TRUE(server.stop().clean);
}

TEST(TcpLoopback, DrainUnderLoadAnswersEveryAcceptedRequest) {
  ServerHarness server;
  server.registry().put("big", gen::make_family("random-nlogn", 4096, 9));
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  constexpr int kRequests = 16;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += "query graph=big algo=bader-cong\n";
  }
  ASSERT_TRUE(c.send_all(burst));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.request_shutdown();  // SIGTERM equivalent, mid-burst
  // The drain contract: one response per accepted request — completed (ok)
  // or shed (shutting-down) — then an orderly close, nothing dropped.
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(line)) << "dropped after " << answered;
    const Fields f = parse_line(line);
    const bool ok = f.count("status") != 0 && f.at("status") == "ok";
    const bool drained = f.count("code") != 0 && f.at("code") == "shutting-down";
    EXPECT_TRUE(ok || drained) << line;
    ++answered;
  }
  EXPECT_EQ(answered, kRequests);
  EXPECT_TRUE(c.wait_eof());
  const DrainReport report = server.stop();
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.responses_dropped, 0u);
}

TEST(TcpLoopback, ShutdownCommandDrainsTheWholeServer) {
  ServerHarness server;
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_all(kQuery + "shutdown\n"));
  EXPECT_EQ(c.read_response().at("status"), "ok");
  EXPECT_EQ(c.read_response().at("draining"), "1");
  EXPECT_TRUE(c.wait_eof());
  EXPECT_TRUE(server.stop().clean);  // run() already returning; join + report
}

}  // namespace
}  // namespace smpst::net
