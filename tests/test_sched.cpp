// Tests for the SMP runtime: spinlock, barriers, thread pool, work-stealing
// queues, and the termination primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <new>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/steal_policy.hpp"
#include "sched/barrier.hpp"
#include "sched/spinlock.hpp"
#include "sched/termination.hpp"
#include "sched/thread_pool.hpp"
#include "sched/work_queue.hpp"
#include "support/cpu.hpp"
#include "support/prng.hpp"

namespace smpst {
namespace {

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

template <typename Barrier>
void barrier_phase_test() {
  constexpr std::size_t kThreads = 6;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        phase_counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads increments of this phase are done.
        if (phase_counter.load() < (ph + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(phase_counter.load(), kPhases * static_cast<int>(kThreads));
}

TEST(SpinBarrier, SeparatesPhases) { barrier_phase_test<SpinBarrier>(); }
TEST(BlockingBarrier, SeparatesPhases) {
  barrier_phase_test<BlockingBarrier>();
}

TEST(SpinBarrier, CountsEpisodes) {
  SpinBarrier b(1);
  EXPECT_EQ(b.episodes(), 0u);
  b.arrive_and_wait();
  b.arrive_and_wait();
  EXPECT_EQ(b.episodes(), 2u);
}

TEST(ThreadPool, RunsBodyOnEveryThread) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(4, 0);
  pool.run([&](std::size_t tid) { hits[tid] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int r = 0; r < 20; ++r) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadPool, ConcurrentCallersAreSerialized) {
  // The query service shares one pool between request handlers; regions from
  // different caller threads must not interleave or lose work.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::atomic<int> inside{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < 25; ++r) {
        pool.run([&](std::size_t) {
          EXPECT_LE(inside.fetch_add(1) + 1, 3);  // one region at a time
          total.fetch_add(1);
          inside.fetch_sub(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 25 * 3);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](std::size_t tid) {
        if (tid == 1) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> total{0};
  pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
}

TEST(SplitQueue, FifoOrder) {
  SplitQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  EXPECT_EQ(q.size(), 10u);
  int v = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(SplitQueue, PushBulk) {
  SplitQueue<int> q;
  const int items[] = {1, 2, 3};
  q.push_bulk(items, 3);
  EXPECT_EQ(q.size(), 3u);
}

TEST(SplitQueue, StealTakesFromFront) {
  SplitQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.steal(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 4);
}

TEST(SplitQueue, StealMoreThanAvailable) {
  SplitQueue<int> q;
  q.push(42);
  std::vector<int> out;
  EXPECT_EQ(q.steal(out, 100), 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.steal(out, 1), 0u);
}

TEST(SplitQueue, CompactionKeepsContents) {
  SplitQueue<int> q;
  for (int i = 0; i < 1000; ++i) q.push(i);
  int v = -1;
  for (int i = 0; i < 900; ++i) ASSERT_TRUE(q.pop(v));
  for (int i = 1000; i < 1100; ++i) q.push(i);
  // Remaining: 900..1099 in order.
  for (int i = 900; i < 1100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SplitQueue, ConcurrentOwnerAndThieves) {
  SplitQueue<int> q;
  constexpr int kItems = 100000;
  std::atomic<long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::thread owner([&] {
    int popped;
    for (int i = 0; i < kItems; ++i) {
      q.push(i);
      if (i % 3 == 0 && q.pop(popped)) {
        consumed_sum.fetch_add(popped);
        consumed_count.fetch_add(1);
      }
    }
    while (q.pop(popped)) {
      consumed_sum.fetch_add(popped);
      consumed_count.fetch_add(1);
    }
  });
  std::vector<std::thread> thieves;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      std::vector<int> loot;
      while (!stop.load()) {
        loot.clear();
        if (q.steal(loot, 8) > 0) {
          for (int v : loot) consumed_sum.fetch_add(v);
          consumed_count.fetch_add(static_cast<int>(loot.size()));
        }
      }
    });
  }
  owner.join();
  // Let thieves drain anything left, then stop them.
  std::vector<int> loot;
  while (q.steal(loot, 1024) > 0) {
  }
  for (int v : loot) consumed_sum.fetch_add(v);
  consumed_count.fetch_add(static_cast<int>(loot.size()));
  stop.store(true);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed_count.load(), kItems);
  EXPECT_EQ(consumed_sum.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
}

TEST(ChaseLevDeque, OwnerLifoSingleThread) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  int v = 0;
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(8);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size_estimate(), 1000u);
  int v = 0;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(ChaseLevDeque, StealFromOtherEnd) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  int v = 0;
  EXPECT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(d.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(ChaseLevDeque, ConcurrentStealersSeeEveryItemOnce) {
  ChaseLevDeque<int> d;
  constexpr int kItems = 200000;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      int v;
      while (!done_producing.load() || d.size_estimate() > 0) {
        if (d.steal(v)) {
          sum.fetch_add(v);
          count.fetch_add(1);
        }
      }
    });
  }
  int popped;
  for (int i = 0; i < kItems; ++i) {
    d.push(i);
    if (i % 2 == 0 && d.pop(popped)) {
      sum.fetch_add(popped);
      count.fetch_add(1);
    }
  }
  while (d.pop(popped)) {
    sum.fetch_add(popped);
    count.fetch_add(1);
  }
  done_producing.store(true);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(count.load(), kItems);
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
}

TEST(PendingCounter, TracksProduceConsume) {
  PendingCounter pc;
  pc.reset(2);
  EXPECT_FALSE(pc.drained());
  pc.consumed_produced(3);  // consumed one, produced three
  EXPECT_EQ(pc.value(), 4);
  pc.add(-4);
  EXPECT_TRUE(pc.drained());
}

TEST(IdleGate, TimesOutWithoutNotify) {
  IdleGate gate;
  const auto sleepers = gate.sleep_for(std::chrono::microseconds(500));
  EXPECT_EQ(sleepers, 1u);
  EXPECT_EQ(gate.sleepers(), 0u);
}

TEST(IdleGate, NotifyWakesSleeper) {
  IdleGate gate;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    gate.sleep_for(std::chrono::microseconds(500000));
    woke.store(true);
  });
  while (gate.sleepers() == 0) std::this_thread::yield();
  gate.notify_work();
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(IdleGate, ReportsSimultaneousSleepers) {
  IdleGate gate;
  std::atomic<std::size_t> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const auto seen = gate.sleep_for(std::chrono::microseconds(200000));
      std::size_t cur = max_seen.load();
      while (seen > cur && !max_seen.compare_exchange_weak(cur, seen)) {
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(max_seen.load(), 2u);  // at least two overlapped
}

TEST(ThreadPool, PinnedOptionRunsEveryThread) {
  // Pinning is best-effort (a no-op on single-context hosts); the contract
  // under test is that an opted-in pool still runs regions normally.
  ThreadPoolOptions opts;
  opts.pin_threads = true;
  ThreadPool pool(3, opts);
  EXPECT_TRUE(pool.pin_threads());
  std::atomic<int> total{0};
  pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PinFailuresAreReportedNotSilent) {
  // More workers than allowed CPUs: the surplus slots cannot be placed, and
  // the old behaviour (wrap onto slot % count) hid that. The pool must run
  // regions normally while reporting exactly how many workers are unpinned.
  const std::size_t allowed = hardware_threads();
  ThreadPoolOptions opts;
  opts.pin_threads = true;
  ThreadPool pool(allowed + 2, opts);
  std::atomic<int> total{0};
  pool.run([&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(std::memory_order_relaxed),
            static_cast<int>(allowed) + 2);
  // Exact once a region has joined: every worker attempts its pin before
  // serving its first region. At least the two surplus slots must fail.
  EXPECT_GE(pool.pin_failures(), 2u);
}

TEST(ThreadPool, UnpinnedPoolReportsZeroPinFailures) {
  ThreadPool pool(4);
  pool.run([](std::size_t) {});
  EXPECT_EQ(pool.pin_failures(), 0u);
}

TEST(StealDomains, UniformSamplingNeverPicksSelfAndCoversAll) {
  const auto d = StealDomains::uniform(4);
  EXPECT_FALSE(d.topology_aware());
  Xoshiro256 rng(7);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 400; ++i) {
    const std::size_t v = d.sample(rng, 1, static_cast<std::size_t>(i));
    ASSERT_LT(v, 4u);
    ASSERT_NE(v, 1u);
    ++seen[v];
  }
  EXPECT_GT(seen[0], 0);
  EXPECT_GT(seen[2], 0);
  EXPECT_GT(seen[3], 0);
}

TEST(StealDomains, LocalPeersComeFromSameNode) {
  // Workers 0,1 on node 0; workers 2,3,4 on node 1.
  const auto d = StealDomains::from_nodes({0, 0, 1, 1, 1});
  EXPECT_TRUE(d.topology_aware());
  EXPECT_EQ(d.local_peers(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(d.local_peers(2), (std::vector<std::size_t>{3, 4}));
  Xoshiro256 rng(11);
  // The first |local| attempts of a probe round must stay on-node.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.sample(rng, 0, 0), 1u);
    const std::size_t v = d.sample(rng, 2, 1);
    EXPECT_TRUE(v == 3u || v == 4u) << v;
  }
  // Later attempts fall back to uniform over everyone else — remote victims
  // stay reachable, so a thief can never starve while work exists off-node.
  std::set<std::size_t> fallback;
  for (int i = 0; i < 400; ++i) fallback.insert(d.sample(rng, 2, 2));
  EXPECT_EQ(fallback, (std::set<std::size_t>{0, 1, 3, 4}));
}

TEST(StealDomains, ForPoolUnpinnedDegeneratesToUniform) {
  // Unpinned workers float under the OS scheduler: their placement is
  // unknowable, so no local preference may be derived.
  EXPECT_FALSE(StealDomains::for_pool(4, /*pinned=*/false).topology_aware());
  // Pinned on a single-node host there is likewise nothing to prefer; on a
  // multi-node host awareness depends on which nodes the first slots hit,
  // so only the single-node direction is asserted.
  if (topology().num_nodes <= 1) {
    EXPECT_FALSE(StealDomains::for_pool(4, /*pinned=*/true).topology_aware());
  }
}

TEST(ThreadPool, DefaultIsUnpinned) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pin_threads());
}

TEST(SplitQueue, PopExposesNextFrontAsHint) {
  SplitQueue<int> q;
  for (int i = 0; i < 3; ++i) q.push(i);
  int v = -1;
  int hint = -1;
  ASSERT_TRUE(q.pop(v, &hint));
  EXPECT_EQ(v, 0);
  EXPECT_EQ(hint, 1);
  ASSERT_TRUE(q.pop(v, &hint));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(hint, 2);
  hint = -1;
  ASSERT_TRUE(q.pop(v, &hint));  // last element: hint must stay untouched
  EXPECT_EQ(v, 2);
  EXPECT_EQ(hint, -1);
  EXPECT_FALSE(q.pop(v, &hint));
}

TEST(ChaseLevDeque, RoundUpSaturatesInsteadOfLoopingForever) {
  constexpr std::size_t kMaxPow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  // Pre-fix, any request above the largest power of two shifted the probe
  // to zero and spun forever; now it saturates.
  EXPECT_EQ(ChaseLevDeque<int>::round_up(kMaxPow2 + 1), kMaxPow2);
  EXPECT_EQ(ChaseLevDeque<int>::round_up(
                std::numeric_limits<std::size_t>::max()),
            kMaxPow2);
  EXPECT_EQ(ChaseLevDeque<int>::round_up(kMaxPow2), kMaxPow2);
  // Normal cases are unchanged.
  EXPECT_EQ(ChaseLevDeque<int>::round_up(0), 8u);
  EXPECT_EQ(ChaseLevDeque<int>::round_up(8), 8u);
  EXPECT_EQ(ChaseLevDeque<int>::round_up(9), 16u);
  EXPECT_EQ(ChaseLevDeque<int>::round_up(1024), 1024u);
}

TEST(ChaseLevDeque, HostileCapacityThrowsInsteadOfHanging) {
  // round_up saturates to 2^63; allocating that many atomic<int> overflows
  // the array-new size computation, which must surface as bad_alloc (the
  // compiler throws bad_array_new_length, a bad_alloc subclass) — never as
  // a hang or a silently wrapped, undersized buffer.
  EXPECT_THROW(ChaseLevDeque<int> d(std::numeric_limits<std::size_t>::max()),
               std::bad_alloc);
}

}  // namespace
}  // namespace smpst
