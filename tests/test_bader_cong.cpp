// Tests for the Bader–Cong work-stealing spanning tree algorithm: validity
// across every graph family, thread count, and seed; race robustness;
// disconnected inputs; the starvation fallback; and instrumentation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/bader_cong.hpp"
#include "core/steal_policy.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "sched/thread_pool.hpp"
#include "support/prng.hpp"

namespace smpst {
namespace {

BaderCongOptions opts_with(std::size_t threads, std::uint64_t seed = 42) {
  BaderCongOptions o;
  o.num_threads = threads;
  o.seed = seed;
  return o;
}

TEST(BaderCong, SingleVertex) {
  const Graph g = GraphBuilder::from_edges(1, {});
  const auto f = bader_cong_spanning_tree(g, opts_with(2));
  EXPECT_EQ(f.num_trees(), 1u);
  EXPECT_TRUE(f.is_root(0));
}

TEST(BaderCong, EmptyGraph) {
  const Graph g;
  const auto f = bader_cong_spanning_tree(g, opts_with(2));
  EXPECT_EQ(f.num_vertices(), 0u);
}

TEST(BaderCong, SingleThreadMatchesSequentialSemantics) {
  const Graph g = gen::make_family("random-nlogn", 500, 7);
  const auto f = bader_cong_spanning_tree(g, opts_with(1));
  const auto report = validate_spanning_forest(g, f);
  EXPECT_TRUE(report) << report.error;
  EXPECT_EQ(report.num_trees, report.graph_components);
}

TEST(BaderCong, IsolatedVerticesBecomeRoots) {
  const Graph g = gen::disjoint_chains(2, 10, 5);
  const auto f = bader_cong_spanning_tree(g, opts_with(4));
  const auto report = validate_spanning_forest(g, f);
  EXPECT_TRUE(report) << report.error;
  EXPECT_EQ(f.num_trees(), 7u);
}

TEST(BaderCong, ManyComponents) {
  const Graph g = gen::disjoint_chains(50, 20, 10);
  const auto f = bader_cong_spanning_tree(g, opts_with(4));
  const auto report = validate_spanning_forest(g, f);
  EXPECT_TRUE(report) << report.error;
  EXPECT_EQ(f.num_trees(), 60u);
}

// Property sweep: (family, threads) x seeds. Every run must be a valid
// spanning forest; the tree's *shape* may vary run to run.
using SweepParam = std::tuple<std::string, int>;

class BaderCongSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BaderCongSweep, ProducesValidForest) {
  const auto& [family, threads] = GetParam();
  const Graph g = gen::make_family(family, 600, 2024);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto f = bader_cong_spanning_tree(
        g, opts_with(static_cast<std::size_t>(threads), seed));
    const auto report = validate_spanning_forest(g, f);
    ASSERT_TRUE(report) << family << " p=" << threads << " seed=" << seed
                        << ": " << report.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndThreads, BaderCongSweep,
    ::testing::Combine(
        ::testing::Values("torus-rowmajor", "torus-random", "random-nlogn",
                          "random-1.5n", "2d60", "3d40", "ad3", "geo-flat",
                          "geo-hier", "chain-seq", "chain-random", "rmat",
                          "star"),
        ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name + "_p" + std::to_string(std::get<1>(info.param));
    });

TEST(BaderCong, RepeatedRunsOnSmallGraphStayValid) {
  // Many repetitions on a small dense graph maximize colouring races.
  const Graph g = gen::make_family("random-nlogn", 64, 3);
  ThreadPool pool(8);
  for (int run = 0; run < 50; ++run) {
    BaderCongOptions o = opts_with(8, static_cast<std::uint64_t>(run));
    const auto f = bader_cong_spanning_tree(g, pool, o);
    const auto report = validate_spanning_forest(g, f);
    ASSERT_TRUE(report) << "run " << run << ": " << report.error;
  }
}

TEST(BaderCong, PoolReuseAcrossGraphs) {
  ThreadPool pool(4);
  for (const char* family : {"ad3", "chain-seq", "torus-rowmajor"}) {
    const Graph g = gen::make_family(family, 300, 5);
    const auto f = bader_cong_spanning_tree(g, pool, opts_with(4));
    ASSERT_TRUE(validate_spanning_forest(g, f)) << family;
  }
}

TEST(BaderCong, StatsAccountForAllVertices) {
  const Graph g = gen::make_family("random-nlogn", 2000, 9);
  TraversalStats stats;
  BaderCongOptions o = opts_with(4);
  o.stats = &stats;
  const auto f = bader_cong_spanning_tree(g, o);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  EXPECT_EQ(stats.per_thread.size(), 4u);
  // Every vertex is processed at least once; duplicates are the excess.
  EXPECT_EQ(stats.total_processed(),
            g.num_vertices() + stats.duplicate_expansions);
  EXPECT_GE(stats.stub_vertices, 1u);
  EXPECT_FALSE(stats.fallback_triggered);
  std::uint64_t edges = 0;
  for (const auto& t : stats.per_thread) edges += t.edges_scanned;
  // Each processed vertex scans its full neighbourhood: at least 2m scans.
  EXPECT_GE(edges, g.num_arcs());
}

TEST(BaderCong, DuplicateExpansionsAreRare) {
  // The paper: "less than ten vertices for a graph with millions" — scaled
  // down, duplicates should be a vanishing fraction of n.
  const Graph g = gen::make_family("random-nlogn", 20000, 11);
  TraversalStats stats;
  BaderCongOptions o = opts_with(8);
  o.stats = &stats;
  ASSERT_TRUE(validate_spanning_forest(g, bader_cong_spanning_tree(g, o)));
  EXPECT_LT(stats.duplicate_expansions, g.num_vertices() / 100);
}

TEST(BaderCong, StubSizeIsBoundedByOptions) {
  const Graph g = gen::make_family("random-nlogn", 5000, 13);
  TraversalStats stats;
  BaderCongOptions o = opts_with(4);
  o.stub_steps = 16;
  o.stats = &stats;
  ASSERT_TRUE(validate_spanning_forest(g, bader_cong_spanning_tree(g, o)));
  EXPECT_LE(stats.stub_vertices, 17u);  // walk start + at most 16 new vertices
}

TEST(BaderCong, FallbackProducesValidForest) {
  // Force the detection mechanism: a long chain keeps at most one queue
  // element live, a single steal probe per round makes thieves fail and
  // sleep, and a hair-trigger threshold plus zero patience converts the
  // first such sleep into starvation. The chain is large enough that the
  // busy thread cannot finish before the thieves get scheduled.
  const Graph g = gen::chain(2'000'000);
  TraversalStats stats;
  BaderCongOptions o = opts_with(8);
  o.starvation_fraction = 0.01;
  o.starvation_patience = 1;
  o.steal_attempts = 1;
  o.idle_sleep = std::chrono::microseconds(50);
  o.stats = &stats;
  const auto f = bader_cong_spanning_tree(g, o);
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << report.error;
  EXPECT_TRUE(stats.fallback_triggered);
  EXPECT_GT(stats.fallback_seconds, 0.0);
}

TEST(BaderCong, FallbackDisabledStillCompletes) {
  const Graph g = gen::chain(5000);
  TraversalStats stats;
  BaderCongOptions o = opts_with(8);
  o.enable_fallback = false;
  o.stats = &stats;
  const auto f = bader_cong_spanning_tree(g, o);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  EXPECT_FALSE(stats.fallback_triggered);
}

TEST(BaderCong, StealChunkOneWorks) {
  const Graph g = gen::make_family("torus-rowmajor", 400, 21);
  BaderCongOptions o = opts_with(4);
  o.steal_chunk = 1;
  ASSERT_TRUE(validate_spanning_forest(g, bader_cong_spanning_tree(g, o)));
}

TEST(BaderCong, OversubscriptionBeyondCores) {
  const Graph g = gen::make_family("random-1.5n", 3000, 17);
  const auto f = bader_cong_spanning_tree(g, opts_with(16));
  ASSERT_TRUE(validate_spanning_forest(g, f));
}

TEST(StealPolicy, NeverSamplesSelfAndCoversEveryOtherVictim) {
  // Regression: the old sampler drew from [0, p) and `continue`d on
  // victim == tid, burning the steal-attempt budget on self-picks (half of
  // it at p = 2). Every draw must now be a usable victim, and all p-1
  // candidates must stay reachable.
  for (const std::size_t p : {2u, 3u, 8u}) {
    for (std::size_t tid = 0; tid < p; ++tid) {
      Xoshiro256 rng(0x5eed + tid);
      std::vector<int> seen(p, 0);
      for (int draw = 0; draw < 4000; ++draw) {
        const std::size_t victim = sample_steal_victim(rng, p, tid);
        ASSERT_LT(victim, p);
        ASSERT_NE(victim, tid) << "p=" << p << " tid=" << tid;
        ++seen[victim];
      }
      for (std::size_t v = 0; v < p; ++v) {
        if (v == tid) continue;
        EXPECT_GT(seen[v], 0) << "p=" << p << " tid=" << tid
                              << " never chose victim " << v;
      }
    }
  }
}

TEST(BaderCong, FallbackRunsStillComputeDuplicateAccounting) {
  // Regression: fallback runs used to skip the duplicate-expansions pass
  // entirely, silently reporting 0 with no colour accounting — exactly the
  // starvation runs the bc.duplicate_expansions metric exists for. Same
  // forced-fallback recipe as FallbackProducesValidForest.
  const Graph g = gen::chain(2'000'000);
  TraversalStats stats;
  BaderCongOptions o = opts_with(8);
  o.starvation_fraction = 0.01;
  o.starvation_patience = 1;
  o.steal_attempts = 1;
  o.idle_sleep = std::chrono::microseconds(50);
  o.stats = &stats;
  const auto f = bader_cong_spanning_tree(g, o);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  ASSERT_TRUE(stats.fallback_triggered);

  // The traversal made progress before the halt, and the accounting must
  // reflect it: colour base recorded, and the saturating identity
  // duplicates = max(0, dequeued - coloured) holds exactly.
  EXPECT_GT(stats.colored_vertices, 0u);
  const std::uint64_t dequeued = stats.total_processed();
  const std::uint64_t expected =
      dequeued > stats.colored_vertices ? dequeued - stats.colored_vertices
                                        : 0;
  EXPECT_EQ(stats.duplicate_expansions, expected);
}

TEST(BaderCong, CompletedRunsColourEveryVertex) {
  const Graph g = gen::make_family("torus-rowmajor", 900, 3);
  TraversalStats stats;
  BaderCongOptions o = opts_with(4);
  o.stats = &stats;
  ASSERT_TRUE(validate_spanning_forest(g, bader_cong_spanning_tree(g, o)));
  ASSERT_FALSE(stats.fallback_triggered);
  EXPECT_EQ(stats.colored_vertices, g.num_vertices());
}

}  // namespace
}  // namespace smpst
