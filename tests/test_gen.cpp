// Tests for every graph generator: sizes, degree structure, connectivity
// guarantees, and seed determinism.
#include <gtest/gtest.h>

#include "gen/geographic.hpp"
#include "gen/geometric.hpp"
#include "gen/kronecker.hpp"
#include "gen/mesh.hpp"
#include "gen/random_graph.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/stats.hpp"

namespace smpst {
namespace {

TEST(Torus, HasDegreeFourEverywhere) {
  const Graph g = gen::torus2d(8, 8);
  EXPECT_EQ(g.num_vertices(), 64u);
  EXPECT_EQ(g.num_edges(), 128u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4u) << v;
  }
  EXPECT_EQ(compute_stats(g).num_components, 1u);
}

TEST(Torus, TinyDimensionsDegenerate) {
  // 2-wide wraps collapse double edges; result stays connected and simple.
  const Graph g = gen::torus2d(2, 4);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(compute_stats(g).num_components, 1u);
}

TEST(Torus, SquareHelperChecksPerfectSquare) {
  const Graph g = gen::torus2d_square(49);
  EXPECT_EQ(g.num_vertices(), 49u);
  EXPECT_DEATH(gen::torus2d_square(50), "perfect square");
}

TEST(Mesh, FullProbabilityEqualsGrid) {
  const Graph g = gen::mesh2d(5, 7, 1.0, 1);
  EXPECT_EQ(g.num_vertices(), 35u);
  // Grid edge count: r*(c-1) + (r-1)*c.
  EXPECT_EQ(g.num_edges(), 5u * 6 + 4 * 7);
}

TEST(Mesh, ZeroProbabilityIsEmpty) {
  const Graph g = gen::mesh2d(5, 5, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Mesh, SixtyPercentKeepsRoughlySixtyPercent) {
  const Graph g = gen::mesh_2d60(10000, 42);
  const double full = 2.0 * 100 * 99;  // 100x100 grid edges
  const double ratio = static_cast<double>(g.num_edges()) / full;
  EXPECT_NEAR(ratio, 0.60, 0.03);
}

TEST(Mesh, Mesh3dStructure) {
  const Graph g = gen::mesh3d(4, 4, 4, 1.0, 7);
  EXPECT_EQ(g.num_vertices(), 64u);
  EXPECT_EQ(g.num_edges(), 3u * 3 * 16);
  const Graph h = gen::mesh_3d40(64, 9);
  EXPECT_EQ(h.num_vertices(), 64u);
  EXPECT_LT(h.num_edges(), g.num_edges());
}

TEST(Mesh, SeedDeterminism) {
  EXPECT_EQ(gen::mesh2d(10, 10, 0.5, 3), gen::mesh2d(10, 10, 0.5, 3));
  EXPECT_NE(gen::mesh2d(10, 10, 0.5, 3), gen::mesh2d(10, 10, 0.5, 4));
}

TEST(RandomGraph, ExactEdgeCount) {
  const Graph g = gen::random_graph(1000, 1500, 5);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_EQ(g.num_edges(), 1500u);
}

TEST(RandomGraph, NoSelfLoopsOrDuplicates) {
  const Graph g = gen::random_graph(50, 400, 6);
  EXPECT_EQ(g.num_edges(), 400u);  // dedup would have shrunk duplicates
  for (VertexId v = 0; v < 50; ++v) EXPECT_FALSE(g.has_edge(v, v));
}

TEST(RandomGraph, DenseCaseCompletes) {
  // m close to the maximum exercises the rejection loop.
  const Graph g = gen::random_graph(40, 40 * 39 / 2 - 5, 7);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(40 * 39 / 2 - 5));
}

TEST(RandomGraph, RejectsImpossibleM) {
  EXPECT_DEATH(gen::random_graph(4, 100, 1), "capacity");
}

TEST(Geometric, EveryVertexHasAtLeastKNeighbors) {
  const Graph g = gen::geometric_knn(500, 3, 11);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Undirected union of k-NN lists: degree >= k is not guaranteed per vertex
  // (k-NN is asymmetric), but min degree >= 1 and avg degree in [k, 2k].
  const auto s = compute_stats(g);
  EXPECT_GE(s.min_degree, 1u);
  EXPECT_GE(s.avg_degree, 3.0);
  EXPECT_LE(s.avg_degree, 6.0);
}

TEST(Geometric, Ad3IsKEquals3) {
  EXPECT_EQ(gen::ad3(200, 3), gen::geometric_knn(200, 3, 3));
}

TEST(Geometric, SeedDeterminism) {
  EXPECT_EQ(gen::geometric_knn(300, 4, 9), gen::geometric_knn(300, 4, 9));
}

TEST(Geometric, MatchesBruteForceOnSmallInstance) {
  // With k = n-1 every vertex connects to all others: the complete graph.
  const Graph g = gen::geometric_knn(12, 11, 13);
  EXPECT_EQ(g.num_edges(), 12u * 11 / 2);
}

TEST(Geographic, FlatIsConnectedAndSparse) {
  const Graph g = gen::geographic_flat(2000, 17);
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_GT(s.avg_degree, 2.0);
  EXPECT_LT(s.avg_degree, 16.0);
}

TEST(Geographic, FlatWithoutForcedConnectivity) {
  gen::GeoFlatParams params;
  params.force_connected = false;
  const Graph g = gen::geographic_flat(500, 3, params);
  EXPECT_EQ(g.num_vertices(), 500u);  // may be disconnected; just well-formed
}

TEST(Geographic, HierarchicalIsConnected) {
  const Graph g = gen::geographic_hierarchical(3000, 23);
  EXPECT_EQ(g.num_vertices(), 3000u);
  EXPECT_EQ(compute_stats(g).num_components, 1u);
}

TEST(Geographic, SeedDeterminism) {
  EXPECT_EQ(gen::geographic_flat(400, 5), gen::geographic_flat(400, 5));
  EXPECT_EQ(gen::geographic_hierarchical(400, 5),
            gen::geographic_hierarchical(400, 5));
}

TEST(Simple, ChainStructure) {
  const Graph g = gen::chain(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(compute_stats(g).diameter_lower_bound, 4u);
}

TEST(Simple, StarAndComplete) {
  EXPECT_EQ(gen::star(10).num_edges(), 9u);
  EXPECT_EQ(gen::star(10).degree(0), 9u);
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
}

TEST(Simple, BinaryTreeAndRing) {
  const Graph t = gen::binary_tree(7);
  EXPECT_EQ(t.num_edges(), 6u);
  EXPECT_EQ(t.degree(0), 2u);
  const Graph r = gen::ring(8);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(r.degree(v), 2u);
}

TEST(Simple, DisjointChainsAndIsolated) {
  const Graph g = gen::disjoint_chains(3, 4, 2);
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_EQ(compute_stats(g).num_components, 5u);
}

TEST(Simple, Lollipop) {
  const Graph g = gen::lollipop(5, 10);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(compute_stats(g).num_components, 1u);
  EXPECT_EQ(g.degree(14), 1u);  // tail end
}

TEST(Rmat, SizeAndSkew) {
  const Graph g = gen::rmat(10, 8, 31);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 1024u);  // most of 8*1024 survive dedup
  const auto s = compute_stats(g);
  EXPECT_GT(s.max_degree, 4 * static_cast<EdgeId>(s.avg_degree));
}

TEST(Registry, AllFamiliesBuildSmallInstances) {
  for (const auto& fam : gen::families()) {
    const Graph g = gen::make_family(fam.name, 256, 77);
    EXPECT_GE(g.num_vertices(), 16u) << fam.name;
  }
}

TEST(Registry, PaperFamiliesAreConnected) {
  // AD3 is deliberately absent: a 3-nearest-neighbour graph carries no
  // connectivity guarantee (the paper's algorithms return spanning forests
  // on it; ours do too).
  for (const char* name :
       {"torus-rowmajor", "torus-random", "random-nlogn", "geo-flat",
        "geo-hier", "chain-seq", "chain-random"}) {
    const Graph g = gen::make_family(name, 400, 99);
    EXPECT_EQ(compute_stats(g).num_components, 1u) << name;
  }
}

TEST(Registry, UnknownFamilyThrows) {
  EXPECT_THROW(gen::make_family("no-such-family", 100, 1),
               std::invalid_argument);
  EXPECT_FALSE(gen::is_family("no-such-family"));
  EXPECT_TRUE(gen::is_family("ad3"));
}

TEST(Registry, TorusLabelingsAreIsomorphicNotEqual) {
  const Graph a = gen::make_family("torus-rowmajor", 256, 5);
  const Graph b = gen::make_family("torus-random", 256, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace smpst
