// Tests of the query-service subsystem: registry LRU semantics, the latency
// histogram, admission control (reject-on-full, deadlines), cooperative
// cancellation, re-rooting, the wire protocol, and concurrent end-to-end
// queries validated by core/validate.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/cancellation.hpp"
#include "gen/registry.hpp"
#include "sched/thread_pool.hpp"
#include "service/bounded_queue.hpp"
#include "service/executor.hpp"
#include "service/graph_registry.hpp"
#include "service/service_stats.hpp"
#include "service/wire.hpp"

namespace smpst::service {
namespace {

Graph small_graph(std::uint64_t seed = 1) {
  return gen::make_family("torus-rowmajor", 256, seed);
}

// ---------------------------------------------------------------- registry

TEST(GraphRegistry, PutGetHitAndMiss) {
  GraphRegistry registry;
  EXPECT_EQ(registry.get("g"), nullptr);
  const auto stored = registry.put("g", small_graph());
  const auto got = registry.get("g");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), stored.get());
  const auto stats = registry.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(GraphRegistry, ReplaceUpdatesResidentBytes) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  const auto small_bytes = registry.stats().resident_bytes;
  registry.put("g", gen::make_family("torus-rowmajor", 1024, 1));
  EXPECT_EQ(registry.stats().entries, 1u);
  EXPECT_GT(registry.stats().resident_bytes, small_bytes);
}

TEST(GraphRegistry, EvictsLeastRecentlyUsedWhenOverBudget) {
  const std::size_t one = small_graph().memory_bytes();
  GraphRegistry::Options opts;
  opts.memory_budget_bytes = 2 * one + one / 2;  // room for two graphs
  GraphRegistry registry(opts);
  registry.put("a", small_graph(1));
  registry.put("b", small_graph(2));
  ASSERT_NE(registry.get("a"), nullptr);  // refresh a; b becomes LRU
  registry.put("c", small_graph(3));      // must evict b
  EXPECT_NE(registry.get("a"), nullptr);
  EXPECT_EQ(registry.get("b"), nullptr);
  EXPECT_NE(registry.get("c"), nullptr);
  EXPECT_EQ(registry.stats().evictions, 1u);
}

TEST(GraphRegistry, NewestEntrySurvivesEvenIfAloneOverBudget) {
  GraphRegistry::Options opts;
  opts.memory_budget_bytes = 1;  // nothing fits
  GraphRegistry registry(opts);
  registry.put("a", small_graph(1));
  registry.put("b", small_graph(2));
  EXPECT_EQ(registry.get("a"), nullptr);
  ASSERT_NE(registry.get("b"), nullptr);  // most recent insert is kept
}

TEST(GraphRegistry, PinnedSharedPtrSurvivesEviction) {
  GraphRegistry registry;
  const auto pinned = registry.put("g", small_graph());
  ASSERT_TRUE(registry.evict("g"));
  EXPECT_EQ(registry.get("g"), nullptr);
  EXPECT_EQ(pinned->num_vertices(), 256u);  // still alive and traversable
  EXPECT_FALSE(registry.evict("g"));
}

TEST(GraphRegistry, ListIsMostRecentlyUsedFirst) {
  GraphRegistry registry;
  registry.put("a", small_graph(1));
  registry.put("b", small_graph(2));
  registry.get("a");
  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[1].name, "b");
}

TEST(GraphRegistry, GenerateAndUnknownFamilyThrows) {
  GraphRegistry registry;
  const auto g = registry.generate("t", "torus-rowmajor", 64, 7);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num_vertices(), 64u);
  EXPECT_THROW(registry.generate("x", "no-such-family", 64, 7),
               std::invalid_argument);
}

// --------------------------------------------------------------- histogram

TEST(LatencyHistogram, EmptySnapshot) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
}

TEST(LatencyHistogram, SingleSampleEveryPercentileIsTheSample) {
  LatencyHistogram h;
  h.record_ms(3.5);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min_ms, 3.5);
  EXPECT_DOUBLE_EQ(s.max_ms, 3.5);
  // min/max clamping makes the single sample exact at every percentile.
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record_ms(static_cast<double>(i) / 10);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  const double p50 = s.percentile(50);
  const double p95 = s.percentile(95);
  const double p99 = s.percentile(99);
  EXPECT_LE(s.min_ms, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max_ms);
  // Power-of-two buckets: p50 of uniform [0.1, 100] must land within its
  // bucket, i.e. within a factor of two of the true median 50.
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
}

TEST(LatencyHistogram, ZeroAndNegativeSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.record_ms(0.0);
  h.record_ms(-1.0);  // clamped
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) h.record_ms(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, 4000u);
}

// ------------------------------------------------------------ bounded queue

TEST(BoundedQueue, RejectsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.close();
  EXPECT_FALSE(q.try_push(4));
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, BulkPushIsAllOrNothing) {
  BoundedQueue<int> q(3);
  std::vector<int> batch{1, 2};
  EXPECT_TRUE(q.try_push_all(batch));
  std::vector<int> too_big{3, 4};
  EXPECT_FALSE(q.try_push_all(too_big));
  EXPECT_EQ(too_big.size(), 2u);  // untouched
  EXPECT_EQ(q.size(), 2u);
}

// ------------------------------------------------------------- cancellation

TEST(CancelToken, FlagAndDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  token.request_cancel();
  EXPECT_TRUE(token.expired());

  CancelToken deadline_token;
  deadline_token.set_deadline(std::chrono::steady_clock::now());
  EXPECT_TRUE(deadline_token.expired());
  EXPECT_THROW(deadline_token.poll(), CancelledError);
}

TEST(CancelToken, PreCancelledTokenAbortsAlgorithms) {
  const Graph g = small_graph();
  ThreadPool pool(2);
  CancelToken token;
  token.request_cancel();
  RunOptions run;
  run.cancel = &token;
  for (const char* algo : {"bfs", "dfs", "bader-cong", "parallel-bfs"}) {
    EXPECT_THROW(run_algorithm(algo, g, pool, run), CancelledError) << algo;
  }
}

TEST(CancelToken, NullAndUnexpiredTokensDoNotDisturbResults) {
  const Graph g = small_graph();
  ThreadPool pool(2);
  CancelToken token;  // never expires
  RunOptions run;
  run.cancel = &token;
  for (const char* algo : {"bfs", "dfs", "bader-cong", "parallel-bfs"}) {
    const SpanningForest forest = run_algorithm(algo, g, pool, run);
    EXPECT_TRUE(validate_spanning_forest(g, forest).ok) << algo;
  }
}

// ------------------------------------------------------------------ reroot

TEST(Reroot, MovesRootAlongAChain) {
  // Path 0-1-2-3 rooted at 0; re-root at 3.
  SpanningForest forest;
  forest.parent = {0, 0, 1, 2};
  reroot(forest, 3);
  EXPECT_EQ(forest.parent[3], 3u);
  EXPECT_EQ(forest.parent[2], 3u);
  EXPECT_EQ(forest.parent[1], 2u);
  EXPECT_EQ(forest.parent[0], 1u);
  EXPECT_EQ(forest.num_trees(), 1u);
}

TEST(Reroot, RootingAtTheRootIsANoop) {
  SpanningForest forest;
  forest.parent = {0, 0, 0};
  reroot(forest, 0);
  EXPECT_EQ(forest.parent, (std::vector<VertexId>{0, 0, 0}));
}

TEST(Reroot, OtherTreesUntouchedAndResultStaysValid) {
  const Graph g = small_graph();
  ThreadPool pool(2);
  SpanningForest forest = run_algorithm("bfs", g, pool);
  reroot(forest, 123);
  EXPECT_TRUE(forest.is_root(123));
  EXPECT_TRUE(validate_spanning_forest(g, forest).ok);
}

// ---------------------------------------------------------------- executor

ExecutorOptions two_workers() {
  ExecutorOptions opts;
  opts.num_workers = 2;
  opts.threads_per_query = 2;
  return opts;
}

TEST(QueryExecutor, ServesAValidatedQuery) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  QueryExecutor executor(registry, two_workers());
  SpanningTreeRequest req;
  req.graph = "g";
  req.validate = true;
  req.want_stats = true;
  const QueryResult r = executor.submit(std::move(req)).get();
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_TRUE(r.validation.ok);
  EXPECT_EQ(r.num_trees, 1u);
  EXPECT_EQ(r.stats.per_thread.size(), 2u);  // want_stats flowed through
  EXPECT_GE(r.total_ms, r.exec_ms);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.served_ok, 1u);
  EXPECT_EQ(stats.latency.count, 1u);
}

TEST(QueryExecutor, RootedQueryReturnsRequestedRoot) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  QueryExecutor executor(registry, two_workers());
  SpanningTreeRequest req;
  req.graph = "g";
  req.root = 200;
  req.validate = true;
  const QueryResult r = executor.submit(std::move(req)).get();
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_TRUE(r.forest.is_root(200));
  EXPECT_TRUE(r.validation.ok);
}

TEST(QueryExecutor, UnknownGraphAndAlgorithmAndRoot) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  QueryExecutor executor(registry, two_workers());

  SpanningTreeRequest missing;
  missing.graph = "nope";
  EXPECT_EQ(executor.submit(std::move(missing)).get().status,
            QueryStatus::kNotFound);

  SpanningTreeRequest bad_algo;
  bad_algo.graph = "g";
  bad_algo.algorithm = "quantum";
  EXPECT_EQ(executor.submit(std::move(bad_algo)).get().status,
            QueryStatus::kInvalidArgument);

  SpanningTreeRequest bad_root;
  bad_root.graph = "g";
  bad_root.root = 1 << 20;
  EXPECT_EQ(executor.submit(std::move(bad_root)).get().status,
            QueryStatus::kInvalidArgument);

  const auto stats = executor.stats();
  EXPECT_EQ(stats.not_found, 1u);
  EXPECT_EQ(stats.failed, 2u);
}

TEST(QueryExecutor, ZeroDeadlineDeterministicallyTimesOut) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  QueryExecutor executor(registry, two_workers());
  for (int i = 0; i < 8; ++i) {
    SpanningTreeRequest req;
    req.graph = "g";
    req.timeout_ms = 0;
    const QueryResult r = executor.submit(std::move(req)).get();
    EXPECT_EQ(r.status, QueryStatus::kTimedOut);
    EXPECT_EQ(r.exec_ms, 0.0);  // never dispatched
  }
  EXPECT_EQ(executor.stats().timed_out, 8u);
}

TEST(QueryExecutor, RejectsWhenQueueIsFull) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  ExecutorOptions opts = two_workers();
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;  // workers hold off so the queue fills
  QueryExecutor executor(registry, opts);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 5; ++i) {
    SpanningTreeRequest req;
    req.graph = "g";
    futures.push_back(executor.submit(std::move(req)));
  }
  // Capacity 2: requests 3..5 must already be resolved as rejected.
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status,
              QueryStatus::kRejected);
  }
  executor.resume();
  EXPECT_EQ(futures[0].get().status, QueryStatus::kOk);
  EXPECT_EQ(futures[1].get().status, QueryStatus::kOk);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.submitted, 5u);
}

TEST(QueryExecutor, BatchAdmissionIsAtomic) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  ExecutorOptions opts = two_workers();
  opts.queue_capacity = 3;
  opts.start_paused = true;
  QueryExecutor executor(registry, opts);

  std::vector<SpanningTreeRequest> batch(4);
  for (auto& req : batch) req.graph = "g";
  auto futures = executor.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 4u);
  for (auto& fut : futures) {
    EXPECT_EQ(fut.get().status, QueryStatus::kRejected);  // 4 > capacity 3
  }

  std::vector<SpanningTreeRequest> fits(3);
  for (auto& req : fits) req.graph = "g";
  auto ok_futures = executor.submit_batch(std::move(fits));
  executor.resume();
  for (auto& fut : ok_futures) {
    EXPECT_EQ(fut.get().status, QueryStatus::kOk);
  }
}

TEST(QueryExecutor, ConcurrentClientsOverSharedGraphAllValidate) {
  GraphRegistry registry;
  registry.put("g", gen::make_family("random-nlogn", 2048, 42));
  ExecutorOptions opts;
  opts.num_workers = 4;
  opts.threads_per_query = 1;
  opts.queue_capacity = 256;
  QueryExecutor executor(registry, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  const char* algos[] = {"bader-cong", "bfs", "parallel-bfs", "sv"};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        SpanningTreeRequest req;
        req.graph = "g";
        req.algorithm = algos[c % 4];
        req.seed = static_cast<std::uint64_t>(c * 100 + i);
        req.validate = true;
        const QueryResult r = executor.submit(std::move(req)).get();
        if (r.ok() && r.validation.ok) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.served_ok, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.latency.count,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(stats.registry.hit_rate(), 0.9);
}

TEST(QueryExecutor, ShutdownDrainsAcceptedRequests) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  std::future<QueryResult> fut;
  {
    QueryExecutor executor(registry, two_workers());
    SpanningTreeRequest req;
    req.graph = "g";
    fut = executor.submit(std::move(req));
  }  // destructor drains and joins
  EXPECT_EQ(fut.get().status, QueryStatus::kOk);
}

// -------------------------------------------------------------------- wire

TEST(Wire, ParsesWordForm) {
  const Fields f = parse_line("query graph=g1 algo=bfs timeout=50");
  EXPECT_EQ(f.at("cmd"), "query");
  EXPECT_EQ(f.at("graph"), "g1");
  EXPECT_EQ(f.at("algo"), "bfs");
  EXPECT_EQ(f.at("timeout"), "50");
}

TEST(Wire, ParsesJsonForm) {
  const Fields f = parse_line(
      R"({"cmd":"query","graph":"a b","n":65536,"deep":1.5,"v":true,"x":null})");
  EXPECT_EQ(f.at("cmd"), "query");
  EXPECT_EQ(f.at("graph"), "a b");
  EXPECT_EQ(f.at("n"), "65536");
  EXPECT_EQ(f.at("deep"), "1.5");
  EXPECT_EQ(f.at("v"), "1");
  EXPECT_EQ(f.at("x"), "");
}

TEST(Wire, JsonStringEscapes) {
  const Fields f = parse_line(R"({"cmd":"load","path":"a\\b \"c\"\n"})");
  EXPECT_EQ(f.at("path"), "a\\b \"c\"\n");
}

TEST(Wire, MalformedInputThrows) {
  EXPECT_THROW(parse_line(""), std::invalid_argument);
  EXPECT_THROW(parse_line("   "), std::invalid_argument);
  EXPECT_THROW(parse_line("{\"cmd\":"), std::invalid_argument);
  EXPECT_THROW(parse_line("{\"cmd\":bogus}"), std::invalid_argument);
  EXPECT_THROW(parse_line("{\"cmd\":\"x\"} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_line("query missing-equals-value x"),
               std::invalid_argument);
  EXPECT_THROW(parse_line("key=value first"), std::invalid_argument);
}

// Regression: stats emission is gated on what the REQUEST asked for, not on
// whether the result object happens to carry populated per-thread data (the
// old renderer keyed on r.stats.per_thread.size() > 0, so internal stats
// collection leaked into stats=false responses).
TEST(Wire, StatsFieldsFollowTheRequestFlagNotTheData) {
  QueryResult r;
  r.status = QueryStatus::kOk;
  r.graph = "g";
  r.algorithm = "bader-cong";
  r.stats.per_thread.resize(2);  // populated, but the client never asked
  r.stats.per_thread[0].vertices_processed = 128;
  r.stats.duplicate_expansions = 3;
  r.stats_requested = false;
  const Fields quiet = parse_line(render_result(r));
  EXPECT_EQ(quiet.count("load_imbalance"), 0u);
  EXPECT_EQ(quiet.count("steals"), 0u);
  EXPECT_EQ(quiet.count("duplicate_expansions"), 0u);

  r.stats_requested = true;
  const Fields verbose = parse_line(render_result(r));
  EXPECT_EQ(verbose.count("load_imbalance"), 1u);
  EXPECT_EQ(verbose.count("steals"), 1u);
  EXPECT_EQ(verbose.at("duplicate_expansions"), "3");
}

TEST(QueryExecutor, PropagatesStatsRequestedToTheResult) {
  GraphRegistry registry;
  registry.put("g", small_graph());
  QueryExecutor executor(registry, two_workers());
  for (const bool want : {false, true}) {
    SpanningTreeRequest req;
    req.graph = "g";
    req.want_stats = want;
    const QueryResult r = executor.submit(std::move(req)).get();
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(r.stats_requested, want);
    const Fields f = parse_line(render_result(r));
    EXPECT_EQ(f.count("duplicate_expansions"), want ? 1u : 0u);
  }
}

TEST(Wire, RenderMetricsIsFlatJsonCoveringEveryInstrumentKind) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("wire.test.counter").add(7);
  reg.gauge("wire.test.gauge").set(-2);
  reg.histogram("wire.test.hist").record_ms(5.0);
  const Fields f = parse_line(render_metrics(reg.snapshot()));
  EXPECT_EQ(f.at("wire.test.counter"), "7");
  EXPECT_EQ(f.at("wire.test.gauge"), "-2");
  EXPECT_EQ(f.at("wire.test.hist.count"), "1");
  EXPECT_EQ(f.count("wire.test.hist.mean_ms"), 1u);
  EXPECT_EQ(f.count("wire.test.hist.p50_ms"), 1u);
  EXPECT_EQ(f.count("wire.test.hist.p95_ms"), 1u);
  EXPECT_EQ(f.count("wire.test.hist.p99_ms"), 1u);
}

TEST(Wire, WriterRoundTripsThroughParser) {
  JsonWriter w;
  w.field("cmd", "query");
  w.field("graph", std::string("g\"1\n"));
  w.field("n", static_cast<std::int64_t>(-5));
  w.field("rate", 0.25);
  w.field("ok", true);
  const Fields f = parse_line(w.str());
  EXPECT_EQ(f.at("cmd"), "query");
  EXPECT_EQ(f.at("graph"), "g\"1\n");
  EXPECT_EQ(f.at("n"), "-5");
  EXPECT_EQ(f.at("rate"), "0.25");
  EXPECT_EQ(f.at("ok"), "1");
}

}  // namespace
}  // namespace smpst::service
