// Tests for the data-parallel primitives: parallel_for (static and dynamic),
// parallel_reduce, and the Helman-JáJá prefix sums.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sched/parallel_for.hpp"
#include "sched/prefix_sum.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

TEST(ParallelFor, StaticCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_static(pool, 0, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, StaticHandlesEmptyAndOffsetRanges) {
  ThreadPool pool(3);
  int count = 0;
  parallel_for_static(pool, 5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<std::size_t> sum{0};
  parallel_for_static(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10+11+...+19
}

TEST(ParallelFor, StaticWithMoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for_static(pool, 0, 3,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DynamicCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);  // prime: uneven grains
  parallel_for_dynamic(pool, 0, hits.size(), 16,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DynamicEmptyRange) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for_dynamic(pool, 7, 7, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelReduce, SumAndMax) {
  ThreadPool pool(4);
  const auto sum = parallel_reduce<long>(
      pool, 0, 10001, 0L, [](std::size_t i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 10000L * 10001 / 2);

  const auto mx = parallel_reduce<std::size_t>(
      pool, 0, 1000, std::size_t{0},
      [](std::size_t i) { return (i * 7919) % 1000; },
      [](std::size_t a, std::size_t b) { return std::max(a, b); });
  EXPECT_EQ(mx, 999u);  // 7919 is coprime with 1000: all residues appear
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  ThreadPool pool(4);
  const auto sum = parallel_reduce<int>(
      pool, 3, 3, -42, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, -42);
}

TEST(PrefixSum, ExclusiveMatchesSerialReference) {
  ThreadPool pool(4);
  std::vector<long> data(1237);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<long>((i * 31) % 17) - 8;
  }
  std::vector<long> reference(data.size());
  std::exclusive_scan(data.begin(), data.end(), reference.begin(), 0L);
  const long expected_total = std::accumulate(data.begin(), data.end(), 0L);

  const long total = parallel_exclusive_scan(pool, data);
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(data, reference);
}

TEST(PrefixSum, InclusiveMatchesSerialReference) {
  ThreadPool pool(3);
  std::vector<int> data(500, 2);
  const int total = parallel_inclusive_scan(pool, data);
  EXPECT_EQ(total, 1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<int>(2 * (i + 1)));
  }
}

TEST(PrefixSum, EmptyAndSingle) {
  ThreadPool pool(4);
  std::vector<int> empty;
  EXPECT_EQ(parallel_exclusive_scan(pool, empty), 0);
  std::vector<int> one = {7};
  EXPECT_EQ(parallel_exclusive_scan(pool, one), 7);
  EXPECT_EQ(one[0], 0);
}

TEST(PrefixSum, MoreThreadsThanElements) {
  ThreadPool pool(8);
  std::vector<int> data = {1, 2, 3};
  EXPECT_EQ(parallel_exclusive_scan(pool, data), 6);
  EXPECT_EQ(data, (std::vector<int>{0, 1, 3}));
}

}  // namespace
}  // namespace smpst
