// SA3 fixture: (a) a ranked pair acquired against its lockdep rank order,
// (b) a same-rank nesting, and (c) a cross-function cycle between two
// unranked mutexes that no single function exhibits.
// Expected: SA3 x3 (rank inversion, same-rank nesting, cycle).
#include "support/thread_annotations.hpp"

namespace smpst {

class RankedPair {
 public:
  void backwards() {
    LockGuard<Mutex> net(mail_mutex_);    // rank 30 first...
    LockGuard<Mutex> s(session_mutex_);   // SA3: ...then rank 20
  }

  void same_rank() {
    LockGuard<Mutex> a(session_mutex_);
    LockGuard<Mutex> b(peer_mutex_);      // SA3: same rank may never nest
  }

 private:
  Mutex session_mutex_{lockdep::rank::kSession};
  Mutex peer_mutex_{lockdep::rank::kSession};
  Mutex mail_mutex_{lockdep::rank::kNetMailbox};
};

class CyclePair {
 public:
  void first_then_second() {
    LockGuard<Mutex> lk(first_);
    touch_second();                       // acquires second_ under first_
  }

  void second_then_first() {
    LockGuard<Mutex> lk(second_);
    touch_first();                        // SA3: acquires first_ under
  }                                       //      second_ -> cycle

 private:
  void touch_first() { LockGuard<Mutex> lk(first_); }
  void touch_second() { LockGuard<Mutex> lk(second_); }

  Mutex first_;
  Mutex second_;
};

}  // namespace smpst
