// SA2 fixture (good twin): same shapes with every memory_order spelled out.
// Expected: clean.
#include <atomic>
#include <cstdint>

namespace smpst {

using Flag = std::atomic<bool>;
using Ticket = std::atomic<std::uint64_t>;

class Dispenser {
 public:
  std::uint64_t take() {
    tickets_.fetch_add(1, std::memory_order_relaxed);
    tickets_.fetch_add(2, std::memory_order_relaxed);
    if (done_.load(std::memory_order_acquire)) return 0;
    done_.store(true, std::memory_order_release);
    return tickets_.load(std::memory_order_relaxed);
  }

 private:
  Ticket tickets_{0};
  Flag done_{false};
};

}  // namespace smpst
