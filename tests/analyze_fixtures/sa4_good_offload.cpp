// SA4 fixture (good twin): the loop thread blocks only in its own
// epoll_wait, takes only allowlisted bounded-hold mutexes, defers heavy
// work behind an annotated (audited) boundary, and the deferred lambda —
// which runs on an executor worker, not the loop — may block freely.
// Expected: clean.
#include <fstream>

#include "support/thread_annotations.hpp"

namespace smpst::net {

class TcpServer {
 public:
  void run() {
    for (;;) {
      ::epoll_wait(epoll_fd_, nullptr, 0, 50);
      drain_mailbox();
      dispatch_admin();
    }
  }

 private:
  void drain_mailbox() {
    LockGuard<Mutex> lk(mail_mutex_);   // allowlisted: O(1) swap
  }

  void dispatch_admin() {
    // Heavy commands are offloaded; the lambda runs on an executor worker
    // thread, so its blocking file I/O never touches the loop.
    executor_.submit_task([this] {
      std::ifstream in("graph.txt");
      (void)in;
    });
    // The inline path is audited by hand: bounded registry lookups only.
    run_light_command();  // smpst-analyze: allow(SA4): registry lookups only; heavy commands take the offload branch above
  }

  void run_light_command() {
    std::ifstream in("behind-the-audited-boundary.txt");
    (void)in;
  }

  Mutex mail_mutex_{lockdep::rank::kNetMailbox};
  QueryExecutor executor_;
  int epoll_fd_ = -1;
};

}  // namespace smpst::net
