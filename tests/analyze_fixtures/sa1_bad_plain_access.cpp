// SA1 fixture: plain accesses to the racy traversal storage from a
// concurrent context (a worker lambda handed to ThreadPool::run), including
// a reference alias and a raw-pointer escape.  Expected: SA1 x4.
#include <cstdint>
#include <memory>

namespace smpst {

struct TraversalState {
  std::unique_ptr<std::uint32_t[]> color;
  std::unique_ptr<std::uint32_t[]> parent;
  std::uint32_t n = 0;
};

void expand_bad(TraversalState& st, std::uint32_t v, std::uint32_t label) {
  // Plain read in a concurrent context: must be SMPST_BENIGN_RACE_LOAD.
  if (st.color[v] == 0) {                              // SA1
    // Plain write: must be SMPST_BENIGN_RACE_STORE.
    st.color[v] = label;                               // SA1
  }
  // Alias does not launder the race.
  auto& par = st.parent;
  par[v] = v;                                          // SA1
  // Pointer escape defeats the annotation layer entirely.
  std::uint32_t* raw = st.color.get();                 // SA1
  (void)raw;
}

void run_traversal(TraversalState& st, ThreadPool& pool) {
  pool.run([&](std::size_t tid) {
    expand_bad(st, static_cast<std::uint32_t>(tid), 1);
  });
}

}  // namespace smpst
