// SA3 fixture (good twin): nested acquisition in strictly increasing rank
// order, cross-function nesting that agrees between callers, and a
// hand-over-hand unlock that never inverts.  Expected: clean.
#include "support/thread_annotations.hpp"

namespace smpst {

class OrderedPair {
 public:
  void forwards() {
    LockGuard<Mutex> s(session_mutex_);   // rank 20 first...
    LockGuard<Mutex> net(mail_mutex_);    // ...then rank 30: increasing
  }

  void independent() {
    { LockGuard<Mutex> net(mail_mutex_); }
    { LockGuard<Mutex> s(session_mutex_); }  // sequential, never nested
  }

 private:
  Mutex session_mutex_{lockdep::rank::kSession};
  Mutex mail_mutex_{lockdep::rank::kNetMailbox};
};

class AgreeingPair {
 public:
  void path_one() {
    LockGuard<Mutex> lk(first_);
    touch_second();
  }

  void path_two() {
    LockGuard<Mutex> lk(first_);
    LockGuard<Mutex> lk2(second_);        // same order as path_one
  }

 private:
  void touch_second() { LockGuard<Mutex> lk(second_); }

  Mutex first_;
  Mutex second_;
};

}  // namespace smpst
