// SA2 fixture: atomics whose type hides behind `using` aliases, touched via
// overloaded operators, defaulted-order member calls, and implicit
// conversion reads — all invisible to a declaration-site regex.
// Expected: SA2 x5.
#include <atomic>
#include <cstdint>

namespace smpst {

using Flag = std::atomic<bool>;
using Ticket = std::atomic<std::uint64_t>;

class Dispenser {
 public:
  std::uint64_t take() {
    tickets_++;                      // SA2: implicit seq_cst RMW
    tickets_ += 2;                   // SA2: implicit seq_cst RMW
    if (done_) return 0;             // SA2: implicit conversion read
    done_ = true;                    // SA2: implicit seq_cst store
    return tickets_.load();          // SA2: defaulted memory_order
  }

 private:
  Ticket tickets_{0};
  Flag done_{false};
};

}  // namespace smpst
