// SA4 fixture: blocking operations reachable from the epoll loop thread —
// directly in run(), and transitively through a helper the loop calls.
// Expected: SA4 x6 (sleep, two unlisted mutexes, condvar wait, file
// stream, pool-region join).
#include <chrono>
#include <fstream>
#include <thread>

#include "support/thread_annotations.hpp"

namespace smpst::net {

class TcpServer {
 public:
  void run() {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));  // SA4
      tick();
    }
  }

 private:
  void tick() {
    {
      LockGuard<Mutex> lk(state_mutex_);
      while (!ready_) cv_.wait(state_mutex_);           // SA4: condvar wait
    }
    std::ifstream in("dump.txt");                       // SA4: file I/O
    load_snapshot();
  }

  void load_snapshot() {
    pool_.run([](std::size_t) {});    // SA4: region join is a barrier
    LockGuard<Mutex> lk(heavy_mutex_);   // SA4: not on the allowlist
  }

  Mutex state_mutex_;
  Mutex heavy_mutex_;
  CondVar cv_;
  bool ready_ = false;
  ThreadPool pool_;
};

}  // namespace smpst::net
