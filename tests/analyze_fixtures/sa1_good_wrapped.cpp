// SA1 fixture (good twin): every concurrent access to the racy storage goes
// through the sanctioned wrappers; sequential phases (constructor, pre-pool
// setup) use plain accesses, and prefetch takes addresses without reading.
// Expected: clean.
#include <cstdint>
#include <memory>

namespace smpst {

struct TraversalState {
  explicit TraversalState(std::uint32_t num)
      : n(num),
        color(std::make_unique<std::uint32_t[]>(num)),
        parent(std::make_unique<std::uint32_t[]>(num)) {
    // Single-threaded: the pool has not entered the traversal yet.
    for (std::uint32_t v = 0; v < n; ++v) {
      color[v] = 0;
      parent[v] = v;
    }
  }

  std::uint32_t n;
  std::unique_ptr<std::uint32_t[]> color;
  std::unique_ptr<std::uint32_t[]> parent;
};

void expand_good(TraversalState& st, std::uint32_t v, std::uint32_t label) {
  prefetch_read(&st.color[v + 4]);  // address-of for prefetch: no access
  if (SMPST_BENIGN_RACE_LOAD(st.color[v]) == 0) {
    SMPST_BENIGN_RACE_STORE(st.color[v], label);
    SMPST_BENIGN_RACE_STORE(st.parent[v], v);
  }
  std::uint32_t expected = 0;
  race_cas(st.color[v], expected, label, std::memory_order_release,
           std::memory_order_acquire);
}

void run_traversal(TraversalState& st, ThreadPool& pool) {
  pool.run([&](std::size_t tid) {
    expand_good(st, static_cast<std::uint32_t>(tid), 1);
  });
}

}  // namespace smpst
