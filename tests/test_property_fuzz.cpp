// Model-based randomized tests: the CSR graph against a reference adjacency
// map, the SplitQueue against std::deque, and end-to-end random pipelines
// that chain generator -> transform -> algorithm -> validator with randomly
// drawn parameters.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include <filesystem>

#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "graph/builder.hpp"
#include "graph/transform.hpp"
#include "sched/thread_pool.hpp"
#include "sched/work_queue.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/csr_file.hpp"
#include "support/prng.hpp"

namespace smpst {
namespace {

TEST(Fuzz, CsrMatchesReferenceAdjacencyMap) {
  Xoshiro256 rng(0xf00d);
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<VertexId>(2 + rng.next_bounded(60));
    const auto m = rng.next_bounded(3 * n);

    std::set<std::pair<VertexId, VertexId>> ref;  // canonical pairs
    std::vector<Edge> edges;
    for (EdgeId e = 0; e < m; ++e) {
      auto u = static_cast<VertexId>(rng.next_bounded(n));
      auto v = static_cast<VertexId>(rng.next_bounded(n));
      edges.push_back({u, v});  // may include loops and duplicates
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      ref.insert({u, v});
    }
    const Graph g = GraphBuilder::from_edges(n, edges);

    ASSERT_EQ(g.num_edges(), ref.size()) << "round " << round;
    std::map<VertexId, std::size_t> ref_degree;
    for (const auto& [u, v] : ref) {
      ++ref_degree[u];
      ++ref_degree[v];
    }
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(g.degree(v), ref_degree[v]) << "round " << round;
      for (VertexId w = 0; w < n; ++w) {
        const bool expected =
            ref.count({std::min(v, w), std::max(v, w)}) > 0 && v != w;
        ASSERT_EQ(g.has_edge(v, w), expected)
            << "round " << round << " edge " << v << "," << w;
      }
    }
  }
}

TEST(Fuzz, SplitQueueMatchesDequeModel) {
  Xoshiro256 rng(0xbeef);
  for (int round = 0; round < 30; ++round) {
    SplitQueue<int> q;
    std::deque<int> model;
    int next = 0;
    for (int op = 0; op < 2000; ++op) {
      switch (rng.next_bounded(4)) {
        case 0:  // push
          q.push(next);
          model.push_back(next);
          ++next;
          break;
        case 1: {  // pop
          int got = -1;
          const bool ok = q.pop(got);
          ASSERT_EQ(ok, !model.empty());
          if (ok) {
            ASSERT_EQ(got, model.front());
            model.pop_front();
          }
          break;
        }
        case 2: {  // steal up to k from the front
          const auto k = static_cast<std::size_t>(rng.next_bounded(8));
          std::vector<int> loot;
          const std::size_t took = q.steal(loot, k);
          ASSERT_EQ(took, std::min(k, model.size()));
          for (std::size_t i = 0; i < took; ++i) {
            ASSERT_EQ(loot[i], model.front());
            model.pop_front();
          }
          break;
        }
        default:
          ASSERT_EQ(q.size(), model.size());
          ASSERT_EQ(q.empty(), model.empty());
      }
    }
  }
}

TEST(Fuzz, RandomPipelinesAlwaysValidate) {
  // Random (family, size, algorithm, threads, deg2-preprocessing) pipelines.
  Xoshiro256 rng(0xcafe);
  ThreadPool pool(4);
  const auto& fams = gen::families();
  const auto& algos = algorithms();
  for (int round = 0; round < 25; ++round) {
    const auto& fam = fams[rng.next_bounded(fams.size())];
    const auto n = static_cast<VertexId>(64 + rng.next_bounded(700));
    const Graph g = gen::make_family(fam.name, n, rng.next());
    const auto& algo = algos[rng.next_bounded(algos.size())];
    const bool preprocess = rng.next_bernoulli(0.5);

    SpanningForest forest;
    if (preprocess) {
      const auto red = eliminate_degree2(g);
      const auto rf = run_algorithm(algo.name, red.reduced, pool, rng.next());
      forest.parent = expand_parent_forest(g, red, rf.parent);
    } else {
      forest = run_algorithm(algo.name, g, pool, rng.next());
    }
    const auto report = validate_spanning_forest(g, forest);
    ASSERT_TRUE(report) << "round " << round << ": " << fam.name << " + "
                        << algo.name << (preprocess ? " + deg2" : "") << ": "
                        << report.error;
  }
}

// Property: the blocked (out-of-core) backend is an exact stand-in for the
// in-memory CSR. For every random (family, size, block size, cache budget)
// draw, each blocked-capable algorithm at one thread must produce the
// *identical* parent array over both backends given the same seed — cache
// geometry (tiny blocks, heavy eviction, multi-block neighbour copies) must
// never leak into the result. At four threads, where schedules diverge, the
// blocked forest must still validate.
TEST(Fuzz, BlockedBackendForestsMatchResident) {
  Xoshiro256 rng(0xb10c);
  ThreadPool seq(1);
  ThreadPool par(4);
  const auto& fams = gen::families();
  for (int round = 0; round < 8; ++round) {
    const auto& fam = fams[rng.next_bounded(fams.size())];
    const auto n = static_cast<VertexId>(64 + rng.next_bounded(600));
    const Graph g = gen::make_family(fam.name, n, rng.next());

    const auto path = std::filesystem::path(::testing::TempDir()) /
                      ("smpst_fuzz_blocked_" + std::to_string(round) + ".csr");
    storage::write_csr_file(g, path.string());
    storage::BlockCacheOptions copts;
    copts.block_bytes = std::size_t{64} << rng.next_bounded(4);  // 64..512
    copts.budget_bytes = copts.block_bytes * (4 + rng.next_bounded(28));
    copts.shards = 1 + rng.next_bounded(4);
    copts.policy = rng.next_bernoulli(0.5) ? storage::EvictionPolicy::kClock
                                           : storage::EvictionPolicy::kLru;
    const storage::BlockedGraph bg(path.string(), copts);

    RunOptions run;
    run.seed = rng.next();
    for (const char* algo :
         {"bfs", "bader-cong", "sv", "sv-lock", "parallel-bfs"}) {
      ASSERT_TRUE(algorithm_supports_blocked(algo));
      const SpanningForest want = run_algorithm(algo, g, seq, run);
      const SpanningForest got = run_algorithm(algo, bg, seq, run);
      ASSERT_EQ(got.parent, want.parent)
          << "round " << round << ": " << fam.name << " + " << algo
          << " (block=" << copts.block_bytes
          << " budget=" << copts.budget_bytes << ")";

      const SpanningForest wide = run_algorithm(algo, bg, par, run);
      const auto report = validate_spanning_forest(bg, wide);
      ASSERT_TRUE(report.ok) << "round " << round << ": " << fam.name
                             << " + " << algo << " p=4: " << report.error;
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

// Property: duplicate_expansions counts real duplicate colourings, so it can
// never exceed the number of dequeues — a wrapped value would exceed it by
// ~2^64. Random sparse graphs with a large isolated-vertex tail exercise the
// case the old computation (total_processed() - num_vertices) underflowed on.
TEST(Fuzz, DuplicateExpansionsNeverWrapsOnDisconnectedGraphs) {
  Xoshiro256 rng(0xd00d);
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const auto reachable = static_cast<VertexId>(2 + rng.next_bounded(200));
    const auto isolated = static_cast<VertexId>(rng.next_bounded(500));
    const VertexId n = reachable + isolated;
    const auto m = rng.next_bounded(3 * reachable);
    std::vector<Edge> edges;
    for (EdgeId e = 0; e < m; ++e) {
      edges.push_back(
          {static_cast<VertexId>(rng.next_bounded(reachable)),
           static_cast<VertexId>(rng.next_bounded(reachable))});
    }
    const Graph g = GraphBuilder::from_edges(n, edges);

    BaderCongOptions opts;
    opts.seed = rng.next();
    TraversalStats stats;
    opts.stats = &stats;
    const SpanningForest forest = bader_cong_spanning_tree(g, pool, opts);
    ASSERT_TRUE(validate_spanning_forest(g, forest))
        << "round " << round << ": n=" << n << " m=" << m;
    ASSERT_LE(stats.duplicate_expansions, stats.total_processed())
        << "round " << round << ": wrapped (n=" << n
        << ", dequeued=" << stats.total_processed() << ")";
  }
}

}  // namespace
}  // namespace smpst
