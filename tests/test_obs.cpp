// Observability layer: trace ring semantics (wraparound, incremental drain,
// disabled-path cost), Chrome trace_event export (parsed back by a minimal
// JSON reader), MetricsRegistry under concurrent load, and the two stats
// regression tests — LatencyHistogram snapshot invariants under concurrent
// recorders and the non-wrapping duplicate_expansions count on graphs with
// isolated vertices.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"

// ------------------------------------------------------------------------
// Counting global allocator: proves the disabled trace path allocates
// nothing. Covers the scalar/array and sized forms GCC may route through.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace smpst {
namespace {

namespace trace = obs::trace;

// ------------------------------------------------------------------------
// Minimal JSON reader, just big enough to parse what the exporter writes:
// objects, arrays, strings with escapes, numbers, and bare literals.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;
};

struct JsonReader {
  const std::string& s;
  std::size_t pos = 0;

  void ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }
  char peek() {
    if (pos >= s.size()) throw std::runtime_error("json: eof");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("json: expected '") + c +
                               "' at " + std::to_string(pos));
    }
    ++pos;
  }
  std::string string_value() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s[pos++];
      if (c == '\\') {
        c = s[pos++];
        if (c == 'n') c = '\n';
        if (c == 't') c = '\t';
      }
      out += c;
    }
    ++pos;
    return out;
  }
  Json value() {
    ws();
    Json j;
    const char c = peek();
    if (c == '{') {
      j.kind = Json::Kind::kObject;
      ++pos;
      ws();
      if (peek() == '}') {
        ++pos;
        return j;
      }
      for (;;) {
        ws();
        const std::string key = string_value();
        ws();
        expect(':');
        j.object[key] = value();
        ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return j;
      }
    }
    if (c == '[') {
      j.kind = Json::Kind::kArray;
      ++pos;
      ws();
      if (peek() == ']') {
        ++pos;
        return j;
      }
      for (;;) {
        j.array.push_back(value());
        ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return j;
      }
    }
    if (c == '"') {
      j.kind = Json::Kind::kString;
      j.string = string_value();
      return j;
    }
    if (c == 't' || c == 'f') {
      j.kind = Json::Kind::kBool;
      j.boolean = c == 't';
      pos += c == 't' ? 4 : 5;
      return j;
    }
    if (c == 'n') {
      pos += 4;
      return j;
    }
    j.kind = Json::Kind::kNumber;
    std::size_t consumed = 0;
    j.number = std::stod(s.substr(pos), &consumed);
    pos += consumed;
    return j;
  }
};

Json parse_json(const std::string& text) {
  JsonReader r{text};
  Json j = r.value();
  r.ws();
  EXPECT_EQ(r.pos, text.size()) << "trailing bytes after JSON document";
  return j;
}

/// Drains leftovers from other tests so each test starts from empty rings.
void reset_tracing() {
  trace::disable();
  (void)trace::drain();
}

// ------------------------------------------------------------------------
// Tracing layer

TEST(Trace, DisabledMacrosCostNoAllocationsAndEmitNothing) {
  reset_tracing();
  ASSERT_FALSE(trace::enabled());
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    SMPST_TRACE_SCOPE("obs.test.disabled_scope");
    SMPST_TRACE_INSTANT("obs.test.disabled_instant");
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "disabled trace macros must not allocate";
  trace::enable();
  const auto events = trace::drain();
  for (const auto& ev : events) {
    EXPECT_STRNE(ev.name, "obs.test.disabled_scope");
    EXPECT_STRNE(ev.name, "obs.test.disabled_instant");
  }
  reset_tracing();
}

TEST(Trace, EmitsCompleteAndInstantEventsWithLaneLabels) {
  reset_tracing();
  trace::enable();
  trace::label_current_thread("obs-test-main");
  {
    SMPST_TRACE_SCOPE("obs.test.span");
    SMPST_TRACE_INSTANT("obs.test.marker");
  }
  trace::disable();
  const auto events = trace::drain();
  bool saw_span = false;
  bool saw_marker = false;
  std::uint32_t span_lane = 0;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "obs.test.span") {
      saw_span = true;
      span_lane = ev.lane;
      EXPECT_EQ(ev.phase, 'X');
    }
    if (std::string(ev.name) == "obs.test.marker") {
      saw_marker = true;
      EXPECT_EQ(ev.phase, 'i');
      EXPECT_EQ(ev.dur_ns, 0u);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_marker);
  bool labelled = false;
  for (const auto& lane : trace::lanes()) {
    if (lane.id == span_lane) labelled = lane.label == "obs-test-main";
  }
  EXPECT_TRUE(labelled) << "this thread's lane should carry its label";
  reset_tracing();
}

TEST(Trace, RingWrapsKeepingNewestEventsAndCountsDrops) {
  reset_tracing();
  const std::uint64_t dropped_before = trace::dropped_events();
  trace::enable(64);  // applies to rings registered from now on
  std::thread emitter([] {
    trace::label_current_thread("wrap-test");
    for (std::uint64_t i = 0; i < 200; ++i) {
      trace::emit_complete("obs.test.wrap", i * 100, i * 100 + 50);
    }
  });
  emitter.join();
  trace::disable();

  std::uint32_t wrap_lane = ~0u;
  for (const auto& lane : trace::lanes()) {
    if (lane.label == "wrap-test") wrap_lane = lane.id;
  }
  ASSERT_NE(wrap_lane, ~0u);

  std::vector<trace::TraceEvent> mine;
  for (const auto& ev : trace::drain()) {
    if (ev.lane == wrap_lane) mine.push_back(ev);
  }
  ASSERT_EQ(mine.size(), 64u) << "ring keeps exactly its capacity";
  // The survivors are the NEWEST 64 events (numbers 136..199), in order.
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].ts_ns, (136 + i) * 100) << "at " << i;
    EXPECT_EQ(mine[i].dur_ns, 50u) << "at " << i;
  }
  EXPECT_EQ(trace::dropped_events() - dropped_before, 136u);
  reset_tracing();
}

TEST(Trace, DrainIsIncremental) {
  reset_tracing();
  trace::enable();
  SMPST_TRACE_INSTANT("obs.test.first");
  auto count_named = [](const std::vector<trace::TraceEvent>& evs,
                        const char* name) {
    std::size_t n = 0;
    for (const auto& ev : evs) {
      if (std::string(ev.name) == name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_named(trace::drain(), "obs.test.first"), 1u);
  SMPST_TRACE_INSTANT("obs.test.second");
  const auto second = trace::drain();
  EXPECT_EQ(count_named(second, "obs.test.first"), 0u)
      << "already-drained events must not repeat";
  EXPECT_EQ(count_named(second, "obs.test.second"), 1u);
  reset_tracing();
}

TEST(Trace, ChromeExportIsValidJsonWithLanesAndPhases) {
  reset_tracing();
  trace::enable();
  trace::label_current_thread("obs-test-main");
  {
    SMPST_TRACE_SCOPE("obs.test.outer");
    SMPST_TRACE_INSTANT("obs.test.point");
  }
  std::thread worker([] {
    trace::label_current_thread("obs-test-worker", 0);
    SMPST_TRACE_INSTANT("obs.test.worker_point");
  });
  worker.join();
  trace::disable();

  std::ostringstream os;
  const std::size_t written = trace::write_chrome_trace(os);
  EXPECT_GE(written, 3u);
  const Json doc = parse_json(os.str());
  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  ASSERT_EQ(doc.object.count("traceEvents"), 1u);
  const Json& events = doc.object.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::kArray);

  std::map<std::string, int> phases;            // ph -> count
  std::map<double, std::string> lane_names;     // tid -> thread_name
  std::map<std::string, double> event_lane;     // name -> tid
  for (const Json& ev : events.array) {
    ASSERT_EQ(ev.kind, Json::Kind::kObject);
    ASSERT_EQ(ev.object.count("ph"), 1u);
    ASSERT_EQ(ev.object.count("pid"), 1u);
    ASSERT_EQ(ev.object.count("tid"), 1u);
    ASSERT_EQ(ev.object.count("name"), 1u);
    const std::string ph = ev.object.at("ph").string;
    ++phases[ph];
    const double tid = ev.object.at("tid").number;
    const std::string name = ev.object.at("name").string;
    if (ph == "M") {
      lane_names[tid] = ev.object.at("args").object.at("name").string;
    } else {
      event_lane[name] = tid;
      ASSERT_EQ(ev.object.count("ts"), 1u);
      EXPECT_GE(ev.object.at("ts").number, 0.0);
    }
    if (ph == "X") {
      ASSERT_EQ(ev.object.count("dur"), 1u);
      EXPECT_GE(ev.object.at("dur").number, 0.0);
    }
    if (ph == "i") EXPECT_EQ(ev.object.at("s").string, "t");
  }
  EXPECT_GE(phases["M"], 2) << "one thread_name record per lane";
  EXPECT_GE(phases["X"], 1);
  EXPECT_GE(phases["i"], 2);
  // Events land on the lane named after their thread.
  ASSERT_EQ(event_lane.count("obs.test.outer"), 1u);
  ASSERT_EQ(event_lane.count("obs.test.worker_point"), 1u);
  EXPECT_EQ(lane_names[event_lane["obs.test.outer"]], "obs-test-main");
  EXPECT_EQ(lane_names[event_lane["obs.test.worker_point"]],
            "obs-test-worker-0");
  EXPECT_NE(event_lane["obs.test.outer"],
            event_lane["obs.test.worker_point"]);
  reset_tracing();
}

// ------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, SameNameReturnsSameInstrument) {
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(&reg.counter("obs.test.same"), &reg.counter("obs.test.same"));
  EXPECT_EQ(&reg.gauge("obs.test.same_g"), &reg.gauge("obs.test.same_g"));
  EXPECT_EQ(&reg.histogram("obs.test.same_h"),
            &reg.histogram("obs.test.same_h"));
}

TEST(Metrics, SnapshotUnderConcurrentLoadIsMonotoneAndComplete) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& counter = reg.counter("obs.test.load_counter");
  obs::Gauge& gauge = reg.gauge("obs.test.load_gauge");
  obs::LatencyHistogram& hist = reg.histogram("obs.test.load_hist");
  const std::uint64_t base = counter.value();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> updaters;
  updaters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    updaters.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
        gauge.add(t % 2 == 0 ? 1 : -1);
        hist.record_ms(static_cast<double>(i % 7));
      }
    });
  }
  std::uint64_t last = base;
  while (!stop.load(std::memory_order_relaxed)) {
    const auto snap = reg.snapshot();
    bool found = false;
    for (const auto& c : snap.counters) {
      if (c.name == "obs.test.load_counter") {
        found = true;
        EXPECT_GE(c.value, last) << "counter must be monotone over snapshots";
        EXPECT_LE(c.value, base + kThreads * kPerThread);
        last = c.value;
      }
    }
    EXPECT_TRUE(found) << "registered instruments appear in every snapshot";
    if (last == base + kThreads * kPerThread) stop.store(true);
  }
  for (auto& t : updaters) t.join();
  const auto final_snap = reg.snapshot();
  for (const auto& c : final_snap.counters) {
    if (c.name == "obs.test.load_counter") {
      EXPECT_EQ(c.value, base + kThreads * kPerThread);
    }
  }
}

// ------------------------------------------------------------------------
// Regression: LatencyHistogram::snapshot() internal consistency under
// concurrent record_ms (the old implementation could report min > max or a
// count that disagreed with the bucket sum).

TEST(Histogram, SnapshotInvariantsHoldUnderConcurrentRecorders) {
  obs::LatencyHistogram hist;
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        hist.record_ms(static_cast<double>(x % 10007) / 10.0);
      }
    });
  }
  for (int round = 0; round < 3000; ++round) {
    const auto s = hist.snapshot();
    std::uint64_t bucket_sum = 0;
    for (const auto b : s.buckets) bucket_sum += b;
    ASSERT_EQ(s.count, bucket_sum)
        << "count must equal the bucket sum in every snapshot";
    if (s.count == 0) continue;
    ASSERT_LE(s.min_ms, s.mean_ms) << "round " << round;
    ASSERT_LE(s.mean_ms, s.max_ms) << "round " << round;
    const double p0 = s.percentile(0);
    const double p50 = s.percentile(50);
    const double p100 = s.percentile(100);
    ASSERT_LE(p0, p50);
    ASSERT_LE(p50, p100);
    ASSERT_GE(p0, s.min_ms);
    ASSERT_LE(p100, s.max_ms);
  }
  stop.store(true);
  for (auto& t : recorders) t.join();
}

TEST(Histogram, SingleThreadedStatsAreExact) {
  obs::LatencyHistogram hist;
  hist.record_ms(1.0);
  hist.record_ms(2.0);
  hist.record_ms(9.0);
  const auto s = hist.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.mean_ms, 4.0, 1e-9);
  EXPECT_NEAR(s.min_ms, 1.0, 1e-9);
  EXPECT_NEAR(s.max_ms, 9.0, 1e-9);
  // Percentiles resolve to power-of-two bucket edges, clamped to [min, max]:
  // p0 lands within the 1.0ms sample's bucket, p100 clamps to the max.
  EXPECT_GE(s.percentile(0), s.min_ms);
  EXPECT_LT(s.percentile(0), 2.0);
  EXPECT_NEAR(s.percentile(100), 9.0, 1e-9);
}

// ------------------------------------------------------------------------
// Regression: duplicate_expansions on graphs where fewer than n vertices
// flow through the traversal queues. The old computation
// (total_processed() - n) wrapped the uint64 in that case.

TEST(DuplicateExpansions, BoundedOnGraphWithIsolatedVertices) {
  // 100-vertex path, then 900 isolated vertices.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 100; ++v) edges.push_back({v, v + 1});
  const Graph g = GraphBuilder::from_edges(1000, edges);

  for (const std::size_t p : {1u, 2u, 4u}) {
    ThreadPool pool(p);
    BaderCongOptions opts;
    TraversalStats stats;
    opts.stats = &stats;
    const SpanningForest forest = bader_cong_spanning_tree(g, pool, opts);
    EXPECT_TRUE(validate_spanning_forest(g, forest).ok);
    // The bound that proves no wraparound: duplicates are a subset of the
    // dequeues, so the count can never exceed total_processed() (a wrapped
    // value would exceed it by ~2^64).
    EXPECT_LE(stats.duplicate_expansions, stats.total_processed())
        << "p=" << p;
  }
}

TEST(DuplicateExpansions, ZeroOnSingleThreadedConnectedRun) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 256; ++v) edges.push_back({v, v + 1});
  const Graph g = GraphBuilder::from_edges(256, edges);
  ThreadPool pool(1);
  BaderCongOptions opts;
  TraversalStats stats;
  opts.stats = &stats;
  const SpanningForest forest = bader_cong_spanning_tree(g, pool, opts);
  EXPECT_TRUE(validate_spanning_forest(g, forest).ok);
  // One thread can never race itself into a duplicate colouring.
  EXPECT_EQ(stats.duplicate_expansions, 0u);
}

}  // namespace
}  // namespace smpst
