// Fixture: raw standard-library concurrency primitives in core scope.
// smpst_lint must report SL004 for each (std::this_thread::yield must NOT
// be flagged — it is not std::thread).
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex raw_mutex;                 // SL004
std::condition_variable raw_cv;       // SL004

void bad() {
  std::lock_guard<std::mutex> lk(raw_mutex);  // SL004 (x2: guard + mutex arg)
}

void bad_thread() {
  std::thread t([] { std::this_thread::yield(); });  // SL004 (thread only)
  t.join();
}

}  // namespace fixture
