// Fixture: failpoints that execute while a scoped lock guard is held.
// smpst_lint must report SL002 for each.
#include "sched/spinlock.hpp"
#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace fixture {

void bad(smpst::SpinLock& lock) {
  smpst::LockGuard<smpst::SpinLock> lk(lock);
  SMPST_FAILPOINT("fixture.under_lock");  // SL002
}

void bad_nested(smpst::SpinLock& lock) {
  {
    smpst::LockGuard<smpst::SpinLock> lk(lock);
    if (true) {
      SMPST_FAILPOINT("fixture.nested_under_lock");  // SL002
    }
  }
}

}  // namespace fixture
