// Fixture: a failpoint between a split-phase barrier arrive and the matching
// wait.  A throw in that window strands the other parties.  smpst_lint must
// report SL003.
#include "support/failpoint.hpp"

namespace fixture {

struct SplitBarrier {
  int arrive() { return 0; }
  void wait(int) {}
};

void bad(SplitBarrier& barrier) {
  int token = barrier.arrive();
  SMPST_FAILPOINT("fixture.in_barrier_window");  // SL003
  barrier.wait(token);
}

void good(SplitBarrier& barrier) {
  SMPST_FAILPOINT("fixture.before_arrive");  // allowed
  int token = barrier.arrive();
  barrier.wait(token);
  SMPST_FAILPOINT("fixture.after_wait");  // allowed
}

}  // namespace fixture
