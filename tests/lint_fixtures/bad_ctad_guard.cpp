// Fixture: CTAD guard declarations — `LockGuard lk(m);` without explicit
// template arguments acquires exactly like `LockGuard<Mutex> lk(m);`.
// smpst_lint must report SL002 for each failpoint under a CTAD guard.
#include "sched/spinlock.hpp"
#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace fixture {

void bad_ctad_paren(smpst::SpinLock& lock) {
  smpst::LockGuard lk(lock);
  SMPST_FAILPOINT("fixture.ctad_paren");  // SL002
}

void bad_ctad_brace(smpst::SpinLock& lock) {
  smpst::LockGuard lk{lock};
  SMPST_FAILPOINT("fixture.ctad_brace");  // SL002
}

void good_after_scope(smpst::SpinLock& lock) {
  {
    smpst::LockGuard lk(lock);
  }
  SMPST_FAILPOINT("fixture.ctad_released");  // guard destroyed: no finding
}

}  // namespace fixture
