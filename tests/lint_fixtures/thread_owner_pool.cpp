// Fixture: the designated-owner exception.  Files named thread_owner* stand
// in for sched/thread_pool.* — std::thread is allowed here and smpst_lint
// must stay silent about it (but still flag other raw primitives).
#include <thread>
#include <vector>

namespace fixture {

void owner() {
  std::vector<std::thread> workers;
  workers.emplace_back([] {});
  for (auto& w : workers) w.join();
}

}  // namespace fixture
