// Fixture: include-hygiene violations.  smpst_lint must report SL005 for the
// relative include, the <bits/...> internal header, and the missing
// #pragma once (this header deliberately omits it).
#include "../sched/spinlock.hpp"
#include <bits/stl_vector.h>

namespace fixture {
inline int dummy() { return 0; }
}  // namespace fixture
