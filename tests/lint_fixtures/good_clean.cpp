// Fixture: fully conforming core-scope file.  smpst_lint must report zero
// findings here; if it ever flags this file the linter has a false positive.
#include <atomic>

#include "sched/spinlock.hpp"
#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace fixture {

std::atomic<int> counter{0};
std::atomic<bool>* flags = nullptr;

int good(smpst::SpinLock& lock) {
  // Failpoint before the guard: allowed.
  SMPST_FAILPOINT("fixture.good");
  counter.fetch_add(1, std::memory_order_acq_rel);
  flags[0].store(true, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  {
    smpst::LockGuard<smpst::SpinLock> lk(lock);
    // No failpoint in here.
  }
  // Guard scope closed: failpoints are legal again.
  SMPST_FAILPOINT("fixture.good.after");
  return counter.load(std::memory_order_acquire);
}

}  // namespace fixture
