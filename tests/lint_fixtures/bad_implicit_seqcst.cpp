// Fixture: every atomic operation below defaults to seq_cst.  smpst_lint
// must report SL001 for each one.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};
std::atomic<long> total{0};

int bad() {
  counter.store(1);                     // SL001: implicit seq_cst store
  counter++;                            // SL001: operator++ is seq_cst RMW
  total += 2;                           // SL001: operator+= is seq_cst RMW
  std::atomic_thread_fence();           // SL001: fence without an order
  return counter.load();                // SL001: implicit seq_cst load
}

}  // namespace fixture
