// Fixture: user-defined SMPST_SCOPED_CAPABILITY RAII classes acquire in
// their constructor just like LockGuard.  smpst_lint must learn the class
// name from its declaration and report SL002 for a failpoint executed while
// an instance is alive — and stay silent once the instance's scope ends.
#include "sched/spinlock.hpp"
#include "support/failpoint.hpp"
#include "support/thread_annotations.hpp"

namespace fixture {

class SMPST_SCOPED_CAPABILITY WatchGuard {
 public:
  explicit WatchGuard(smpst::SpinLock& l) SMPST_ACQUIRE(l) : lock_(l) {
    lock_.lock();
  }
  ~WatchGuard() SMPST_RELEASE() { lock_.unlock(); }

 private:
  smpst::SpinLock& lock_;
};

void bad_custom_guard(smpst::SpinLock& lock) {
  WatchGuard g(lock);
  SMPST_FAILPOINT("fixture.custom_guard");  // SL002
}

void good_after_scope(smpst::SpinLock& lock) {
  {
    WatchGuard g{lock};
  }
  SMPST_FAILPOINT("fixture.custom_released");  // guard destroyed: no finding
}

}  // namespace fixture
