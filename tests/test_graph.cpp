// Unit tests for the graph substrate: edge lists, CSR construction, I/O,
// relabelling, and statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"
#include "graph/stats.hpp"

namespace smpst {
namespace {

Graph triangle_plus_pendant() {
  // 0-1-2 triangle with pendant 3 off vertex 2.
  return GraphBuilder::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(EdgeList, CanonicalizeDropsLoopsAndDuplicates) {
  EdgeList list(4);
  list.add_edge(1, 0);
  list.add_edge(0, 1);
  list.add_edge(2, 2);  // self loop
  list.add_edge(3, 2);
  const std::size_t removed = list.canonicalize();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(list.num_edges(), 2u);
  EXPECT_TRUE(list.is_canonical());
  EXPECT_EQ(list.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(list.edges()[1], (Edge{2, 3}));
}

TEST(EdgeList, IsCanonicalRejectsUnsorted) {
  EdgeList list(4);
  list.add_edge(2, 3);
  list.add_edge(0, 1);
  EXPECT_FALSE(list.is_canonical());
}

TEST(EdgeList, EnsureVerticesGrowsOnly) {
  EdgeList list(4);
  list.ensure_vertices(2);
  EXPECT_EQ(list.num_vertices(), 4u);
  list.ensure_vertices(9);
  EXPECT_EQ(list.num_vertices(), 9u);
}

TEST(GraphBuilder, BuildsExpectedCsr) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(std::vector<VertexId>(n2.begin(), n2.end()),
            (std::vector<VertexId>{0, 1, 3}));
}

TEST(GraphBuilder, DedupsParallelEdges) {
  const Graph g = GraphBuilder::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, KeepsParallelEdgesWhenAsked) {
  BuildOptions opts;
  opts.dedup_parallel_edges = false;
  const Graph g = GraphBuilder::from_edges(3, {{0, 1}, {1, 0}}, opts);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, HasEdge) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, MemoryBytesPositive) {
  EXPECT_GT(triangle_plus_pendant().memory_bytes(), 0u);
}

// memory_bytes must report committed heap (capacity), not logical size —
// anything that budgets by it (the service registry) would otherwise
// under-account a graph whose vectors carry growth slack.
TEST(Graph, MemoryBytesCountsCapacityNotSize) {
  std::vector<EdgeId> offsets = {0, 1, 2};
  std::vector<VertexId> targets = {1, 0};
  offsets.reserve(1024);
  targets.reserve(4096);
  const std::size_t committed = offsets.capacity() * sizeof(EdgeId) +
                                targets.capacity() * sizeof(VertexId);
  const Graph g = Graph::from_csr(std::move(offsets), std::move(targets));
  EXPECT_EQ(g.memory_bytes(), committed);
  EXPECT_GE(g.memory_bytes(), 1024 * sizeof(EdgeId) + 4096 * sizeof(VertexId));
}

// The builder trims its arrays, so built graphs carry no slack: the exact
// accounting also means the reported bytes equal the minimal CSR footprint.
TEST(GraphBuilder, BuiltCsrCarriesNoCapacitySlack) {
  const Graph g = triangle_plus_pendant();
  const std::size_t minimal =
      (static_cast<std::size_t>(g.num_vertices()) + 1) * sizeof(EdgeId) +
      static_cast<std::size_t>(g.num_arcs()) * sizeof(VertexId);
  EXPECT_EQ(g.memory_bytes(), minimal);
}

TEST(Graph, FromCsrRejectsMalformedOffsets) {
  // Non-monotone offsets and a back() that disagrees with targets.size()
  // must both be refused — these are the invariants every traversal assumes.
  EXPECT_DEATH(Graph::from_csr({0, 2, 1, 2}, {1, 0}), "monotone");
  EXPECT_DEATH(Graph::from_csr({0, 1, 2}, {1, 0, 0}), "targets");
}

#ifndef NDEBUG
// Debug builds bound-check accessors; an out-of-range vertex id is a caller
// bug and must abort loudly instead of reading a stale offset pair.
TEST(GraphDeathTest, DegreeAndNeighborsRejectOutOfRangeVertex) {
  const Graph g = triangle_plus_pendant();
  EXPECT_DEATH((void)g.degree(4), "");
  EXPECT_DEATH((void)g.neighbors(99), "");
}
#endif

TEST(GraphIo, TextRoundTrip) {
  EdgeList list(5);
  list.add_edge(0, 1);
  list.add_edge(3, 4);
  std::stringstream ss;
  io::write_edge_list_text(list, ss);
  const EdgeList back = io::read_edge_list_text(ss);
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.edges(), list.edges());
}

TEST(GraphIo, BinaryRoundTrip) {
  EdgeList list(1000);
  for (VertexId v = 1; v < 1000; ++v) list.add_edge(v - 1, v);
  std::stringstream ss;
  io::write_edge_list_binary(list, ss);
  const EdgeList back = io::read_edge_list_binary(ss);
  EXPECT_EQ(back.num_vertices(), list.num_vertices());
  EXPECT_EQ(back.edges(), list.edges());
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTMAGIC garbage";
  EXPECT_THROW(io::read_edge_list_binary(ss), std::runtime_error);
}

TEST(GraphIo, TextRejectsOutOfRangeEndpoint) {
  std::stringstream ss;
  ss << "3 1\n0 7\n";
  EXPECT_THROW(io::read_edge_list_text(ss), std::runtime_error);
}

TEST(GraphIo, FileRoundTripBothFormats) {
  const Graph g = triangle_plus_pendant();
  for (const char* path : {"/tmp/smpst_io_test.txt", "/tmp/smpst_io_test.bin"}) {
    io::save_graph(g, path);
    const Graph back = io::load_graph(path);
    EXPECT_EQ(back, g) << path;
  }
}

TEST(GraphIo, ToEdgeListIsCanonical) {
  const auto list = io::to_edge_list(triangle_plus_pendant());
  EXPECT_TRUE(list.is_canonical());
  EXPECT_EQ(list.num_edges(), 4u);
}

TEST(Relabel, IdentityAndReverse) {
  const auto id = identity_permutation(4);
  EXPECT_EQ(id, (Permutation{0, 1, 2, 3}));
  const auto rev = reverse_permutation(4);
  EXPECT_EQ(rev, (Permutation{3, 2, 1, 0}));
}

TEST(Relabel, RandomIsPermutation) {
  const auto perm = random_permutation(1000, 42);
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_NE(perm, identity_permutation(1000));  // overwhelming probability
}

TEST(Relabel, RandomIsSeedDeterministic) {
  EXPECT_EQ(random_permutation(100, 7), random_permutation(100, 7));
  EXPECT_NE(random_permutation(100, 7), random_permutation(100, 8));
}

TEST(Relabel, BfsPermutationCoversAllVertices) {
  const Graph g = triangle_plus_pendant();
  const auto perm = bfs_permutation(g, 0);
  EXPECT_TRUE(is_permutation(perm));
  EXPECT_EQ(perm[0], 0u);
}

TEST(Relabel, BfsPermutationHandlesDisconnected) {
  const Graph g = GraphBuilder::from_edges(4, {{0, 1}});  // 2, 3 isolated
  const auto perm = bfs_permutation(g, 0);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Relabel, ApplyPermutationPreservesStructure) {
  const Graph g = triangle_plus_pendant();
  const auto perm = reverse_permutation(4);
  const Graph h = apply_permutation(g, perm);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(g.has_edge(u, v), h.has_edge(perm[u], perm[v]));
    }
  }
}

TEST(Relabel, IsPermutationRejectsBad) {
  EXPECT_FALSE(is_permutation({0, 0}));
  EXPECT_FALSE(is_permutation({0, 2}));
  EXPECT_TRUE(is_permutation({1, 0}));
}

TEST(Stats, TriangleWithPendant) {
  const auto s = compute_stats(triangle_plus_pendant());
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 4u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_EQ(s.degree2_vertices, 2u);
  EXPECT_EQ(s.diameter_lower_bound, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
}

TEST(Stats, CountsComponentsAndIsolated) {
  const Graph g = GraphBuilder::from_edges(5, {{0, 1}, {2, 3}});
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_components, 3u);
  EXPECT_EQ(s.isolated_vertices, 1u);
  EXPECT_EQ(s.largest_component, 2u);
}

TEST(Stats, ComponentLabelsAreDense) {
  const Graph g = GraphBuilder::from_edges(5, {{0, 1}, {2, 3}});
  VertexId count = 0;
  const auto labels = component_labels(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
}

TEST(Stats, DegreeHistogram) {
  const auto hist = degree_histogram(triangle_plus_pendant());
  ASSERT_EQ(hist.size(), 4u);  // max degree 3
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(Stats, ChainDiameterExact) {
  // A path's double sweep finds the true diameter.
  EdgeList list(10);
  for (VertexId v = 1; v < 10; ++v) list.add_edge(v - 1, v);
  const auto s = compute_stats(GraphBuilder::build(std::move(list)));
  EXPECT_EQ(s.diameter_lower_bound, 9u);
}

}  // namespace
}  // namespace smpst
