// Tests for connected components: all four engines must agree with the
// union-find ground truth on every family.
#include <gtest/gtest.h>

#include <string>

#include "cc/connected_components.hpp"
#include "cc/union_find.hpp"
#include "core/bader_cong.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"

namespace smpst {
namespace {

TEST(UnionFind, BasicOperations) {
  cc::UnionFind dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_EQ(dsu.num_sets(), 3u);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_TRUE(dsu.unite(1, 3));
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_EQ(dsu.num_sets(), 2u);
}

TEST(UnionFind, FindIsIdempotent) {
  cc::UnionFind dsu(100);
  for (VertexId v = 1; v < 100; ++v) dsu.unite(v - 1, v);
  const VertexId root = dsu.find(50);
  EXPECT_EQ(dsu.find(50), root);
  EXPECT_EQ(dsu.find(0), root);
  EXPECT_EQ(dsu.num_sets(), 1u);
}

TEST(SamePartition, DetectsAgreementAndDisagreement) {
  EXPECT_TRUE(cc::same_partition({0, 0, 1}, {5, 5, 9}));
  EXPECT_FALSE(cc::same_partition({0, 0, 1}, {5, 9, 9}));
  EXPECT_FALSE(cc::same_partition({0, 1}, {0, 0}));
  EXPECT_FALSE(cc::same_partition({0}, {0, 0}));
  EXPECT_TRUE(cc::same_partition({}, {}));
}

TEST(ConnectedComponents, KnownSmallGraph) {
  const Graph g = GraphBuilder::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  for (auto* fn : {&cc::cc_union_find, &cc::cc_bfs}) {
    const auto r = fn(g);
    EXPECT_EQ(r.count, 3u);
    EXPECT_EQ(r.label[0], r.label[2]);
    EXPECT_EQ(r.label[3], r.label[4]);
    EXPECT_NE(r.label[0], r.label[3]);
    EXPECT_NE(r.label[5], r.label[0]);
  }
}

class CcEngines : public ::testing::TestWithParam<std::string> {};

TEST_P(CcEngines, AllEnginesMatchGroundTruth) {
  const Graph g = gen::make_family(GetParam(), 500, 321);
  const auto truth = cc::cc_union_find(g);
  const auto bfs = cc::cc_bfs(g);
  EXPECT_EQ(bfs.count, truth.count);
  EXPECT_TRUE(cc::same_partition(bfs.label, truth.label));

  for (std::size_t p : {std::size_t{1}, std::size_t{4}}) {
    cc::ParallelCcOptions opts;
    opts.num_threads = p;
    const auto sv = cc::cc_shiloach_vishkin(g, opts);
    EXPECT_EQ(sv.count, truth.count) << "sv p=" << p;
    EXPECT_TRUE(cc::same_partition(sv.label, truth.label)) << "sv p=" << p;

    const auto lp = cc::cc_label_propagation(g, opts);
    EXPECT_EQ(lp.count, truth.count) << "lp p=" << p;
    EXPECT_TRUE(cc::same_partition(lp.label, truth.label)) << "lp p=" << p;

    const auto rem = cc::cc_rem_union(g, opts);
    EXPECT_EQ(rem.count, truth.count) << "rem p=" << p;
    EXPECT_TRUE(cc::same_partition(rem.label, truth.label)) << "rem p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CcEngines,
                         ::testing::Values("torus-rowmajor", "random-1.5n",
                                           "ad3", "geo-hier", "2d60", "rmat",
                                           "star"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-' || c == '.') c = '_';
                           }
                           return name;
                         });

TEST(ConnectedComponents, DisconnectedWithIsolated) {
  const Graph g = gen::disjoint_chains(3, 7, 4);
  const auto truth = cc::cc_union_find(g);
  EXPECT_EQ(truth.count, 7u);
  const auto sv = cc::cc_shiloach_vishkin(g, {.num_threads = 4});
  EXPECT_TRUE(cc::same_partition(sv.label, truth.label));
  const auto lp = cc::cc_label_propagation(g, {.num_threads = 4});
  EXPECT_TRUE(cc::same_partition(lp.label, truth.label));
}

TEST(ConnectedComponents, FromForestMatches) {
  const Graph g = gen::disjoint_chains(2, 50, 3);
  BaderCongOptions o;
  o.num_threads = 4;
  const auto forest = bader_cong_spanning_tree(g, o);
  const auto from_forest = cc::cc_from_forest(forest);
  const auto truth = cc::cc_union_find(g);
  EXPECT_EQ(from_forest.count, truth.count);
  EXPECT_TRUE(cc::same_partition(from_forest.label, truth.label));
}

TEST(ConnectedComponents, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(cc::cc_union_find(g).count, 0u);
  EXPECT_EQ(cc::cc_shiloach_vishkin(g, {.num_threads = 2}).count, 0u);
  EXPECT_EQ(cc::cc_label_propagation(g, {.num_threads = 2}).count, 0u);
  EXPECT_EQ(cc::cc_rem_union(g, {.num_threads = 2}).count, 0u);
}

TEST(ConnectedComponents, RemUnionUnderContention) {
  // Many threads hammering a dense-ish graph stresses the lock-free splices.
  const Graph g = gen::make_family("random-nlogn", 2000, 77);
  const auto truth = cc::cc_union_find(g);
  for (int run = 0; run < 10; ++run) {
    const auto rem = cc::cc_rem_union(g, {.num_threads = 8});
    ASSERT_EQ(rem.count, truth.count) << run;
    ASSERT_TRUE(cc::same_partition(rem.label, truth.label)) << run;
  }
}

TEST(ConnectedComponents, LabelsAreDense) {
  const Graph g = gen::disjoint_chains(5, 3, 2);
  const auto r = cc::cc_shiloach_vishkin(g, {.num_threads = 2});
  EXPECT_EQ(r.count, 7u);
  for (VertexId l : r.label) EXPECT_LT(l, r.count);
}

}  // namespace
}  // namespace smpst
