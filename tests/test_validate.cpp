// Negative tests: the validator must reject every kind of broken forest,
// since the whole experimental methodology leans on it as the oracle.
#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/spanning_forest.hpp"
#include "core/validate.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/builder.hpp"

namespace smpst {
namespace {

TEST(Validate, AcceptsBfsTree) {
  const Graph g = gen::torus2d(6, 6);
  const auto report = validate_spanning_forest(g, bfs_spanning_tree(g));
  EXPECT_TRUE(report);
  EXPECT_EQ(report.num_trees, 1u);
  EXPECT_EQ(report.tree_edges, 35u);
  EXPECT_EQ(report.graph_components, 1u);
}

TEST(Validate, RejectsSizeMismatch) {
  const Graph g = gen::chain(4);
  SpanningForest f;
  f.parent = {0, 0};
  const auto report = validate_spanning_forest(g, f);
  EXPECT_FALSE(report);
  EXPECT_NE(report.error.find("size"), std::string::npos);
}

TEST(Validate, RejectsOutOfRangeParent) {
  const Graph g = gen::chain(3);
  SpanningForest f;
  f.parent = {0, 0, 99};
  EXPECT_FALSE(validate_spanning_forest(g, f));
}

TEST(Validate, RejectsNonEdgeParent) {
  const Graph g = gen::chain(4);  // 0-1-2-3
  SpanningForest f;
  f.parent = {0, 0, 1, 0};  // {3,0} is not an edge
  const auto report = validate_spanning_forest(g, f);
  EXPECT_FALSE(report);
  EXPECT_NE(report.error.find("not a graph edge"), std::string::npos);
}

TEST(Validate, RejectsTwoCycle) {
  const Graph g = gen::ring(4);
  SpanningForest f;
  f.parent = {1, 0, 1, 2};  // 0 <-> 1 cycle
  const auto report = validate_spanning_forest(g, f);
  EXPECT_FALSE(report);
  EXPECT_NE(report.error.find("cycle"), std::string::npos);
}

TEST(Validate, RejectsLongCycle) {
  const Graph g = gen::ring(4);
  SpanningForest f;
  f.parent = {3, 0, 1, 2};  // 0 -> 3 -> 2 -> 1 -> 0
  EXPECT_FALSE(validate_spanning_forest(g, f));
}

TEST(Validate, RejectsSplitComponent) {
  const Graph g = gen::chain(4);
  SpanningForest f;
  f.parent = {0, 0, 2, 2};  // two trees in one component
  const auto report = validate_spanning_forest(g, f);
  EXPECT_FALSE(report);
}

TEST(Validate, AcceptsForestOnDisconnectedGraph) {
  const Graph g = gen::disjoint_chains(2, 3, 1);  // two chains + isolated
  const auto report = validate_spanning_forest(g, bfs_spanning_tree(g));
  EXPECT_TRUE(report);
  EXPECT_EQ(report.num_trees, 3u);
}

TEST(Validate, RejectsTooFewTreesOnDisconnectedGraph) {
  // Graph: 0-1  2-3 (two components). Forest claims one tree by using a
  // non-existent edge.
  const Graph g = GraphBuilder::from_edges(4, {{0, 1}, {2, 3}});
  SpanningForest f;
  f.parent = {0, 0, 1, 2};  // {2,1} is not an edge
  EXPECT_FALSE(validate_spanning_forest(g, f));
}

TEST(Validate, EmptyGraphValidEmptyForest) {
  const Graph g;
  SpanningForest f;
  EXPECT_TRUE(validate_spanning_forest(g, f));
}

TEST(SpanningForestType, RootsEdgesDepths) {
  // Manual forest on 6 vertices: tree 0<-1<-2, tree 3<-4, root 5.
  SpanningForest f;
  f.parent = {0, 0, 1, 3, 3, 5};
  EXPECT_EQ(f.num_trees(), 3u);
  EXPECT_EQ(f.num_tree_edges(), 3u);
  EXPECT_EQ(f.roots(), (std::vector<VertexId>{0, 3, 5}));
  const auto comp = f.component_of();
  EXPECT_EQ(comp[2], 0u);
  EXPECT_EQ(comp[4], 3u);
  EXPECT_EQ(comp[5], 5u);
  const auto depth = f.depths();
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[2], 2u);
  EXPECT_EQ(depth[4], 1u);
  const auto edges = f.tree_edges();
  EXPECT_EQ(edges.size(), 3u);
}

TEST(SpanningForestType, OrientTreeEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto f = orient_tree_edges(6, edges);
  EXPECT_EQ(f.num_trees(), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(f.num_tree_edges(), 3u);
  const auto comp = f.component_of();
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_TRUE(f.is_root(5));
}

TEST(SpanningForestType, OrientRejectsBadEndpoint) {
  EXPECT_DEATH(orient_tree_edges(2, {{0, 5}}), "out of range");
}

}  // namespace
}  // namespace smpst
