// Tests for the DIMACS and Graphviz DOT interchange formats.
#include <gtest/gtest.h>

#include <sstream>

#include "core/bfs.hpp"
#include "gen/geographic.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "graph/formats.hpp"
#include "graph/stats.hpp"

namespace smpst {
namespace {

TEST(Dimacs, RoundTrip) {
  EdgeList list(5);
  list.add_edge(0, 1);
  list.add_edge(3, 4);
  list.add_edge(1, 4);
  std::stringstream ss;
  io::write_dimacs(list, ss, "round trip test");
  const EdgeList back = io::read_dimacs(ss);
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.edges(), list.edges());
}

TEST(Dimacs, ParsesCommentsAndColFormat) {
  std::stringstream ss;
  ss << "c a comment\nc another\np col 3 2\ne 1 2\ne 2 3\n";
  const EdgeList list = io::read_dimacs(ss);
  EXPECT_EQ(list.num_vertices(), 3u);
  EXPECT_EQ(list.num_edges(), 2u);
  EXPECT_EQ(list.edges()[0], (Edge{0, 1}));
}

TEST(Dimacs, RejectsMalformedInput) {
  {
    std::stringstream ss;
    ss << "e 1 2\n";  // edge before problem line
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss;
    ss << "p edge 3 1\ne 1 9\n";  // endpoint out of range
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss;
    ss << "p edge 3 5\ne 1 2\n";  // wrong edge count
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
  {
    std::stringstream ss;
    ss << "x nonsense\n";
    EXPECT_THROW(io::read_dimacs(ss), std::runtime_error);
  }
}

TEST(Dot, PlainGraph) {
  const Graph g = gen::ring(3);
  std::stringstream ss;
  io::write_dot(g, ss, nullptr, "ring3");
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph ring3 {"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1"), std::string::npos);
  EXPECT_EQ(out.find("penwidth"), std::string::npos);
}

TEST(Dot, HighlightsSpanningTree) {
  const Graph g = gen::ring(4);
  const auto forest = bfs_spanning_tree(g);
  std::stringstream ss;
  io::write_dot(g, ss, &forest.parent);
  const std::string out = ss.str();
  // One root box, three bold tree edges, one dashed non-tree edge.
  EXPECT_NE(out.find("[shape=box]"), std::string::npos);
  std::size_t bold = 0;
  std::size_t dashed = 0;
  for (std::size_t pos = 0; (pos = out.find("penwidth", pos)) != std::string::npos;
       ++pos) {
    ++bold;
  }
  for (std::size_t pos = 0; (pos = out.find("dashed", pos)) != std::string::npos;
       ++pos) {
    ++dashed;
  }
  EXPECT_EQ(bold, 3u);
  EXPECT_EQ(dashed, 1u);
}

TEST(Geographic, TinyHierarchicalInstancesDoNotWrap) {
  // Regression: n just above the backbone left domain_pop > rest and an
  // unsigned wrap produced a multi-gigabyte "subdomain" population.
  for (VertexId n : {8u, 20u, 60u, 100u}) {
    const Graph g = gen::geographic_hierarchical(n, 42);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_EQ(compute_stats(g).num_components, 1u) << n;
  }
}

}  // namespace
}  // namespace smpst
