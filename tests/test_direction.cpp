// Tests for the direction-optimizing (push↔pull) parallel BFS: the
// density heuristic must pull on low-diameter/high-degree shapes, never pay
// a whole-shard scan on high-diameter trickles, keep the hysteresis from
// oscillating, honour cancellation identically in both directions, and
// produce forests indistinguishable (validity, component partition) from
// the push-only baseline.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cancellation.hpp"
#include "core/parallel_bfs.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "graph/graph.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

ParallelBfsStats run_auto(const Graph& g, std::size_t p,
                          SpanningForest* forest_out = nullptr) {
  ParallelBfsOptions opts;
  opts.num_threads = p;
  ParallelBfsStats stats;
  opts.stats = &stats;
  const auto f = parallel_bfs_spanning_tree(g, opts);
  const auto report = validate_spanning_forest(g, f);
  EXPECT_TRUE(report) << report.error;
  if (forest_out != nullptr) *forest_out = f;
  return stats;
}

TEST(Direction, StarPullsOnItsDenseLevel) {
  // Star, centre = vertex 0: the level after the centre holds every leaf,
  // whose edges are all of the unexplored work — the densest frontier a
  // graph can produce. The heuristic must choose pull for it.
  const Graph g = gen::make_family("star", 4096, 1);
  const auto stats = run_auto(g, 2);
  EXPECT_GE(stats.pull_levels, 1u);
  EXPECT_EQ(stats.levels, 2u);  // centre, then all leaves
}

TEST(Direction, ChainNeverPulls) {
  // A chain's frontier is one vertex (two edges) at every level; near
  // exhaustion unexplored_edges -> 0 makes the density ratio meaningless,
  // which is exactly what the absolute frontier-edge floor guards. A single
  // pull here would scan all n vertices to advance one step.
  const Graph g = gen::make_family("chain-seq", 8192, 1);
  const auto stats = run_auto(g, 2);
  EXPECT_EQ(stats.pull_levels, 0u);
  EXPECT_EQ(stats.direction_switches, 0u);
}

TEST(Direction, MediumDiameterFamiliesNeverPull) {
  // geo-flat is the shape that mis-tuned thresholds get wrong: frontiers
  // big enough to clear naive edge-count tests but never a large fraction
  // of n, so every pull level pays an O(n) scan for little work. The
  // committed perf baseline depends on these staying push-only.
  for (const char* family : {"geo-flat", "torus-rowmajor", "2d60"}) {
    const Graph g = gen::make_family(family, 16384, 24301);
    const auto stats = run_auto(g, 2);
    EXPECT_EQ(stats.pull_levels, 0u) << family;
  }
}

TEST(Direction, EmptyGraphAndSingleVertex) {
  const Graph empty;
  const auto f0 = parallel_bfs_spanning_tree(empty, ParallelBfsOptions{});
  EXPECT_TRUE(f0.parent.empty());

  const Graph one = gen::make_family("star", 1, 1);
  ParallelBfsOptions opts;
  ParallelBfsStats stats;
  opts.stats = &stats;
  const auto f1 = parallel_bfs_spanning_tree(one, opts);
  ASSERT_EQ(f1.parent.size(), 1u);
  EXPECT_EQ(f1.parent[0], 0u);
  EXPECT_EQ(stats.pull_levels, 0u);  // a 1-vertex frontier must never pull
}

TEST(Direction, HysteresisDoesNotOscillate) {
  // random-nlogn has the classic BFS profile: a couple of explosive middle
  // levels between thin head and tail. The asymmetric thresholds must
  // produce one push->pull transition and at most one transition back —
  // not a flip on every level.
  const Graph g = gen::make_family("random-nlogn", 16384, 24301);
  const auto stats = run_auto(g, 2);
  EXPECT_GE(stats.pull_levels, 1u);  // the dense levels must actually pull
  EXPECT_LE(stats.direction_switches, 2u);
}

TEST(Direction, PushOnlyOptionForcesPush) {
  const Graph g = gen::make_family("star", 4096, 1);
  ParallelBfsOptions opts;
  opts.num_threads = 2;
  opts.direction = BfsDirection::kPushOnly;
  ParallelBfsStats stats;
  opts.stats = &stats;
  const auto f = parallel_bfs_spanning_tree(g, opts);
  EXPECT_TRUE(validate_spanning_forest(g, f));
  EXPECT_EQ(stats.pull_levels, 0u);
  EXPECT_EQ(stats.push_levels, stats.levels);
}

TEST(Direction, CancelHonoredInAutoMode) {
  // The cancel poll sits on the coordinating thread before each level's
  // direction is chosen, so a cancelled token must abort a run that would
  // pull exactly as it aborts a push-only run.
  const Graph g = gen::make_family("star", 4096, 1);
  CancelToken token;
  token.request_cancel();
  ParallelBfsOptions opts;
  opts.num_threads = 2;
  opts.cancel = &token;
  EXPECT_THROW(parallel_bfs_spanning_tree(g, opts), CancelledError);
}

TEST(Direction, AutoMatchesPushOnlyComponentPartition) {
  // Pull levels claim vertices by shard scan instead of CAS races, so the
  // specific parents may differ from push's — but both must be valid
  // forests with the identical component partition: components are
  // discovered in vertex order, so the root set (parent[v] == v) is
  // deterministic and direction-independent.
  for (const char* family : {"star", "random-nlogn", "geo-flat"}) {
    const Graph g = gen::make_family(family, 8192, 7);
    ParallelBfsOptions push;
    push.num_threads = 2;
    push.direction = BfsDirection::kPushOnly;
    const auto fp = parallel_bfs_spanning_tree(g, push);
    ASSERT_TRUE(validate_spanning_forest(g, fp)) << family;

    SpanningForest fa;
    run_auto(g, 2, &fa);
    ASSERT_EQ(fa.parent.size(), fp.parent.size()) << family;
    std::set<VertexId> roots_push;
    std::set<VertexId> roots_auto;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (fp.parent[v] == v) roots_push.insert(v);
      if (fa.parent[v] == v) roots_auto.insert(v);
    }
    EXPECT_EQ(roots_push, roots_auto) << family;
  }
}

}  // namespace
}  // namespace smpst
