// Tests for the out-of-core storage backend: the SMPSTCSR file format, the
// sharded block cache (pin/unpin, eviction policies, refusal semantics,
// fault injection), the BlockedGraph neighbor interface, and the service
// integration (blocked registry entries charged at cache budget, queries
// served end-to-end over a graph larger than its cache).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "sched/thread_pool.hpp"
#include "service/executor.hpp"
#include "service/graph_registry.hpp"
#include "storage/block_cache.hpp"
#include "storage/blocked_graph.hpp"
#include "storage/csr_file.hpp"
#include "support/failpoint.hpp"

namespace smpst::storage {
namespace {

namespace fs = std::filesystem;

/// Writes `g` to a unique SMPSTCSR file under the gtest temp dir and returns
/// the path. Files accumulate per test-process run; the OS temp dir owns
/// cleanup, matching the repo's other file-writing tests.
std::string csr_path_for(const Graph& g, const std::string& tag) {
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("smpst_test_" + tag + ".csr");
  write_csr_file(g, p.string());
  return p.string();
}

Graph medium_graph(std::uint64_t seed = 1) {
  return gen::make_family("random-nlogn", 1024, seed);
}

// ------------------------------------------------------------- file format

TEST(CsrFile, RoundTripsThroughDisk) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "roundtrip");

  const CsrFileHeader header = read_csr_header(path);
  EXPECT_EQ(header.num_vertices, g.num_vertices());
  EXPECT_EQ(header.num_arcs, g.num_arcs());
  EXPECT_EQ(static_cast<std::uint64_t>(fs::file_size(path)),
            header.file_bytes);

  const Graph back = read_csr_file(path);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_arcs(), g.num_arcs());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()))
        << "vertex " << v;
  }
}

TEST(CsrFile, RejectsBadMagicAndTruncation) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "corrupt");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("BOGUS!!!", 8);
  }
  EXPECT_THROW(read_csr_header(path), StorageError);

  const std::string trunc =
      (fs::path(::testing::TempDir()) / "smpst_test_trunc.csr").string();
  fs::copy_file(csr_path_for(g, "trunc_src"), trunc,
                fs::copy_options::overwrite_existing);
  fs::resize_file(trunc, fs::file_size(trunc) / 2);
  EXPECT_THROW(read_csr_header(trunc), StorageError);
}

// -------------------------------------------------------------- block cache

TEST(BlockCache, RefusesEvictionWhenEveryFrameIsPinned) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "pinned");
  BlockCacheOptions opts;
  opts.block_bytes = 64;
  opts.budget_bytes = 1;  // floors at two frames
  opts.shards = 1;
  BlockCache cache(path, fs::file_size(path), opts);
  ASSERT_EQ(cache.num_frames(), 2u);
  ASSERT_GT(cache.num_blocks(), 3u);

  (void)cache.pin(0);
  (void)cache.pin(1);
  EXPECT_THROW((void)cache.pin(2), StorageError);
  EXPECT_GE(cache.stats().pin_refusals, 1u);

  cache.unpin(1);  // frees a victim; the next miss must now succeed
  (void)cache.pin(2);
  cache.unpin(2);
  cache.unpin(0);
}

TEST(BlockCache, PinnedBytesMatchTheFileUnderBothPolicies) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "verify");
  std::ifstream raw(path, std::ios::binary);
  const std::vector<char> file_bytes{std::istreambuf_iterator<char>(raw),
                                     std::istreambuf_iterator<char>()};

  for (const EvictionPolicy policy :
       {EvictionPolicy::kClock, EvictionPolicy::kLru}) {
    BlockCacheOptions opts;
    opts.block_bytes = 256;
    opts.budget_bytes = 8 * 256;  // far fewer frames than blocks: evict a lot
    opts.shards = 2;
    opts.policy = policy;
    BlockCache cache(path, file_bytes.size(), opts);
    // Sweep twice (forward then backward) so the second pass re-misses
    // blocks the first pass evicted.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint64_t i = 0; i < cache.num_blocks(); ++i) {
        const std::uint64_t b =
            pass == 0 ? i : cache.num_blocks() - 1 - i;
        const std::byte* data = cache.pin(b);
        const std::size_t off = static_cast<std::size_t>(b) * 256;
        const std::size_t len = std::min<std::size_t>(
            256, file_bytes.size() - off);
        EXPECT_EQ(std::memcmp(data, file_bytes.data() + off, len), 0)
            << "block " << b << " policy " << to_string(policy);
        cache.unpin(b);
      }
    }
    EXPECT_GT(cache.stats().evictions, 0u);
  }
}

// Thread-safety hammer: concurrent pins of overlapping block sets, content
// verified under the pin. Run under TSan this checks the shard locking and
// the loading/CondVar handoff; under ASan it checks frame lifetime.
TEST(BlockCache, ConcurrentPinUnpinKeepsContentsStable) {
  const Graph g = medium_graph(7);
  const std::string path = csr_path_for(g, "hammer");
  std::ifstream raw(path, std::ios::binary);
  const std::vector<char> file_bytes{std::istreambuf_iterator<char>(raw),
                                     std::istreambuf_iterator<char>()};

  BlockCacheOptions opts;
  opts.block_bytes = 128;
  opts.budget_bytes = 16 * 128;
  opts.shards = 4;
  BlockCache cache(path, file_bytes.size(), opts);
  const std::uint64_t blocks = cache.num_blocks();

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t s = 0x9e3779b97f4a7c15ULL * static_cast<unsigned>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        const std::uint64_t b = s % blocks;
        const std::byte* data = nullptr;
        try {
          data = cache.pin(b);
        } catch (const StorageError&) {
          continue;  // transient all-pinned refusal is legal under load
        }
        const std::size_t off = static_cast<std::size_t>(b) * 128;
        const std::size_t len =
            std::min<std::size_t>(128, file_bytes.size() - off);
        if (std::memcmp(data, file_bytes.data() + off, len) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        cache.unpin(b);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.read_errors, 0u);
}

TEST(BlockCache, ReadFailpointSurfacesAndLeavesTheCacheUsable) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "failpoint");
  BlockCacheOptions opts;
  opts.block_bytes = 256;
  opts.shards = 1;
  BlockCache cache(path, fs::file_size(path), opts);

  fail::enable("storage.block.read", "throw");
  EXPECT_THROW((void)cache.pin(0), fail::FailpointError);
  fail::disable_all();

  // The failed load must have rolled the frame back: the same block loads
  // cleanly afterwards and no pin leaks out of the throw.
  (void)cache.pin(0);
  cache.unpin(0);
  EXPECT_GE(cache.stats().read_errors, 1u);
}

TEST(BlockCache, ParsesEvictionPolicyNames) {
  EXPECT_EQ(parse_eviction_policy("clock"), EvictionPolicy::kClock);
  EXPECT_EQ(parse_eviction_policy("lru"), EvictionPolicy::kLru);
  EXPECT_THROW((void)parse_eviction_policy("arc"), StorageError);
}

// ------------------------------------------------------------ blocked graph

TEST(BlockedGraph, MatchesResidentAdjacencyUnderEvictionPressure) {
  const Graph g = medium_graph(3);
  const std::string path = csr_path_for(g, "adjacency");
  // 64-byte blocks: adjacency slices of degree > 16 span multiple blocks,
  // covering the copy path; smaller ones cover the zero-copy pinned path.
  BlockCacheOptions opts;
  opts.block_bytes = 64;
  opts.budget_bytes = 32 * 64;
  const BlockedGraph bg(path, opts);

  ASSERT_EQ(bg.num_vertices(), g.num_vertices());
  ASSERT_EQ(bg.num_edges(), g.num_edges());
  ASSERT_EQ(bg.num_arcs(), g.num_arcs());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(bg.degree(v), g.degree(v)) << "vertex " << v;
    const auto want = g.neighbors(v);
    const auto got = bg.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(got.begin(), got.end()),
              std::vector<VertexId>(want.begin(), want.end()))
        << "vertex " << v;
  }
  EXPECT_GT(bg.cache_stats().evictions, 0u);
  EXPECT_LT(bg.memory_bytes(), bg.csr_bytes());
}

// Determinism contract: at p=1 every kernel with a blocked instantiation is
// deterministic, so the blocked backend must produce the exact forest the
// in-memory backend does on the same seed — not merely a valid one.
TEST(BlockedGraph, ForestsIdenticalToResidentAtOneThread) {
  const Graph g = medium_graph(11);
  const std::string path = csr_path_for(g, "equal");
  BlockCacheOptions opts;
  opts.block_bytes = 512;
  opts.budget_bytes = 16 * 512;
  const BlockedGraph bg(path, opts);

  ThreadPool pool(1);
  RunOptions run;
  run.seed = 0xfeed;
  for (const char* algo : {"bfs", "bader-cong", "sv", "sv-lock",
                           "parallel-bfs"}) {
    const SpanningForest resident = run_algorithm(algo, g, pool, run);
    const SpanningForest blocked = run_algorithm(algo, bg, pool, run);
    EXPECT_EQ(blocked.parent, resident.parent) << algo;
  }
}

TEST(BlockedGraph, ParallelForestsValidateAtFourThreads) {
  const Graph g = medium_graph(13);
  const std::string path = csr_path_for(g, "parallel");
  BlockCacheOptions opts;
  opts.block_bytes = 256;
  opts.budget_bytes = 24 * 256;
  const BlockedGraph bg(path, opts);

  ThreadPool pool(4);
  RunOptions run;
  run.seed = 0xabcd;
  for (const char* algo : {"bader-cong", "sv", "parallel-bfs"}) {
    const SpanningForest forest = run_algorithm(algo, bg, pool, run);
    const auto report = validate_spanning_forest(bg, forest);
    EXPECT_TRUE(report.ok) << algo << ": " << report.error;
  }
}

TEST(BlockedGraph, ResidentOnlyAlgorithmsAreRejected) {
  const Graph g = medium_graph();
  const std::string path = csr_path_for(g, "reject");
  const BlockedGraph bg(path, {});
  ThreadPool pool(1);
  EXPECT_FALSE(algorithm_supports_blocked("dfs"));
  EXPECT_FALSE(algorithm_supports_blocked("hcs"));
  EXPECT_THROW(run_algorithm("dfs", bg, pool, RunOptions{}),
               std::invalid_argument);
  EXPECT_THROW(run_algorithm("hcs", bg, pool, RunOptions{}),
               std::invalid_argument);
  EXPECT_THROW(run_algorithm("no-such-algo", bg, pool, RunOptions{}),
               std::invalid_argument);
}

// --------------------------------------------------------- service backend

// The accounting fix made concrete: a graph whose CSR payload exceeds the
// whole registry budget stays registered (charged at its cache budget) and
// serves validated queries end-to-end through the executor.
TEST(StorageService, GraphLargerThanBudgetServesQueriesBlocked) {
  const Graph g = gen::make_family("random-nlogn", 2048, 5);
  const std::string path = csr_path_for(g, "service");
  const auto csr_bytes = read_csr_header(path).payload_bytes();

  service::GraphRegistry::Options ropts;
  ropts.memory_budget_bytes = csr_bytes / 2;  // resident CSR would not fit
  service::GraphRegistry registry(ropts);

  BlockCacheOptions copts;
  copts.block_bytes = 1 << 10;
  copts.budget_bytes = static_cast<std::size_t>(csr_bytes / 10);
  const auto bg = registry.open_blocked("big", path, copts);
  ASSERT_NE(bg, nullptr);
  EXPECT_GT(bg->csr_bytes(), ropts.memory_budget_bytes);
  EXPECT_LE(registry.stats().resident_bytes, ropts.memory_budget_bytes);

  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].blocked);
  EXPECT_EQ(entries[0].bytes, bg->memory_bytes());

  service::ExecutorOptions eopts;
  eopts.num_workers = 1;
  eopts.threads_per_query = 2;
  service::QueryExecutor executor(registry, eopts);
  service::SpanningTreeRequest req;
  req.graph = "big";
  req.algorithm = "bader-cong";
  req.validate = true;
  const auto result = executor.submit(req).get();
  EXPECT_EQ(result.status, service::QueryStatus::kOk) << result.error;
  EXPECT_TRUE(result.validation.ok) << result.validation.error;
  EXPECT_GT(bg->cache_stats().misses, 0u);
}

// get() stays a resident-only lookup; get_any serves both backends.
TEST(StorageService, GetAnyDistinguishesBackends) {
  service::GraphRegistry registry;
  registry.put("mem", medium_graph());
  const std::string path = csr_path_for(medium_graph(), "getany");
  registry.open_blocked("disk", path, {});

  EXPECT_NE(registry.get("mem"), nullptr);
  EXPECT_EQ(registry.get("disk"), nullptr);  // blocked: resident lookup misses
  const auto mem = registry.get_any("mem");
  EXPECT_NE(mem.resident, nullptr);
  EXPECT_EQ(mem.blocked, nullptr);
  const auto disk = registry.get_any("disk");
  EXPECT_EQ(disk.resident, nullptr);
  EXPECT_NE(disk.blocked, nullptr);
  EXPECT_FALSE(registry.get_any("absent"));
}

// A blocked read fault mid-query must surface as a typed failure (kFailed
// with the injected-fault message), never crash a worker or wedge the queue.
TEST(StorageService, ReadFaultBecomesTypedQueryFailure) {
  const Graph g = medium_graph(17);
  const std::string path = csr_path_for(g, "query_fault");
  service::GraphRegistry registry;
  BlockCacheOptions copts;
  copts.block_bytes = 256;
  copts.budget_bytes = 8 * 256;  // small cache: queries must touch the disk
  registry.open_blocked("faulty", path, copts);

  service::ExecutorOptions eopts;
  eopts.num_workers = 1;
  eopts.max_retries = 1;
  service::QueryExecutor executor(registry, eopts);

  fail::enable("storage.block.read", "throw");
  service::SpanningTreeRequest req;
  req.graph = "faulty";
  req.algorithm = "bfs";
  const auto result = executor.submit(req).get();
  fail::disable_all();

  EXPECT_EQ(result.status, service::QueryStatus::kFailed) << result.error;
  EXPECT_NE(result.error.find("injected fault"), std::string::npos)
      << result.error;

  // The executor must still be healthy: the same query succeeds once the
  // fault is gone.
  const auto ok = executor.submit(req).get();
  EXPECT_EQ(ok.status, service::QueryStatus::kOk) << ok.error;
}

// Root-range validation must hold on the blocked path exactly as it does on
// the resident one: an out-of-range root is kInvalidArgument (never an I/O
// attempt), an in-range root re-roots the returned tree.
TEST(StorageService, BlockedQueriesValidateRootRange) {
  const Graph g = medium_graph(19);
  const std::string path = csr_path_for(g, "root");
  service::GraphRegistry registry;
  registry.open_blocked("roots", path, {});
  service::ExecutorOptions eopts;
  eopts.num_workers = 1;
  service::QueryExecutor executor(registry, eopts);

  service::SpanningTreeRequest bad;
  bad.graph = "roots";
  bad.algorithm = "bfs";
  bad.root = g.num_vertices() + 5;
  const auto rejected = executor.submit(bad).get();
  EXPECT_EQ(rejected.status, service::QueryStatus::kInvalidArgument)
      << rejected.error;

  service::SpanningTreeRequest good = bad;
  good.root = 7;
  const auto rerooted = executor.submit(good).get();
  ASSERT_EQ(rerooted.status, service::QueryStatus::kOk) << rerooted.error;
  EXPECT_EQ(rerooted.forest.parent[7], 7u);
}

// Regression for the memory_bytes accounting fix: a graph carrying vector
// capacity slack must be charged for the slack, so the budget evicts it
// where size-based accounting would not.
TEST(StorageService, RegistryBudgetChargesCapacityNotSize) {
  std::vector<EdgeId> offsets = {0, 1, 2};
  std::vector<VertexId> targets = {1, 0};
  offsets.reserve(1 << 14);
  targets.reserve(1 << 16);
  Graph slack = Graph::from_csr(std::move(offsets), std::move(targets));
  const std::size_t slack_bytes = slack.memory_bytes();
  ASSERT_GT(slack_bytes, (1 << 16) * sizeof(VertexId));  // slack dominates

  const Graph tiny = gen::make_family("chain-seq", 64, 1);
  service::GraphRegistry::Options opts;
  // Fits the slack graph alone, or several size-accounted graphs — but not
  // the slack graph plus the tiny one if capacity is charged.
  opts.memory_budget_bytes = slack_bytes + tiny.memory_bytes() / 2;
  service::GraphRegistry registry(opts);
  registry.put("slack", std::move(slack));
  EXPECT_EQ(registry.stats().resident_bytes, slack_bytes);
  registry.put("tiny", gen::make_family("chain-seq", 64, 1));
  EXPECT_EQ(registry.get("slack"), nullptr);  // evicted on capacity grounds
  EXPECT_NE(registry.get("tiny"), nullptr);
}

}  // namespace
}  // namespace smpst::storage
