// Tests for the sequential baselines (BFS and DFS spanning forests).
#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/dfs.hpp"
#include "core/validate.hpp"
#include "gen/mesh.hpp"
#include "gen/random_graph.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/stats.hpp"

namespace smpst {
namespace {

TEST(Bfs, ChainParentsAreSequential) {
  const auto f = bfs_spanning_tree(gen::chain(6));
  EXPECT_EQ(f.parent[0], 0u);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(f.parent[v], v - 1);
}

TEST(Bfs, TreeDepthMatchesBfsLevels) {
  const Graph g = gen::torus2d(8, 8);
  const auto f = bfs_spanning_tree(g, 0);
  const auto levels = bfs_levels(g, 0);
  const auto depths = f.depths();
  // A BFS tree realizes shortest-path distances from the source.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(depths[v], levels[v]) << v;
  }
}

TEST(Bfs, CustomSourceBecomesRoot) {
  const auto f = bfs_spanning_tree(gen::torus2d(4, 4), 7);
  EXPECT_TRUE(f.is_root(7));
  EXPECT_EQ(f.num_trees(), 1u);
}

TEST(Bfs, DisconnectedGetsOneRootPerComponent) {
  const Graph g = gen::disjoint_chains(3, 5, 2);
  const auto f = bfs_spanning_tree(g);
  EXPECT_EQ(f.num_trees(), 5u);
  EXPECT_TRUE(validate_spanning_forest(g, f));
}

TEST(Bfs, LevelsUnreachableAreInvalid) {
  const Graph g = gen::disjoint_chains(2, 2, 0);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], kInvalidVertex);
}

TEST(Dfs, ChainFromEndIsStraightLine) {
  const auto f = dfs_spanning_tree(gen::chain(6));
  EXPECT_TRUE(f.is_root(0));
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(f.parent[v], v - 1);
}

TEST(Dfs, DeepChainDoesNotOverflowStack) {
  // One million vertices in a path; a recursive DFS would crash here.
  const auto g = gen::chain(1u << 20);
  const auto f = dfs_spanning_tree(g);
  EXPECT_EQ(f.num_trees(), 1u);
  EXPECT_EQ(f.num_tree_edges(), (1u << 20) - 1);
}

TEST(Dfs, CompleteGraphIsPath) {
  // DFS of K_n always descends to an unvisited vertex: depth n-1.
  const auto f = dfs_spanning_tree(gen::complete(8));
  const auto depths = f.depths();
  VertexId max_depth = 0;
  for (VertexId d : depths) max_depth = std::max(max_depth, d);
  EXPECT_EQ(max_depth, 7u);
}

struct SeqCase {
  const char* family;
  VertexId n;
};

class SequentialValidity : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SequentialValidity, BfsAndDfsProduceValidForests) {
  const auto& param = GetParam();
  const Graph g = gen::make_family(param.family, param.n, 1234);
  const auto bfs_report = validate_spanning_forest(g, bfs_spanning_tree(g));
  EXPECT_TRUE(bfs_report) << param.family << ": " << bfs_report.error;
  const auto dfs_report = validate_spanning_forest(g, dfs_spanning_tree(g));
  EXPECT_TRUE(dfs_report) << param.family << ": " << dfs_report.error;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SequentialValidity,
    ::testing::Values(SeqCase{"torus-rowmajor", 400},
                      SeqCase{"torus-random", 400},
                      SeqCase{"random-nlogn", 500},
                      SeqCase{"random-1.5n", 500}, SeqCase{"2d60", 400},
                      SeqCase{"3d40", 343}, SeqCase{"ad3", 500},
                      SeqCase{"geo-flat", 500}, SeqCase{"geo-hier", 600},
                      SeqCase{"chain-seq", 400}, SeqCase{"chain-random", 400},
                      SeqCase{"rmat", 512}, SeqCase{"star", 300},
                      SeqCase{"binary-tree", 300}, SeqCase{"ring", 128}),
    [](const auto& info) {
      std::string name = info.param.family;
      for (auto& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

TEST(SequentialAgreement, BfsAndDfsAgreeOnComponentStructure) {
  const Graph g = gen::random_graph(800, 900, 99);  // likely disconnected
  const auto fb = bfs_spanning_tree(g);
  const auto fd = dfs_spanning_tree(g);
  EXPECT_EQ(fb.num_trees(), fd.num_trees());
  const auto cb = fb.component_of();
  const auto cd = fd.component_of();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      EXPECT_EQ(cb[u], cb[v]);
      EXPECT_EQ(cd[u], cd[v]);
    }
  }
}

}  // namespace
}  // namespace smpst
