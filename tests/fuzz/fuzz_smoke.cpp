// Corpus smoke test: replays the checked-in fuzz corpus plus a deterministic
// pseudo-random byte stream through both fuzz bodies.  Always built (any
// compiler), registered as ctest `test_fuzz_smoke`, so the framing and wire
// invariants in fuzz_harness.hpp run on every CI tier even where libFuzzer
// is unavailable.
//
// Usage: fuzz_smoke [corpus-dir]...
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_harness.hpp"

namespace {

using Body = void (*)(const std::uint8_t*, std::size_t);

struct Target {
  const char* name;
  Body body;
};

constexpr Target kTargets[] = {
    {"line_codec", smpst::fuzz::run_line_codec},
    {"wire_parse", smpst::fuzz::run_wire_parse},
    {"graph_blob", smpst::fuzz::run_graph_blob},
};

std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// xorshift64: fixed seed, reproducible across runs and platforms.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t corpus_files = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path dir(argv[i]);
    if (!std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "fuzz_smoke: not a directory: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto bytes = read_file(entry.path());
      for (const auto& t : kTargets) t.body(bytes.data(), bytes.size());
      ++corpus_files;
    }
  }

  // Deterministic random stream: short inputs biased toward the bytes the
  // parsers branch on, so the cap/resync/escape paths are all exercised.
  constexpr std::size_t kIterations = 20000;
  constexpr char kAlphabet[] = "{}\":,=\\ \r\n\tabc019-qfuery";
  std::uint64_t seed = 0x5eed5eed5eedULL;
  std::vector<std::uint8_t> buf;
  for (std::size_t it = 0; it < kIterations; ++it) {
    buf.clear();
    const std::size_t len = next_rand(seed) % 160;
    for (std::size_t j = 0; j < len; ++j) {
      const std::uint64_t r = next_rand(seed);
      // Mostly structured bytes, occasionally raw ones.
      buf.push_back(r % 8 != 0
                        ? static_cast<std::uint8_t>(
                              kAlphabet[r / 8 % (sizeof kAlphabet - 1)])
                        : static_cast<std::uint8_t>(r >> 32));
    }
    for (const auto& t : kTargets) t.body(buf.data(), buf.size());
  }

  std::printf("fuzz_smoke: %zu corpus file(s) + %zu random inputs through "
              "%zu targets, all invariants held\n",
              corpus_files, kIterations, std::size(kTargets));
  return 0;
}
