// Shared fuzz bodies for the wire-facing parsers.
//
// Two consumers drive these functions:
//   - the libFuzzer entry points (fuzz_line_codec.cpp, fuzz_wire_parse.cpp),
//     built only under Clang with -DSMPST_FUZZ=ON;
//   - the always-built corpus smoke test (fuzz_smoke.cpp), which replays the
//     checked-in corpus plus a deterministic pseudo-random stream, so the
//     same invariants run under GCC on every CI tier.
//
// Invariant violations abort via SMPST_FUZZ_CHECK (independent of NDEBUG),
// which is what libFuzzer and ctest both key on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "service/codec.hpp"
#include "service/wire.hpp"

#define SMPST_FUZZ_CHECK(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "fuzz invariant violated: %s (%s:%d)\n",   \
                   msg, __FILE__, __LINE__);                          \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace smpst::fuzz {

// ----------------------------------------------------------- line codec ----
//
// Splits the input into adversarially-sized chunks (sizes derived from the
// input itself), drives a small-cap LineCodec, and checks the result against
// a trivial reference model of the framing contract:
//   - the byte stream split on '\n' yields segments; each complete segment
//     of length <= cap comes back as exactly one kLine (with a trailing
//     '\r' stripped), each longer one as exactly one kOversized;
//   - the trailing unterminated segment is recovered by take_partial() iff
//     it fits the cap, and is lost to the discard path otherwise;
//   - the internal buffer never holds more than cap bytes once drained.
inline void run_line_codec(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return;
  // Small caps keep the oversized/resync paths hot on short fuzz inputs.
  const std::size_t cap = 1 + data[0] % 64;
  std::size_t chunk_seed = 1 + data[1] % 17;
  data += 2;
  size -= 2;

  service::LineCodec codec(cap);
  std::vector<std::string> lines;
  std::size_t oversized = 0;
  std::string out;

  std::size_t off = 0;
  while (off < size) {
    const std::size_t n =
        std::min<std::size_t>(size - off, 1 + chunk_seed % 13);
    chunk_seed = chunk_seed * 1103515245 + 12345;
    codec.feed(reinterpret_cast<const char*>(data) + off, n);
    off += n;
    for (;;) {
      const auto ev = codec.next(out);
      if (ev == service::LineCodec::Event::kNone) break;
      if (ev == service::LineCodec::Event::kLine) {
        SMPST_FUZZ_CHECK(out.size() <= cap, "framed line exceeds the cap");
        SMPST_FUZZ_CHECK(out.find('\n') == std::string::npos,
                         "framed line contains a newline");
        lines.push_back(out);
      } else {
        SMPST_FUZZ_CHECK(codec.last_oversized_bytes() > cap,
                         "kOversized for a line within the cap");
        ++oversized;
      }
    }
    SMPST_FUZZ_CHECK(codec.buffered() <= cap,
                     "drained codec buffers more than the cap");
  }
  const std::string partial = codec.take_partial();

  // Reference model over the whole stream.
  std::vector<std::string> want_lines;
  std::size_t want_oversized = 0;
  std::string want_partial;
  std::size_t seg_start = 0;
  for (std::size_t i = 0; i <= size; ++i) {
    const bool at_end = i == size;
    if (!at_end && data[i] != '\n') continue;
    std::string seg(reinterpret_cast<const char*>(data) + seg_start,
                    i - seg_start);
    seg_start = i + 1;
    if (seg.size() > cap) {
      ++want_oversized;  // at EOF: the in-progress discard still reported
      continue;
    }
    if (!seg.empty() && seg.back() == '\r') seg.pop_back();
    if (at_end) {
      want_partial = seg;
    } else {
      want_lines.push_back(seg);
    }
  }
  // An unterminated tail that crossed the cap was reported as kOversized
  // only once the buffer actually exceeded it — which the drain loop above
  // guarantees — and take_partial() then yields nothing.
  SMPST_FUZZ_CHECK(lines == want_lines, "framed lines differ from reference");
  SMPST_FUZZ_CHECK(oversized == want_oversized,
                   "oversized count differs from reference");
  SMPST_FUZZ_CHECK(partial == want_partial,
                   "take_partial differs from reference");
}

// ----------------------------------------------------------- wire parser ----
//
// parse_line must either throw WireError or return a field map; any other
// escape (crash, non-WireError exception) is a finding.  Accepted maps are
// round-tripped through JsonWriter/json_escape and must reparse identically
// (restricted to lines whose fields avoid the control characters the tiny
// JSON subset cannot re-read: json_escape renders them as \uXXXX, which
// parse_line deliberately rejects).
inline void run_wire_parse(const std::uint8_t* data, std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  service::Fields fields;
  try {
    fields = service::parse_line(line);
  } catch (const service::WireError&) {
    return;  // rejection is a valid outcome; crashing is not
  }
  SMPST_FUZZ_CHECK(!fields.empty() || line.find('{') != std::string::npos,
                   "word form accepted an empty request");

  const auto roundtrippable = [](const std::string& s) {
    for (const char c : s) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\n' && c != '\t' &&
          c != '\r') {
        return false;
      }
    }
    return true;
  };
  service::JsonWriter w;
  bool clean = true;
  for (const auto& [k, v] : fields) {
    clean = clean && !k.empty() && roundtrippable(k) && roundtrippable(v);
    w.field(k, v);
  }
  if (!clean) return;
  service::Fields again;
  try {
    again = service::parse_line(w.str());
  } catch (const service::WireError&) {
    SMPST_FUZZ_CHECK(false, "JsonWriter output rejected by parse_line");
  }
  SMPST_FUZZ_CHECK(again == fields,
                   "fields do not survive a JSON round trip");
}

// ---------------------------------------------------------- graph loader ----
//
// Drives both edge-list deserializers (graph/io.hpp) over the raw bytes.
// Each must either parse fully — yielding an edge list whose endpoints are
// all in range — or throw io::ParseError; any other escape (a crash, an
// allocator blow-up from trusting a hostile header's edge count, a
// non-ParseError exception) is a finding. The binary format's header carries
// untrusted 64-bit n and m fields, which is exactly where the m*sizeof(Edge)
// overflow class lives.
inline void run_graph_blob(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  for (const bool binary : {true, false}) {
    std::istringstream is(bytes);
    try {
      const EdgeList list = binary ? io::read_edge_list_binary(is)
                                   : io::read_edge_list_text(is);
      for (const Edge& e : list.edges()) {
        SMPST_FUZZ_CHECK(e.u < list.num_vertices() &&
                             e.v < list.num_vertices(),
                         "loader accepted an out-of-range endpoint");
      }
    } catch (const io::ParseError&) {
      // Rejection is a valid outcome; crashing is not.
    }
  }
}

}  // namespace smpst::fuzz
