// libFuzzer entry point for the graph deserializers (graph/io.hpp). Build
// with -DSMPST_FUZZ=ON under Clang; the shared body also runs in fuzz_smoke
// on every configuration.
#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  smpst::fuzz::run_graph_blob(data, size);
  return 0;
}
