// libFuzzer entry point for the LineCodec framing layer.  Build with
// -DSMPST_FUZZ=ON under Clang; run as
//   build/tests/fuzz/fuzz_line_codec tests/fuzz/corpus
#include <cstddef>
#include <cstdint>

#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  smpst::fuzz::run_line_codec(data, size);
  return 0;
}
