// libFuzzer entry point for the wire request parser.  Build with
// -DSMPST_FUZZ=ON under Clang; run as
//   build/tests/fuzz/fuzz_wire_parse tests/fuzz/corpus
#include <cstddef>
#include <cstdint>

#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  smpst::fuzz::run_wire_parse(data, size);
  return 0;
}
