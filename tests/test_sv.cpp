// Tests for the Shiloach–Vishkin spanning tree (election and lock variants):
// validity across families and thread counts, labelling sensitivity of the
// iteration count, and the seeded-partition entry point.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/shiloach_vishkin.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "gen/simple.hpp"
#include "graph/builder.hpp"
#include "graph/relabel.hpp"
#include "sched/thread_pool.hpp"

namespace smpst {
namespace {

SvOptions sv_opts(std::size_t threads, bool locks = false) {
  SvOptions o;
  o.num_threads = threads;
  o.use_locks = locks;
  return o;
}

TEST(ShiloachVishkin, SingleVertexAndEmpty) {
  const Graph one = GraphBuilder::from_edges(1, {});
  EXPECT_EQ(sv_spanning_tree(one, sv_opts(2)).num_trees(), 1u);
  const Graph empty;
  EXPECT_EQ(sv_spanning_tree(empty, sv_opts(2)).num_vertices(), 0u);
}

TEST(ShiloachVishkin, TriangleHasTwoTreeEdges) {
  const Graph g = GraphBuilder::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto f = sv_spanning_tree(g, sv_opts(2));
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << report.error;
  EXPECT_EQ(report.tree_edges, 2u);
}

TEST(ShiloachVishkin, DisconnectedComponents) {
  const Graph g = gen::disjoint_chains(4, 8, 3);
  const auto f = sv_spanning_tree(g, sv_opts(4));
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << report.error;
  EXPECT_EQ(f.num_trees(), 7u);
}

using SvParam = std::tuple<std::string, int, bool>;

class SvSweep : public ::testing::TestWithParam<SvParam> {};

TEST_P(SvSweep, ProducesValidForest) {
  const auto& [family, threads, locks] = GetParam();
  const Graph g = gen::make_family(family, 600, 4242);
  const auto f =
      sv_spanning_tree(g, sv_opts(static_cast<std::size_t>(threads), locks));
  const auto report = validate_spanning_forest(g, f);
  ASSERT_TRUE(report) << family << " p=" << threads << " locks=" << locks
                      << ": " << report.error;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesThreadsVariants, SvSweep,
    ::testing::Combine(::testing::Values("torus-rowmajor", "torus-random",
                                         "random-nlogn", "2d60", "3d40", "ad3",
                                         "geo-flat", "geo-hier", "chain-seq",
                                         "chain-random", "star", "rmat"),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(false, true)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name + "_p" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_lock" : "_elect");
    });

TEST(ShiloachVishkin, RepeatedParallelRunsStayValid) {
  const Graph g = gen::make_family("random-nlogn", 128, 8);
  ThreadPool pool(8);
  for (int run = 0; run < 30; ++run) {
    const auto f = sv_spanning_tree(g, pool, sv_opts(8));
    ASSERT_TRUE(validate_spanning_forest(g, f)) << "run " << run;
  }
}

TEST(ShiloachVishkin, IterationCountIsLabelingSensitive) {
  // The paper: "alternative labelings of the vertices may incur different
  // numbers of iterations". A chain labelled sequentially converges in very
  // few iterations (every graft hooks v+1 onto v, one shortcut collapse);
  // adversarial labelings need more.
  const VertexId n = 4096;
  const Graph seq = gen::chain(n);

  SvStats seq_stats;
  SvOptions o = sv_opts(4);
  o.stats = &seq_stats;
  ASSERT_TRUE(validate_spanning_forest(seq, sv_spanning_tree(seq, o)));

  SvStats rnd_stats;
  const Graph rnd = apply_permutation(seq, random_permutation(n, 99));
  o.stats = &rnd_stats;
  ASSERT_TRUE(validate_spanning_forest(rnd, sv_spanning_tree(rnd, o)));

  EXPECT_GE(seq_stats.iterations, 1u);
  EXPECT_GE(rnd_stats.iterations, seq_stats.iterations);
  EXPECT_GT(rnd_stats.shortcut_passes, 0u);
}

TEST(ShiloachVishkin, StatsCountGrafts) {
  const Graph g = gen::make_family("torus-rowmajor", 400, 3);
  SvStats stats;
  SvOptions o = sv_opts(4);
  o.stats = &stats;
  const auto f = sv_spanning_tree(g, o);
  ASSERT_TRUE(validate_spanning_forest(g, f));
  // Every tree edge came from exactly one graft.
  EXPECT_EQ(stats.grafts, f.num_tree_edges());
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_GT(stats.barriers, 0u);
}

TEST(ShiloachVishkin, SeededPartitionOnlyConnectsGroups) {
  // Star 0-1, 0-2, 0-3 with initial partition {0,1} | {2} | {3}: SV must add
  // exactly two edges, never one inside the {0,1} group.
  const Graph g = gen::star(4);
  ThreadPool pool(2);
  std::vector<VertexId> labels = {0, 0, 2, 3};
  const auto edges = sv_tree_edges(g, pool, labels, sv_opts(2));
  EXPECT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) {
    EXPECT_FALSE(e.u == 0 && e.v == 1);
  }
}

TEST(ShiloachVishkin, SeededPartitionAlreadyComplete) {
  // Whole graph in one group: nothing to connect.
  const Graph g = gen::chain(5);
  ThreadPool pool(2);
  std::vector<VertexId> labels(5, 0);
  EXPECT_TRUE(sv_tree_edges(g, pool, labels, sv_opts(2)).empty());
}

TEST(ShiloachVishkin, LockAndElectionAgreeOnStructure) {
  const Graph g = gen::make_family("geo-flat", 700, 12);
  const auto fe = sv_spanning_tree(g, sv_opts(4, false));
  const auto fl = sv_spanning_tree(g, sv_opts(4, true));
  ASSERT_TRUE(validate_spanning_forest(g, fe));
  ASSERT_TRUE(validate_spanning_forest(g, fl));
  EXPECT_EQ(fe.num_trees(), fl.num_trees());
  EXPECT_EQ(fe.num_tree_edges(), fl.num_tree_edges());
}

}  // namespace
}  // namespace smpst
