// Tests for the benchmark harness utilities: CLI parsing, timing statistics,
// and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"

namespace smpst::bench {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesTypes) {
  const Cli cli = make_cli({"--n=1024", "--family=torus", "--ratio=1.5",
                            "--csv", "--verbose=false"});
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_EQ(cli.get_string("family", ""), "torus");
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 1.5);
  EXPECT_TRUE(cli.get_bool("csv", false));
  EXPECT_FALSE(cli.get_bool("verbose", true));
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_FALSE(cli.has("absent"));
}

TEST(Cli, FallbacksApply) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_EQ(cli.get_string("family", "x"), "x");
  EXPECT_TRUE(cli.get_bool("flag", true));
}

TEST(Cli, IntList) {
  const Cli cli = make_cli({"--threads=1,2,4,8"});
  EXPECT_EQ(cli.get_int_list("threads", {}),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(cli.get_int_list("absent", {3}), (std::vector<std::int64_t>{3}));
}

TEST(Cli, RejectsMalformedAndUnknown) {
  EXPECT_THROW(make_cli({"positional"}), std::invalid_argument);
  const Cli cli = make_cli({"--typo=1"});
  EXPECT_THROW(cli.reject_unknown(), std::invalid_argument);
  const Cli ok = make_cli({"--n=1"});
  ok.get_int("n", 0);
  ok.reject_unknown();  // no throw
}

TEST(TimingStats, SummarizeKnownSamples) {
  const auto s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_s, 2.0);
  EXPECT_DOUBLE_EQ(s.median_s, 2.0);
  EXPECT_NEAR(s.stddev_s, 1.0, 1e-12);
  EXPECT_EQ(s.repetitions, 3u);
}

TEST(TimingStats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).repetitions, 0u);
  const auto s = summarize({5.0});
  EXPECT_DOUBLE_EQ(s.stddev_s, 0.0);
  EXPECT_DOUBLE_EQ(s.min_s, 5.0);
}

TEST(TimingStats, TimeRepeatedCountsCalls) {
  int calls = 0;
  const auto s = time_repeated([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);  // 2 warmup + 5 measured
  EXPECT_EQ(s.repetitions, 5u);
  EXPECT_GE(s.min_s, 0.0);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongWidth) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Formatting, HumanReadableDurations) {
  EXPECT_EQ(fmt_seconds(0.0000005), "0.5us");
  EXPECT_EQ(fmt_seconds(0.0015), "1.50ms");
  EXPECT_EQ(fmt_seconds(2.5), "2.500s");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(42), "42");
}

}  // namespace
}  // namespace smpst::bench
