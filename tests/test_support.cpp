// Unit tests for the support substrate: PRNGs, timers, cache-line padding.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <thread>

#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

namespace smpst {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(77);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(hist[b], expected, expected * 0.10) << "bucket " << b;
  }
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(StreamSeeds, AreDistinctAcrossStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 256; ++s) {
    seeds.insert(derive_stream_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 256u);
}

TEST(StreamSeeds, DifferentRootsDiffer) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(WallTimer, ElapsedIsMonotonicAndPositive) {
  WallTimer t;
  const double a = t.elapsed_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  EXPECT_GE(t.elapsed_millis(), 2.0 * 0.9);
}

TEST(ScopedAccumulator, AddsOnScopeExit) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(sink, 0.0);
}

TEST(Padded, ElementsOnDistinctCacheLines) {
  Padded<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, kCacheLineSize);
}

TEST(Cpu, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(Cpu, PinDoesNotCrash) {
  pin_current_thread(0);
  pin_current_thread(12345);
}

}  // namespace
}  // namespace smpst
