// Unit tests for the support substrate: PRNGs, timers, cache-line padding,
// CPU/NUMA topology discovery and affinity-mask-honest thread pinning.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "support/cacheline.hpp"
#include "support/cpu.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"
#include "support/topology.hpp"

namespace smpst {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(77);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(hist[b], expected, expected * 0.10) << "bucket " << b;
  }
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(StreamSeeds, AreDistinctAcrossStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 256; ++s) {
    seeds.insert(derive_stream_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 256u);
}

TEST(StreamSeeds, DifferentRootsDiffer) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(WallTimer, ElapsedIsMonotonicAndPositive) {
  WallTimer t;
  const double a = t.elapsed_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  EXPECT_GE(t.elapsed_millis(), 2.0 * 0.9);
}

TEST(ScopedAccumulator, AddsOnScopeExit) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(sink, 0.0);
}

TEST(Padded, ElementsOnDistinctCacheLines) {
  Padded<int> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, kCacheLineSize);
}

TEST(Cpu, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

#if defined(__linux__)
TEST(Cpu, HardwareThreadsMatchesAllowedMask) {
  // The contract that replaced hardware_concurrency(): under taskset or a
  // cgroup cpuset the report must be the allowed-CPU count, not the
  // machine's.
  cpu_set_t set;
  CPU_ZERO(&set);
  ASSERT_EQ(sched_getaffinity(0, sizeof(set), &set), 0);
  EXPECT_EQ(hardware_threads(), static_cast<std::size_t>(CPU_COUNT(&set)));
}
#endif

TEST(Cpu, PinBeyondAllowedSetReturnsFalse) {
  // Honest failure instead of the old silent wrap onto cpu (slot % count):
  // no machine has 2^20 allowed CPUs, so this slot must be refused.
  EXPECT_FALSE(pin_current_thread(1u << 20));
}

#if defined(__linux__)
TEST(Cpu, PinRespectsRestrictedMask) {
  // Shrink a thread's allowed set to one CPU, as a container cpuset would;
  // slot 0 must land on exactly that CPU and every other slot must report
  // failure rather than escaping the mask. Runs on its own thread so the
  // restriction cannot leak into other tests.
  const CpuTopology before = CpuTopology::discover();
  ASSERT_GE(before.size(), 1u);
  const int only_cpu = before.cpu_of_slot(0);

  std::thread worker([only_cpu] {
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(only_cpu, &one);
    ASSERT_EQ(pthread_setaffinity_np(pthread_self(), sizeof(one), &one), 0);

    // Discovery and the thread-count report must both see the 1-CPU mask.
    const CpuTopology restricted = CpuTopology::discover();
    EXPECT_EQ(restricted.size(), 1u);
    EXPECT_EQ(restricted.cpu_of_slot(0), only_cpu);
    EXPECT_EQ(hardware_threads(), 1u);

    EXPECT_TRUE(pin_current_thread(0));
    EXPECT_EQ(sched_getcpu(), only_cpu);
    EXPECT_FALSE(pin_current_thread(1));  // beyond the allowed set: honest no
  });
  worker.join();
}
#endif

TEST(Topology, DiscoverIsConsistent) {
  const CpuTopology topo = CpuTopology::discover();
  ASSERT_GE(topo.size(), 1u);
  ASSERT_EQ(topo.cpus.size(), topo.nodes.size());
  EXPECT_GE(topo.num_nodes, 1u);
  EXPECT_EQ(topo.size(), hardware_threads());
  // Slot order is the placement contract: grouped by node, ascending CPUs
  // within each node, so contiguous worker ranges share a socket.
  for (std::size_t i = 1; i < topo.size(); ++i) {
    EXPECT_GE(topo.nodes[i], topo.nodes[i - 1]);
    if (topo.nodes[i] == topo.nodes[i - 1]) {
      EXPECT_GT(topo.cpus[i], topo.cpus[i - 1]);
    }
  }
  EXPECT_TRUE(topo.slot_valid(0));
  EXPECT_FALSE(topo.slot_valid(topo.size()));
}

TEST(Topology, FromCpusGroupsByNode) {
  const CpuTopology topo =
      CpuTopology::from_cpus({5, 1, 9, 3}, {1, 0, 1, 0});
  ASSERT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.num_nodes, 2u);
  EXPECT_EQ(topo.cpus, (std::vector<int>{1, 3, 5, 9}));
  EXPECT_EQ(topo.nodes, (std::vector<int>{0, 0, 1, 1}));
}

TEST(Topology, CachedSingletonMatchesShape) {
  const CpuTopology& cached = topology();
  EXPECT_GE(cached.size(), 1u);
  EXPECT_EQ(cached.cpus.size(), cached.nodes.size());
}

TEST(Topology, InterleaveIsBestEffort) {
  // On a single-node host this is the documented no-op; on a multi-node
  // host the call may succeed or be refused by the kernel — either way it
  // must not crash and must handle an empty range.
  std::vector<char> buf(1 << 16);
  const bool ok = interleave_memory(buf.data(), buf.size());
  if (CpuTopology::discover().num_nodes <= 1) EXPECT_TRUE(ok);
  EXPECT_TRUE(interleave_memory(buf.data(), 0));
}

}  // namespace
}  // namespace smpst
