// Mesh connectivity analysis — the computational-science scenario from the
// paper's evaluation ("physics-based simulations and computer vision commonly
// use mesh-based graphs").
//
// A 2D probabilistic mesh models a simulation domain with failed links
// (cracks, masked regions). The example:
//   1. generates 2D60-style meshes over a damage sweep,
//   2. finds all connected regions via the parallel spanning forest,
//   3. reports region counts/sizes and the percolation transition,
//   4. uses the degree-2 elimination preprocessing where it pays off.
//
//   $ ./mesh_connectivity [--side=256] [--threads=4]
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util/cli.hpp"
#include "cc/connected_components.hpp"
#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "gen/mesh.hpp"
#include "graph/transform.hpp"
#include "sched/thread_pool.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) try {
  using namespace smpst;
  const bench::Cli cli(argc, argv);
  const auto side = static_cast<VertexId>(cli.get_int("side", 256));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  cli.reject_unknown();

  ThreadPool pool(threads);
  std::cout << "mesh connectivity on a " << side << "x" << side
            << " lattice, sweeping link survival probability\n\n";
  std::cout << "  p_link  regions  largest%  spanning?  deg2-elim%  time\n";

  for (const double p_link : {0.30, 0.45, 0.50, 0.55, 0.60, 0.80, 1.00}) {
    const Graph g = gen::mesh2d(side, side, p_link, /*seed=*/7);

    WallTimer timer;
    BaderCongOptions opts;
    opts.num_threads = threads;
    const SpanningForest forest = bader_cong_spanning_tree(g, pool, opts);
    const double secs = timer.elapsed_seconds();
    if (const auto report = validate_spanning_forest(g, forest); !report.ok) {
      std::cerr << "invalid forest: " << report.error << "\n";
      return 1;
    }

    // Region statistics straight from the forest.
    const auto regions = cc::cc_from_forest(forest);
    std::vector<VertexId> sizes(regions.count, 0);
    for (VertexId label : regions.label) ++sizes[label];
    const VertexId largest =
        sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());

    // Does one region span the lattice left-to-right (percolation)?
    bool spans = false;
    for (VertexId r = 0; r < side && !spans; ++r) {
      const VertexId left = regions.label[r * side];
      for (VertexId r2 = 0; r2 < side; ++r2) {
        if (regions.label[r2 * side + side - 1] == left) {
          spans = true;
          break;
        }
      }
    }

    // How much the paper's degree-2 elimination would shrink this instance.
    const auto red = eliminate_degree2(g);
    const double elim_pct =
        100.0 * static_cast<double>(red.eliminated_vertices()) /
        static_cast<double>(g.num_vertices());

    std::printf("  %5.2f  %7u  %7.1f%%  %9s  %9.1f%%  %6.1fms\n", p_link,
                regions.count,
                100.0 * static_cast<double>(largest) /
                    static_cast<double>(g.num_vertices()),
                spans ? "yes" : "no", elim_pct, secs * 1e3);
  }

  std::cout << "\nthe jump in largest-region share and the onset of spanning "
               "around p_link = 0.5 is the bond-percolation threshold of the "
               "square lattice.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "mesh_connectivity: " << e.what() << "\n";
  return 1;
}
