// Internet topology analysis — the paper's geographic-graph scenario
// ("research on properties of wide-area networks model the structure of the
// Internet as a geographic graph").
//
// Builds a hierarchical CDZ-style topology (backbone / domains /
// subdomains), then uses the library to answer questions a network engineer
// would ask:
//   1. a parallel spanning tree = a loop-free broadcast/flooding overlay;
//   2. tree depth statistics = worst-case flooding hops;
//   3. a minimum spanning forest under latency weights = the cheapest
//      loop-free backbone (the future-work MSF extension in action);
//   4. robustness: components after random link failures.
//
//   $ ./internet_topology [--n=50000] [--threads=4]
#include <algorithm>
#include <iostream>

#include "bench_util/cli.hpp"
#include "cc/connected_components.hpp"
#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "gen/geographic.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "msf/boruvka.hpp"
#include "msf/weighted.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) try {
  using namespace smpst;
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 50000));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  cli.reject_unknown();

  const Graph net = gen::geographic_hierarchical(n, /*seed=*/99);
  const auto stats = compute_stats(net);
  std::cout << "hierarchical internet model: " << stats.num_vertices
            << " routers, " << stats.num_edges << " links, avg degree "
            << stats.avg_degree << ", diameter >= "
            << stats.diameter_lower_bound << "\n\n";

  // 1-2. Broadcast overlay via parallel spanning tree; depth = flood hops.
  BaderCongOptions opts;
  opts.num_threads = threads;
  WallTimer timer;
  const SpanningForest overlay = bader_cong_spanning_tree(net, opts);
  const double build_ms = timer.elapsed_millis();
  if (const auto report = validate_spanning_forest(net, overlay); !report.ok) {
    std::cerr << "invalid overlay: " << report.error << "\n";
    return 1;
  }
  const auto depths = overlay.depths();
  const VertexId max_hops = *std::max_element(depths.begin(), depths.end());
  double mean_hops = 0.0;
  for (VertexId d : depths) mean_hops += d;
  mean_hops /= static_cast<double>(depths.size());
  std::cout << "broadcast overlay built in " << build_ms << " ms ("
            << threads << " threads): " << overlay.num_tree_edges()
            << " tree links, flood hops max " << max_hops << " / mean "
            << mean_hops << "\n";

  // 3. Cheapest loop-free backbone: MSF under geometric latency weights.
  const auto weighted = msf::with_random_weights(net, /*seed=*/5);
  WallTimer msf_timer;
  const auto backbone = msf::boruvka(weighted, {.num_threads = threads});
  std::cout << "minimum-latency backbone (parallel Boruvka): "
            << backbone.size() << " links, total weight "
            << msf::total_weight(backbone) << ", computed in "
            << msf_timer.elapsed_millis() << " ms\n";

  // 4. Robustness: knock out random links, count fragments.
  std::cout << "\nlink-failure robustness (components after random failures)\n";
  Xoshiro256 rng(17);
  auto list = io::to_edge_list(net);
  for (const double failure : {0.05, 0.15, 0.30, 0.50}) {
    std::vector<Edge> surviving;
    for (const Edge& e : list.edges()) {
      if (!rng.next_bernoulli(failure)) surviving.push_back(e);
    }
    const Graph damaged =
        GraphBuilder::from_edges(net.num_vertices(), surviving);
    const SpanningForest f = bader_cong_spanning_tree(damaged, opts);
    const auto regions = cc::cc_from_forest(f);
    std::printf("  %4.0f%% links down -> %6u fragments\n", failure * 100,
                regions.count);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "internet_topology: " << e.what() << "\n";
  return 1;
}
