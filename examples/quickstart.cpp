// Quickstart: build a graph, compute a spanning tree in parallel, inspect it.
//
//   $ ./quickstart [--n=100000] [--threads=4]
//
// Walks through the core public API in ~60 lines:
//   1. generate (or load) a graph,
//   2. run the Bader-Cong parallel spanning tree,
//   3. validate the result and look at basic structure,
//   4. compare against the sequential baseline.
#include <iostream>

#include "bench_util/cli.hpp"
#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/random_graph.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) try {
  using namespace smpst;
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 100000));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  cli.reject_unknown();

  // 1. A random sparse graph with 1.5n edges (any smpst::Graph works — see
  //    graph/io.hpp to load your own edge lists).
  const Graph g = gen::random_graph(n, static_cast<EdgeId>(1.5 * n), /*seed=*/1);
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << g.memory_bytes() / 1024 << " KiB CSR\n";

  // 2. Parallel spanning tree (stub random walk + work-stealing traversal).
  BaderCongOptions opts;
  opts.num_threads = threads;
  WallTimer par_timer;
  const SpanningForest forest = bader_cong_spanning_tree(g, opts);
  const double par_s = par_timer.elapsed_seconds();

  // 3. Validate and inspect.
  const ValidationReport report = validate_spanning_forest(g, forest);
  if (!report.ok) {
    std::cerr << "invalid forest: " << report.error << "\n";
    return 1;
  }
  const auto roots = forest.roots();
  std::cout << "spanning forest: " << forest.num_trees() << " tree(s), "
            << forest.num_tree_edges() << " edges, first roots:";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, roots.size()); ++i) {
    std::cout << ' ' << roots[i];
  }
  if (roots.size() > 8) std::cout << " ...";
  std::cout << "\nparallel time (" << threads << " threads): " << par_s * 1e3
            << " ms\n";

  // 4. The sequential baseline the paper compares against.
  WallTimer seq_timer;
  const SpanningForest seq = bfs_spanning_tree(g);
  std::cout << "sequential BFS time: " << seq_timer.elapsed_seconds() * 1e3
            << " ms (tree edges: " << seq.num_tree_edges() << ")\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "quickstart: " << e.what() << "\n";
  return 1;
}
