// Network vulnerability analysis — spanning trees as the building block the
// paper's introduction promises: biconnectivity and ear decomposition over a
// generated Internet topology.
//
//   $ ./network_cut_analysis [--n=20000] [--threads=4] [--dot=<path>]
//
// Reports:
//   1. bridges (single links whose failure partitions the network) and
//      articulation routers (single points of failure),
//   2. 2-edge-connected "survivable" zones,
//   3. an ear decomposition over the parallel spanning tree: how much of the
//      network is covered by redundant cycles,
//   4. optionally a Graphviz DOT rendering of a small instance with the
//      spanning tree highlighted.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "apps/biconnectivity.hpp"
#include "apps/ear_decomposition.hpp"
#include "bench_util/cli.hpp"
#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "gen/geographic.hpp"
#include "graph/formats.hpp"
#include "graph/stats.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) try {
  using namespace smpst;
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 20000));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  const std::string dot_path = cli.get_string("dot", "");
  cli.reject_unknown();

  const Graph net = gen::geographic_hierarchical(n, /*seed=*/42);
  const auto stats = compute_stats(net);
  std::cout << "internet model: " << stats.num_vertices << " routers, "
            << stats.num_edges << " links\n\n";

  // 1-2. Single points of failure.
  WallTimer bic_timer;
  const auto bic = apps::biconnectivity(net);
  VertexId artic = 0;
  for (bool a : bic.is_articulation) artic += a ? 1 : 0;
  std::cout << "vulnerability scan (" << bic_timer.elapsed_millis()
            << " ms):\n"
            << "  bridge links (failure partitions the net): "
            << bic.bridges.size() << "\n"
            << "  articulation routers (single points of failure): " << artic
            << "\n"
            << "  2-edge-connected zones: " << bic.two_edge_component_count
            << "\n";
  std::vector<VertexId> zone_sizes(bic.two_edge_component_count, 0);
  for (VertexId label : bic.two_edge_component) ++zone_sizes[label];
  std::cout << "  largest survivable zone: "
            << *std::max_element(zone_sizes.begin(), zone_sizes.end())
            << " routers ("
            << 100.0 *
                   static_cast<double>(
                       *std::max_element(zone_sizes.begin(), zone_sizes.end())) /
                   static_cast<double>(n)
            << "%)\n\n";

  // 3. Redundancy profile via ear decomposition over the parallel tree.
  BaderCongOptions opts;
  opts.num_threads = threads;
  const SpanningForest tree = bader_cong_spanning_tree(net, opts);
  if (const auto report = validate_spanning_forest(net, tree); !report.ok) {
    std::cerr << "invalid spanning tree: " << report.error << "\n";
    return 1;
  }
  WallTimer ear_timer;
  const auto ears = apps::ear_decomposition(net, tree);
  std::cout << "ear decomposition over the parallel spanning tree ("
            << ear_timer.elapsed_millis() << " ms):\n"
            << "  ears (independent redundancy cycles/paths): "
            << ears.num_ears() << "\n"
            << "  tree links protected by an ear: "
            << (tree.num_tree_edges() - ears.uncovered_tree_edges) << " / "
            << tree.num_tree_edges() << "\n"
            << "  unprotected (bridge) tree links: "
            << ears.uncovered_tree_edges << "\n";

  // 4. DOT rendering of a small instance.
  if (!dot_path.empty()) {
    const Graph small = gen::geographic_hierarchical(60, /*seed=*/42);
    BaderCongOptions small_opts;
    small_opts.num_threads = 2;
    const auto small_tree = bader_cong_spanning_tree(small, small_opts);
    std::ofstream os(dot_path);
    io::write_dot(small, os, &small_tree.parent, "internet60");
    std::cout << "\nwrote a 60-router DOT rendering to " << dot_path
              << " (render with: dot -Tsvg " << dot_path << ")\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "network_cut_analysis: " << e.what() << "\n";
  return 1;
}
