// In-process tour of the query service API: register graphs, share them
// between concurrent queries, hit the admission-control paths (timeout,
// unknown graph), and read the service counters — everything smpst_serve
// does over stdin, driven directly from C++.
//
//   service_demo [--n=16384] [--workers=2]
#include <cstdio>
#include <vector>

#include "bench_util/cli.hpp"
#include "service/executor.hpp"

using namespace smpst;
using namespace smpst::service;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 14));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  cli.reject_unknown();

  // A registry with a deliberately small budget so the third graph evicts
  // the least recently used one (the torus) but keeps the other two: the
  // random-nlogn graph's CSR is ~n*log2(n) edges ≈ n*120 bytes, the mesh and
  // torus are far smaller.
  GraphRegistry::Options reg_opts;
  reg_opts.memory_budget_bytes = static_cast<std::size_t>(n) * 140;
  GraphRegistry registry(reg_opts);
  registry.generate("torus", "torus-rowmajor", n, 1);
  registry.generate("random", "random-nlogn", n, 2);
  registry.generate("mesh", "2d60", n, 3);

  std::printf("registry after three loads (budget may have evicted the LRU):\n");
  for (const auto& e : registry.list()) {
    std::printf("  %-8s %8u vertices %10llu edges %8.2f MiB\n", e.name.c_str(),
                e.vertices, static_cast<unsigned long long>(e.edges),
                static_cast<double>(e.bytes) / (1 << 20));
  }

  ExecutorOptions exec_opts;
  exec_opts.num_workers = workers;
  QueryExecutor executor(registry, exec_opts);

  // A batch of rooted queries against whatever survived, different
  // algorithms, all validated; batches are admitted atomically.
  std::vector<SpanningTreeRequest> batch;
  for (const auto& e : registry.list()) {
    for (const char* algo : {"bader-cong", "parallel-bfs"}) {
      SpanningTreeRequest req;
      req.graph = e.name;
      req.algorithm = algo;
      req.root = e.vertices / 2;
      req.validate = true;
      batch.push_back(req);
    }
  }
  auto futures = executor.submit_batch(std::move(batch));
  for (auto& fut : futures) {
    const QueryResult r = fut.get();
    std::printf("query %-8s %-13s -> %-9s trees=%u root-ok=%d "
                "queue=%.2fms exec=%.2fms\n",
                r.graph.c_str(), r.algorithm.c_str(), to_string(r.status),
                r.num_trees,
                static_cast<int>(r.ok() && r.validation.ok), r.queue_ms,
                r.exec_ms);
  }

  // Admission-control paths: an unknown graph and an already-expired
  // deadline both come back as typed errors, not exceptions or hangs.
  SpanningTreeRequest missing;
  missing.graph = "no-such-graph";
  std::printf("unknown graph      -> %s\n",
              to_string(executor.submit(std::move(missing)).get().status));

  SpanningTreeRequest expired;
  expired.graph = registry.list().front().name;
  expired.timeout_ms = 0;
  std::printf("0 ms deadline      -> %s\n",
              to_string(executor.submit(std::move(expired)).get().status));

  const ServiceStats s = executor.stats();
  std::printf("\nserved_ok=%llu timed_out=%llu not_found=%llu  "
              "p50=%.2fms p95=%.2fms p99=%.2fms  registry hit rate %.2f\n",
              static_cast<unsigned long long>(s.served_ok),
              static_cast<unsigned long long>(s.timed_out),
              static_cast<unsigned long long>(s.not_found),
              s.latency.percentile(50), s.latency.percentile(95),
              s.latency.percentile(99), s.registry.hit_rate());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "service_demo: %s\n", e.what());
  return 1;
}
