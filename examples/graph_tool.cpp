// smpst graph tool — the library's swiss-army CLI. Subcommands:
//
//   graph_tool --cmd=generate --family=<name> --n=<N> [--seed=S] --out=<path>
//       generate any registry family and save it (.bin/.txt/.dimacs)
//   graph_tool --cmd=stats --in=<path>
//       degree/component/diameter statistics of a stored graph
//   graph_tool --cmd=solve --in=<path> [--algo=bader-cong] [--threads=P]
//              [--out=<forest path>] [--dot=<path>]
//       spanning forest with any registered algorithm, validated; optional
//       parent-array dump and DOT rendering
//   graph_tool --cmd=convert --in=<path> --out=<path>
//       convert between edge-list text/binary and DIMACS by extension
//   graph_tool --cmd=list
//       show registered families and algorithms
#include <fstream>
#include <iostream>

#include "bench_util/cli.hpp"
#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "graph/builder.hpp"
#include "graph/formats.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "sched/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace smpst;

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

EdgeList load_any(const std::string& path) {
  if (has_suffix(path, ".dimacs") || has_suffix(path, ".col") ||
      has_suffix(path, ".gr")) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    return io::read_dimacs(is);
  }
  return io::load_edge_list(path);
}

void save_any(const EdgeList& list, const std::string& path) {
  if (has_suffix(path, ".dimacs") || has_suffix(path, ".col") ||
      has_suffix(path, ".gr")) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open " + path);
    io::write_dimacs(list, os, "written by smpst graph_tool");
    return;
  }
  io::save_edge_list(list, path);
}

int cmd_list() {
  std::cout << "graph families:\n";
  for (const auto& f : gen::families()) {
    std::cout << "  " << f.name << " — " << f.description << "\n";
  }
  std::cout << "\nspanning tree algorithms:\n";
  for (const auto& a : algorithms()) {
    std::cout << "  " << a.name << (a.parallel ? " (parallel)" : " (sequential)")
              << " — " << a.description << "\n";
  }
  return 0;
}

int cmd_generate(const bench::Cli& cli) {
  const auto family = cli.get_string("family", "random-1.5n");
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const auto out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("generate requires --out=");
  const Graph g = gen::make_family(family, n, seed);
  save_any(io::to_edge_list(g), out);
  std::cout << "wrote " << family << ": " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges -> " << out << "\n";
  return 0;
}

int cmd_stats(const bench::Cli& cli) {
  const auto in = cli.get_string("in", "");
  if (in.empty()) throw std::invalid_argument("stats requires --in=");
  const Graph g = GraphBuilder::build(load_any(in));
  const auto s = compute_stats(g);
  std::cout << "vertices:            " << s.num_vertices << "\n"
            << "edges:               " << s.num_edges << "\n"
            << "components:          " << s.num_components << "\n"
            << "largest component:   " << s.largest_component << "\n"
            << "degree min/avg/max:  " << s.min_degree << " / " << s.avg_degree
            << " / " << s.max_degree << "\n"
            << "isolated vertices:   " << s.isolated_vertices << "\n"
            << "degree-2 vertices:   " << s.degree2_vertices << "\n"
            << "diameter lower bnd:  " << s.diameter_lower_bound << "\n";
  return 0;
}

int cmd_solve(const bench::Cli& cli) {
  const auto in = cli.get_string("in", "");
  if (in.empty()) throw std::invalid_argument("solve requires --in=");
  const auto algo = cli.get_string("algo", "bader-cong");
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));
  const auto out = cli.get_string("out", "");
  const auto dot = cli.get_string("dot", "");
  if (!is_algorithm(algo)) {
    throw std::invalid_argument("unknown algorithm: " + algo +
                                " (see --cmd=list)");
  }

  const Graph g = GraphBuilder::build(load_any(in));
  ThreadPool pool(threads);
  WallTimer timer;
  const SpanningForest forest = run_algorithm(algo, g, pool);
  const double ms = timer.elapsed_millis();
  const auto report = validate_spanning_forest(g, forest);
  if (!report.ok) {
    std::cerr << "INVALID forest: " << report.error << "\n";
    return 1;
  }
  std::cout << algo << " on " << g.num_vertices() << " vertices: "
            << forest.num_trees() << " tree(s), " << forest.num_tree_edges()
            << " edges, " << ms << " ms, valid\n";

  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open " + out);
    // One line per vertex: "v parent(v)".
    for (VertexId v = 0; v < forest.num_vertices(); ++v) {
      os << v << ' ' << forest.parent[v] << '\n';
    }
    std::cout << "parent array -> " << out << "\n";
  }
  if (!dot.empty()) {
    std::ofstream os(dot);
    if (!os) throw std::runtime_error("cannot open " + dot);
    io::write_dot(g, os, &forest.parent);
    std::cout << "DOT rendering -> " << dot << "\n";
  }
  return 0;
}

int cmd_convert(const bench::Cli& cli) {
  const auto in = cli.get_string("in", "");
  const auto out = cli.get_string("out", "");
  if (in.empty() || out.empty()) {
    throw std::invalid_argument("convert requires --in= and --out=");
  }
  const EdgeList list = load_any(in);
  save_any(list, out);
  std::cout << "converted " << in << " -> " << out << " ("
            << list.num_vertices() << " vertices, " << list.num_edges()
            << " edges)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  const auto cmd = cli.get_string("cmd", "list");
  if (cmd == "list") return cmd_list();
  if (cmd == "generate") return cmd_generate(cli);
  if (cmd == "stats") return cmd_stats(cli);
  if (cmd == "solve") return cmd_solve(cli);
  if (cmd == "convert") return cmd_convert(cli);
  std::cerr << "unknown --cmd=" << cmd
            << " (expected list|generate|stats|solve|convert)\n";
  return 2;
} catch (const std::exception& e) {
  std::cerr << "graph_tool: " << e.what() << "\n";
  return 1;
}
