// ext_net_load — open-loop zipfian load generator for the TCP front end.
//
// Drives `smpst_serve --tcp` with an offered load that does NOT slow down
// when the server does (open loop: arrivals are a Poisson process per
// connection, so queueing at the server cannot mask overload the way a
// closed-loop driver's back-to-back requests do). Graph popularity is
// zipfian (bench_util/zipf.hpp) over a set of pre-registered graphs, and the
// algorithm per request is drawn uniformly from --algos, approximating a
// mixed production workload against a shared registry.
//
// A run sweeps --rates (total offered qps, split evenly across
// --connections), each for --duration-ms, over the same warm connections,
// and reports per step: achieved send rate, goodput (ok responses/s), shed
// rate (typed `overloaded` responses), and p50/p99/p999 latency of
// successful responses — exact percentiles over all recorded samples, not a
// histogram sketch. Push the rates past capacity and the expected shape is:
// goodput plateaus at capacity, shed rate absorbs the excess, and the p99 of
// ACCEPTED requests stays bounded (admission control rejects instead of
// queueing without bound).
//
//   build/bench/ext_net_load --port=$(cat /tmp/port)
//       --connections=8 --rates=200,400,800,1600 --duration-ms=2000
//
// Robustness probes:
//   --sigterm-pid=P --sigterm-after-ms=T   send SIGTERM to the server T ms
//       into the sweep, stop offering load shortly after, and verify the
//       drain contract: every request written before the server closed got
//       exactly one response (accepted ones with results, post-drain ones
//       with `shutting-down`), ending in a clean EOF. Violations exit 4.
//   --chaos   tolerate mid-run disconnects (failpoint storms at
//       net.conn.read / net.conn.write abort connections by design) and
//       reconnect to keep offering load; count invariants are waived, the
//       server staying up is the assertion (checked by the caller).
//
// --json=PATH writes a machine-readable summary; bench/perf_suite can embed
// it as the optional "serving" section (docs/BENCHMARKING.md).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/zipf.hpp"
#include "service/codec.hpp"
#include "service/wire.hpp"
#include "support/prng.hpp"
#include "support/thread_annotations.hpp"

namespace {

using namespace smpst;
using namespace smpst::bench;
using Clock = std::chrono::steady_clock;

constexpr int kControlStep = -1;
constexpr int kExitContractViolated = 4;

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::vector<std::int64_t> rates;  // total offered qps per step
  std::int64_t duration_ms = 2000;
  std::size_t graphs = 4;
  std::int64_t graph_n = 1 << 14;
  std::string family = "random-nlogn";
  double theta = 0.99;
  std::vector<std::string> algos;
  std::int64_t timeout_ms = -1;
  std::uint64_t seed = 0x5eed;
  std::string json_path;
  pid_t sigterm_pid = 0;
  std::int64_t sigterm_after_ms = 0;
  bool chaos = false;
};

struct StepStats {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> drain_shed{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> errors{0};

  Mutex mutex;
  std::vector<double> ok_latency_ms SMPST_GUARDED_BY(mutex);

  void record_latency(double ms) {
    LockGuard<Mutex> lk(mutex);
    ok_latency_ms.push_back(ms);
  }
};

struct Totals {
  std::atomic<std::uint64_t> sent{0};       // request lines fully written
  std::atomic<std::uint64_t> received{0};   // response lines matched
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> conn_rejected{0};
  std::atomic<std::uint64_t> unclean_eof{0};
};

struct Conn {
  int fd = -1;
  std::atomic<bool> dead{false};

  Mutex mutex;
  std::deque<std::pair<Clock::time_point, int>> outstanding
      SMPST_GUARDED_BY(mutex);

  bool connect_to(const std::string& host, std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = 2;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  /// Writes the whole line; returns false on any error (connection dead).
  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }
};

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One request line against a zipf-popular graph with a uniform-random
/// algorithm from the mix.
std::string compose_request(const Config& cfg, const ZipfianGenerator& zipf,
                            Xoshiro256& rng) {
  std::string line = "query graph=lg";
  line += std::to_string(zipf.next(rng));
  line += " algo=";
  line += cfg.algos[rng.next_bounded(cfg.algos.size())];
  if (cfg.timeout_ms >= 0) {
    line += " timeout=";
    line += std::to_string(cfg.timeout_ms);
  }
  line += "\n";
  return line;
}

/// Registers the lg0..lgN graphs over a throwaway control connection.
bool setup_graphs(const Config& cfg) {
  Conn c;
  if (!c.connect_to(cfg.host, cfg.port)) {
    std::cerr << "ext_net_load: cannot connect to " << cfg.host << ":"
              << cfg.port << "\n";
    return false;
  }
  std::string req;
  for (std::size_t i = 0; i < cfg.graphs; ++i) {
    req += "gen name=lg" + std::to_string(i) + " family=" + cfg.family +
           " n=" + std::to_string(cfg.graph_n) +
           " seed=" + std::to_string(cfg.seed + i) + "\n";
  }
  req += "quit\n";
  if (!c.send_all(req)) {
    ::close(c.fd);
    return false;
  }
  service::LineCodec codec;
  char buf[16 * 1024];
  std::size_t ok_lines = 0;
  bool eof = false;
  while (!eof) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      eof = true;
    } else {
      codec.feed(buf, static_cast<std::size_t>(n));
    }
    std::string line;
    while (codec.next(line) == service::LineCodec::Event::kLine) {
      try {
        service::Fields f = service::parse_line(line);
        if (f.count("bye") != 0) continue;
        if (f["ok"] == "1") {
          ++ok_lines;
        } else {
          std::cerr << "ext_net_load: setup failed: " << line << "\n";
        }
      } catch (const std::exception&) {
        std::cerr << "ext_net_load: unparseable setup response: " << line
                  << "\n";
      }
    }
  }
  ::close(c.fd);
  return ok_lines == cfg.graphs;
}

class LoadDriver {
 public:
  LoadDriver(const Config& cfg) : cfg_(cfg), steps_(cfg.rates.size()) {
    for (auto& s : steps_) s = std::make_unique<StepStats>();
  }

  int run() {
    t0_ = Clock::now();
    run_end_ = t0_ + std::chrono::milliseconds(
                         cfg_.duration_ms *
                         static_cast<std::int64_t>(cfg_.rates.size()));
    if (cfg_.sigterm_pid != 0) {
      stop_sending_at_ = t0_ + std::chrono::milliseconds(
                                   cfg_.sigterm_after_ms + 500);
    } else {
      stop_sending_at_ = run_end_;
    }

    std::vector<std::thread> slots;
    slots.reserve(cfg_.connections);
    for (std::size_t i = 0; i < cfg_.connections; ++i) {
      slots.emplace_back([this, i] { run_slot(i); });
    }
    if (cfg_.sigterm_pid != 0) {
      std::this_thread::sleep_until(
          t0_ + std::chrono::milliseconds(cfg_.sigterm_after_ms));
      std::cout << "# sending SIGTERM to pid " << cfg_.sigterm_pid << "\n";
      (void)::kill(cfg_.sigterm_pid, SIGTERM);
    }
    for (auto& t : slots) t.join();
    return report();
  }

 private:
  /// Which rate step a moment belongs to.
  int step_at(Clock::time_point t) const {
    const auto ms = static_cast<std::int64_t>(ms_between(t0_, t));
    const auto idx = ms / cfg_.duration_ms;
    if (idx < 0) return 0;
    if (idx >= static_cast<std::int64_t>(steps_.size())) {
      return static_cast<int>(steps_.size()) - 1;
    }
    return static_cast<int>(idx);
  }

  void run_slot(std::size_t slot) {
    Xoshiro256 rng(derive_stream_seed(cfg_.seed, slot));
    const ZipfianGenerator zipf(cfg_.graphs, cfg_.theta);
    while (Clock::now() < stop_sending_at_) {
      Conn conn;
      if (!conn.connect_to(cfg_.host, cfg_.port)) {
        if (!cfg_.chaos) {
          std::cerr << "ext_net_load: slot " << slot << " cannot connect\n";
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      std::thread sender([&] { run_sender(conn, zipf, rng); });
      run_receiver(conn);
      conn.dead.store(true, std::memory_order_release);
      sender.join();
      ::close(conn.fd);
      std::size_t orphans;
      {
        LockGuard<Mutex> lk(conn.mutex);
        orphans = conn.outstanding.size();
      }
      if (orphans != 0) {
        totals_.unclean_eof.fetch_add(1, std::memory_order_relaxed);
      }
      if (!cfg_.chaos) return;  // one connection per slot unless chaotic
      totals_.disconnects.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void run_sender(Conn& conn, const ZipfianGenerator& zipf, Xoshiro256& rng) {
    const double per_conn_rate =
        static_cast<double>(cfg_.rates.empty() ? 0 : cfg_.rates[0]) /
        static_cast<double>(cfg_.connections);
    auto next_send = Clock::now();
    while (!conn.dead.load(std::memory_order_acquire)) {
      const auto now = Clock::now();
      if (now >= stop_sending_at_) break;
      const int step = step_at(now);
      const double rate = static_cast<double>(cfg_.rates[
                              static_cast<std::size_t>(step)]) /
                          static_cast<double>(cfg_.connections);
      (void)per_conn_rate;
      // Poisson arrivals: exponential inter-arrival at the step's rate.
      const double gap_s =
          -std::log(1.0 - rng.next_double()) / (rate > 0 ? rate : 1.0);
      next_send += std::chrono::microseconds(
          static_cast<std::int64_t>(gap_s * 1e6));
      if (next_send > now) std::this_thread::sleep_until(next_send);
      if (Clock::now() >= stop_sending_at_ ||
          conn.dead.load(std::memory_order_acquire)) {
        break;
      }
      const std::string line = compose_request(cfg_, zipf, rng);
      {
        LockGuard<Mutex> lk(conn.mutex);
        conn.outstanding.emplace_back(Clock::now(), step);
      }
      if (!conn.send_all(line)) {
        LockGuard<Mutex> lk(conn.mutex);
        conn.outstanding.pop_back();  // never reached the server
        return;
      }
      steps_[static_cast<std::size_t>(step)]->sent.fetch_add(
          1, std::memory_order_relaxed);
      totals_.sent.fetch_add(1, std::memory_order_relaxed);
    }
    if (cfg_.sigterm_pid == 0 && !conn.dead.load(std::memory_order_acquire)) {
      // Pipelined quit: the session answers every outstanding query first,
      // then bye, then closes — the receiver's EOF is the drain barrier.
      {
        LockGuard<Mutex> lk(conn.mutex);
        conn.outstanding.emplace_back(Clock::now(), kControlStep);
      }
      if (conn.send_all("quit\n")) {
        totals_.sent.fetch_add(1, std::memory_order_relaxed);
      } else {
        LockGuard<Mutex> lk(conn.mutex);
        conn.outstanding.pop_back();
      }
    }
  }

  void run_receiver(Conn& conn) {
    service::LineCodec codec;
    char buf[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_RCVTIMEO tick: bail once nothing more can arrive.
        if (conn.dead.load(std::memory_order_acquire)) return;
        if (Clock::now() >
            stop_sending_at_ + std::chrono::milliseconds(20'000)) {
          std::cerr << "ext_net_load: receiver hung past drain window\n";
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // EOF or fatal error
      codec.feed(buf, static_cast<std::size_t>(n));
      std::string line;
      while (codec.next(line) == service::LineCodec::Event::kLine) {
        classify(conn, line);
      }
    }
  }

  void classify(Conn& conn, const std::string& line) {
    Clock::time_point sent_at{};
    int step = kControlStep;
    bool matched = false;
    {
      LockGuard<Mutex> lk(conn.mutex);
      if (!conn.outstanding.empty()) {
        std::tie(sent_at, step) = conn.outstanding.front();
        conn.outstanding.pop_front();
        matched = true;
      }
    }
    service::Fields f;
    try {
      f = service::parse_line(line);
    } catch (const std::exception&) {
      if (matched && step >= 0) {
        steps_[static_cast<std::size_t>(step)]->errors.fetch_add(
            1, std::memory_order_relaxed);
      }
      totals_.received.fetch_add(matched ? 1 : 0, std::memory_order_relaxed);
      return;
    }
    if (!matched) {
      // A response with no request can only be the admission-control
      // rejection the server sends on accept past the connection cap.
      if (f.count("code") != 0 && f["code"] == "overloaded") {
        totals_.conn_rejected.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    totals_.received.fetch_add(1, std::memory_order_relaxed);
    if (step < 0) return;  // control (quit/bye)
    StepStats& s = *steps_[static_cast<std::size_t>(step)];
    const auto code = f.find("code");
    if (code != f.end()) {
      if (code->second == "overloaded") {
        s.shed.fetch_add(1, std::memory_order_relaxed);
      } else if (code->second == "shutting-down") {
        s.drain_shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        s.errors.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    const auto status = f.find("status");
    if (status == f.end()) {
      s.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (status->second == "ok") {
      s.ok.fetch_add(1, std::memory_order_relaxed);
      s.record_latency(ms_between(sent_at, Clock::now()));
    } else if (status->second == "timed-out") {
      s.timed_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      s.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  static double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx < sorted.size() ? idx : sorted.size() - 1];
  }

  int report() {
    const double step_s = static_cast<double>(cfg_.duration_ms) / 1000.0;
    std::ostringstream json;
    json << "{\"connections\":" << cfg_.connections
         << ",\"graphs\":" << cfg_.graphs << ",\"theta\":" << cfg_.theta
         << ",\"duration_ms\":" << cfg_.duration_ms << ",\"steps\":[";
    std::cout << "# offered_qps sent goodput_qps ok shed drain_shed "
                 "timed_out errors p50_ms p99_ms p999_ms\n";
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      StepStats& s = *steps_[i];
      std::vector<double> lat;
      {
        LockGuard<Mutex> lk(s.mutex);
        lat = s.ok_latency_ms;
      }
      std::sort(lat.begin(), lat.end());
      const double p50 = percentile(lat, 50), p99 = percentile(lat, 99),
                   p999 = percentile(lat, 99.9);
      const double goodput =
          static_cast<double>(s.ok.load()) / (step_s > 0 ? step_s : 1.0);
      std::cout << cfg_.rates[i] << " " << s.sent.load() << " " << goodput
                << " " << s.ok.load() << " " << s.shed.load() << " "
                << s.drain_shed.load() << " " << s.timed_out.load() << " "
                << s.errors.load() << " " << p50 << " " << p99 << " " << p999
                << "\n";
      if (i != 0) json << ",";
      json << "{\"offered_qps\":" << cfg_.rates[i]
           << ",\"sent\":" << s.sent.load() << ",\"ok\":" << s.ok.load()
           << ",\"shed\":" << s.shed.load()
           << ",\"drain_shed\":" << s.drain_shed.load()
           << ",\"timed_out\":" << s.timed_out.load()
           << ",\"errors\":" << s.errors.load()
           << ",\"goodput_qps\":" << goodput << ",\"p50_ms\":" << p50
           << ",\"p99_ms\":" << p99 << ",\"p999_ms\":" << p999 << "}";
    }
    json << "]";

    const std::uint64_t sent = totals_.sent.load();
    const std::uint64_t received = totals_.received.load();
    const bool counts_match = sent == received;
    std::cout << "# totals: sent=" << sent << " received=" << received
              << " disconnects=" << totals_.disconnects.load()
              << " conn_rejected=" << totals_.conn_rejected.load()
              << " unclean_eof=" << totals_.unclean_eof.load() << "\n";
    json << ",\"totals\":{\"sent\":" << sent << ",\"received\":" << received
         << ",\"disconnects\":" << totals_.disconnects.load()
         << ",\"conn_rejected\":" << totals_.conn_rejected.load()
         << ",\"unclean_eof\":" << totals_.unclean_eof.load() << "}";
    if (cfg_.sigterm_pid != 0) {
      json << ",\"sigterm\":{\"after_ms\":" << cfg_.sigterm_after_ms
           << ",\"one_response_per_request\":"
           << (counts_match ? "true" : "false") << "}";
    }
    json << "}";

    if (!cfg_.json_path.empty()) {
      std::ofstream out(cfg_.json_path, std::ios::trunc);
      out << json.str() << "\n";
    }
    if (!cfg_.chaos && !counts_match) {
      std::cerr << "ext_net_load: response contract violated: sent=" << sent
                << " received=" << received << "\n";
      return kExitContractViolated;
    }
    return 0;
  }

  const Config& cfg_;
  std::vector<std::unique_ptr<StepStats>> steps_;
  Totals totals_;
  Clock::time_point t0_{};
  Clock::time_point run_end_{};
  Clock::time_point stop_sending_at_{};
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  Config cfg;
  cfg.host = cli.get_string("host", cfg.host);
  const std::string port_file = cli.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    std::int64_t p = 0;
    in >> p;
    cfg.port = static_cast<std::uint16_t>(p);
  }
  cfg.port = static_cast<std::uint16_t>(
      cli.get_int("port", static_cast<std::int64_t>(cfg.port)));
  cfg.connections =
      static_cast<std::size_t>(cli.get_int("connections", 8));
  cfg.rates = cli.get_int_list("rates", {200, 400, 800});
  cfg.duration_ms = cli.get_int("duration-ms", cfg.duration_ms);
  cfg.graphs = static_cast<std::size_t>(cli.get_int("graphs", 4));
  cfg.graph_n = cli.get_int("graph-n", cfg.graph_n);
  cfg.family = cli.get_string("family", cfg.family);
  cfg.theta = cli.get_double("theta", cfg.theta);
  cfg.algos = split_csv(cli.get_string("algos", "bader-cong,bfs,sv"));
  cfg.timeout_ms = cli.get_int("timeout-ms", cfg.timeout_ms);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  cfg.json_path = cli.get_string("json", "");
  cfg.sigterm_pid = static_cast<pid_t>(cli.get_int("sigterm-pid", 0));
  cfg.sigterm_after_ms = cli.get_int("sigterm-after-ms", 1000);
  cfg.chaos = cli.get_bool("chaos", false);
  cli.reject_unknown();
  if (cfg.port == 0) {
    std::cerr << "ext_net_load: --port or --port-file is required\n";
    return 1;
  }
  if (cfg.rates.empty() || cfg.connections == 0 || cfg.graphs == 0 ||
      cfg.algos.empty()) {
    std::cerr << "ext_net_load: need at least one rate, connection, graph "
                 "and algorithm\n";
    return 1;
  }
  (void)std::signal(SIGPIPE, SIG_IGN);

  if (!setup_graphs(cfg)) return 1;
  LoadDriver driver(cfg);
  return driver.run();
} catch (const std::exception& e) {
  std::cerr << "ext_net_load: " << e.what() << "\n";
  return 1;
}
