// Google-benchmark micro-benchmarks of the runtime substrate: PRNG
// throughput, spinlock round trips, queue operations (SplitQueue vs
// Chase-Lev), barrier episodes, and CSR traversal — the constants behind the
// Helman-JáJá machine parameters.
#include <benchmark/benchmark.h>

#include "core/bfs.hpp"
#include "sched/parallel_for.hpp"
#include "sched/prefix_sum.hpp"
#include "sched/thread_pool.hpp"
#include "gen/random_graph.hpp"
#include "sched/barrier.hpp"
#include "sched/spinlock.hpp"
#include "sched/work_queue.hpp"
#include "support/prng.hpp"

namespace {

using namespace smpst;

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroBounded(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_bounded(12345));
  }
}
BENCHMARK(BM_XoshiroBounded);

void BM_SpinLockUncontended(benchmark::State& state) {
  SpinLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_SplitQueuePushPop(benchmark::State& state) {
  SplitQueue<VertexId> q;
  VertexId v = 0;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop(v));
  }
}
BENCHMARK(BM_SplitQueuePushPop);

void BM_ChaseLevPushPop(benchmark::State& state) {
  ChaseLevDeque<VertexId> q;
  VertexId v = 0;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop(v));
  }
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_SplitQueueStealHalf(benchmark::State& state) {
  SplitQueue<VertexId> q;
  std::vector<VertexId> loot;
  for (auto _ : state) {
    state.PauseTiming();
    q.clear();
    for (VertexId i = 0; i < 64; ++i) q.push(i);
    loot.clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(q.steal(loot, 32));
  }
}
BENCHMARK(BM_SplitQueueStealHalf);

void BM_BarrierSingleParty(benchmark::State& state) {
  SpinBarrier barrier(1);
  for (auto _ : state) {
    barrier.arrive_and_wait();
  }
}
BENCHMARK(BM_BarrierSingleParty);

void BM_ParallelForStatic(benchmark::State& state) {
  static ThreadPool pool(4);
  std::vector<std::uint64_t> data(1 << 16);
  for (auto _ : state) {
    parallel_for_static(pool, 0, data.size(),
                        [&](std::size_t i) { data[i] = i * 3; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelForStatic);

void BM_PrefixSum(benchmark::State& state) {
  static ThreadPool pool(4);
  std::vector<std::uint64_t> data(1 << 16, 1);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(data.begin(), data.end(), 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(parallel_exclusive_scan(pool, data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_PrefixSum);

void BM_CsrBfs(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g =
      gen::random_graph(n, static_cast<EdgeId>(1.5 * n), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_spanning_tree(g));
  }
  state.SetItemsProcessed(state.iterations() * (n + 2 * g.num_edges()));
}
BENCHMARK(BM_CsrBfs)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
