// Ablation A6 — software barrier implementations. The B term of the
// Helman-JáJá model is a first-class cost in the paper's analysis (the new
// algorithm's selling point is B = 2 vs SV's 4 log n), and the paper's
// implementation used the software barriers of SIMPLE [5]. This bench
// measures barrier latency per episode for the three implementations in
// sched/barrier.hpp across party counts — the measured numbers are what the
// cost model's `barrier_ns` parameter abstracts.
//
// Note: on a single-core host every episode costs at least p context
// switches, so absolute numbers here are upper bounds; the *relative*
// ordering (dissemination's O(log p) signalling vs the centralized
// counter's O(p) contention vs the blocking barrier's syscalls) survives.
//
// Usage: ablate_barrier [--parties=2,4,8] [--episodes=2000] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "sched/barrier.hpp"
#include "sched/thread_pool.hpp"
#include "support/timer.hpp"

using namespace smpst;

namespace {

template <typename Barrier, typename Arrive>
double episodes_per_second(std::size_t parties, std::size_t episodes,
                           Arrive&& arrive) {
  Barrier barrier(parties);
  ThreadPool pool(parties);
  WallTimer timer;
  pool.run([&](std::size_t tid) {
    for (std::size_t e = 0; e < episodes; ++e) arrive(barrier, tid);
  });
  return timer.elapsed_seconds() / static_cast<double>(episodes);
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto parties = cli.get_int_list("parties", {2, 4, 8});
  const auto episodes =
      static_cast<std::size_t>(cli.get_int("episodes", 2000));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== A6: software barrier latency per episode (" << episodes
            << " episodes; oversubscribed single-core host => upper bounds) "
               "==\n";

  bench::Table table({"parties", "spin_centralized", "dissemination",
                      "blocking_condvar"});
  for (const std::int64_t pi : parties) {
    const auto p = static_cast<std::size_t>(pi);
    const double spin = episodes_per_second<SpinBarrier>(
        p, episodes, [](SpinBarrier& b, std::size_t) { b.arrive_and_wait(); });
    const double diss = episodes_per_second<DisseminationBarrier>(
        p, episodes,
        [](DisseminationBarrier& b, std::size_t tid) {
          b.arrive_and_wait(tid);
        });
    const double block = episodes_per_second<BlockingBarrier>(
        p, episodes,
        [](BlockingBarrier& b, std::size_t) { b.arrive_and_wait(); });
    table.add_row({std::to_string(p), bench::fmt_seconds(spin),
                   bench::fmt_seconds(diss), bench::fmt_seconds(block)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ablate_barrier: " << e.what() << "\n";
  return 1;
}
