// Fig. 4 panels 7-8 (experiments E8, E9): geographic Internet-topology
// graphs after Calvert-Doar-Zegura, in flat (Waxman) and hierarchical
// (backbone / domain / subdomain) modes.
//
// Usage: fig4_geographic [--n=65536] [--threads=1,2,4,8] [--reps=3]
//        [--seed=...] [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "geo-flat", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 7: geographic graph, flat mode ==\n";
  cfg.family = "geo-flat";
  smpst::bench::run_panel(cfg, std::cout);

  std::cout << "\n== Fig. 4 panel 8: geographic graph, hierarchical mode ==\n";
  cfg.family = "geo-hier";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_geographic: " << e.what() << "\n";
  return 1;
}
