// Fig. 4 panels 4-5 (experiments E5, E6): the irregular probabilistic meshes
// 2D60 (60% of 2D lattice edges) and 3D40 (40% of 3D lattice edges) used
// throughout the connected-components literature the paper compares with.
//
// Usage: fig4_mesh [--n=65536] [--threads=1,2,4,8] [--reps=3] [--seed=...]
//        [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "2d60", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 4: 2D60 mesh ==\n";
  cfg.family = "2d60";
  smpst::bench::run_panel(cfg, std::cout);

  std::cout << "\n== Fig. 4 panel 5: 3D40 mesh ==\n";
  cfg.family = "3d40";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_mesh: " << e.what() << "\n";
  return 1;
}
