// Fig. 4 panel 6 (experiment E7): the geometric AD3 instance — n points in
// the unit square, each joined to its 3 nearest neighbours (Greiner / Hsu et
// al. / Krishnamurthy et al. / Goddard et al.'s "tertiary" graph).
//
// Usage: fig4_geometric [--n=65536] [--threads=1,2,4,8] [--reps=3]
//        [--seed=...] [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "ad3", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 6: geometric k-NN graph AD3 (k = 3) ==\n";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_geometric: " << e.what() << "\n";
  return 1;
}
