// Chaos harness for the query service (robustness extension).
//
// Drives a closed-loop query mix against a QueryExecutor while randomly
// arming failpoints across the scheduler, the service, and the traversal hot
// paths, then asserts the service's robustness contract:
//
//   1. zero crashes — the process survives every injected fault;
//   2. every submitted query resolves to a *typed* outcome (a known
//      QueryStatus, never a broken promise or an escaped exception);
//   3. the service counters stay consistent:
//        submitted == accepted + rejected
//        accepted  == served_ok + timed_out + not_found + failed + invalid.
//
// Each round picks a random subset of sites and arms each with a random
// probability in [--fail-lo, --fail-hi] percent (default 5..20). Sites are
// classified by the strongest action that is safe there: a site reached by a
// worker that other threads barrier-wait on must never throw (the group
// would deadlock), so sched.thread_pool.worker is delay-only and
// sched.termination.sleep is wake-only. See docs/ROBUSTNESS.md.
//
//   ext_chaos --queries=1000 --seed=1 --fail-lo=5 --fail-hi=20
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util/cli.hpp"
#include "service/executor.hpp"
#include "support/failpoint.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

struct ChaosSite {
  const char* name;
  const char* action;  // strongest action safe at this site
};

// The site table. Sites whose faults a barrier-synchronized peer would wait
// out must not throw; everything else may.
constexpr ChaosSite kSites[] = {
    {"service.executor.execute", "throw"},
    {"service.executor.dequeue", "throw"},
    {"service.executor.respond", "throw"},
    {"service.bounded_queue.push", "throw"},
    {"service.bounded_queue.pop", "throw"},
    {"service.registry.get", "throw"},
    {"core.bader_cong.expand", "throw"},
    {"core.parallel_bfs.level", "throw"},
    {"sched.work_queue.pop", "throw"},
    {"sched.work_queue.steal", "throw"},
    {"sched.thread_pool.region", "throw"},
    // A pool worker that throws instead of entering a barrier-synchronized
    // job (SV/HCS) would deadlock its group: delay/wake only.
    {"sched.thread_pool.worker", "delay(1)"},
    {"sched.termination.sleep", "wake"},
};

const char* const kAlgos[] = {"bader-cong", "parallel-bfs", "sv", "hcs",
                              "bfs"};

bool known_status(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk:
    case QueryStatus::kRejected:
    case QueryStatus::kTimedOut:
    case QueryStatus::kNotFound:
    case QueryStatus::kInvalidArgument:
    case QueryStatus::kError:
    case QueryStatus::kFailed:
    case QueryStatus::kInvalid:
      return true;
  }
  return false;
}

/// Arms a random subset of the site table; returns a printable summary.
std::string arm_round(Xoshiro256& rng, std::uint64_t lo_pct,
                      std::uint64_t hi_pct) {
  fail::disable_all();
  std::string summary;
  for (const ChaosSite& s : kSites) {
    if (rng.next_bounded(100) < 60) continue;  // ~40% of sites per round
    const std::uint64_t pct = lo_pct + rng.next_bounded(hi_pct - lo_pct + 1);
    const std::string spec = std::to_string(pct) + "%" + s.action;
    fail::enable(s.name, spec);
    if (!summary.empty()) summary += " ";
    summary += std::string(s.name) + "=" + spec;
  }
  return summary.empty() ? "(none)" : summary;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto queries = static_cast<std::size_t>(cli.get_int("queries", 1000));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 8));
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const auto lo = static_cast<std::uint64_t>(cli.get_int("fail-lo", 5));
  const auto hi = static_cast<std::uint64_t>(cli.get_int("fail-hi", 20));
  const auto family = cli.get_string("family", "random-nlogn");
  cli.reject_unknown();
  if (lo > hi || hi > 100) {
    std::fprintf(stderr, "ext_chaos: need 0 <= fail-lo <= fail-hi <= 100\n");
    return 1;
  }

  GraphRegistry registry;
  registry.generate("g", family, n, seed);

  ExecutorOptions opts;
  opts.num_workers = clients;
  opts.threads_per_query = 2;
  opts.queue_capacity = 4 * clients;
  opts.paranoid_validate = true;  // every kOk is a checked spanning forest
  QueryExecutor executor(registry, opts);

  std::printf("chaos: %zu queries, %zu clients, %zu rounds, faults %llu-%llu%%"
              ", graph %s n=%u\n\n",
              queries, clients, rounds,
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi), family.c_str(), n);

  std::atomic<std::uint64_t> untyped{0};
  std::atomic<std::uint64_t> escaped{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> by_status[16] = {};

  // Cumulative per-site hit/fire counts: disable_all() between rounds resets
  // the live counters, so fold them into this tally first.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> tally;
  const auto accumulate = [&tally] {
    for (const auto& info : fail::list()) {
      auto& [h, f] = tally[info.name];
      h += info.hits;
      f += info.fires;
    }
  };

  Xoshiro256 round_rng(seed);
  WallTimer wall;
  const std::size_t per_round = (queries + rounds - 1) / rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    accumulate();
    const std::string armed = arm_round(round_rng, lo, hi);
    std::printf("round %zu: %s\n", round, armed.c_str());

    std::vector<std::thread> drivers;
    drivers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      drivers.emplace_back([&, c, round] {
        Xoshiro256 rng(seed ^ (round * 1315423911u) ^ (c * 2654435761u));
        const std::size_t mine =
            per_round / clients + (c < per_round % clients ? 1 : 0);
        for (std::size_t i = 0; i < mine; ++i) {
          SpanningTreeRequest req;
          req.graph = rng.next_bounded(50) == 0 ? "missing" : "g";
          req.algorithm =
              kAlgos[rng.next_bounded(std::size(kAlgos))];
          req.seed = rng.next();
          // Mix of no deadline, generous, and tight deadlines: the tight
          // ones exercise cancellation and the watchdog under faults.
          const auto roll = rng.next_bounded(4);
          req.timeout_ms =
              roll == 0 ? -1 : (roll == 1 ? 2000 : static_cast<std::int64_t>(
                                                       1 + rng.next_bounded(20)));
          try {
            const QueryResult r = executor.submit(std::move(req)).get();
            if (!known_status(r.status)) {
              untyped.fetch_add(1);
            } else {
              by_status[static_cast<std::size_t>(r.status)].fetch_add(1);
            }
            done.fetch_add(1);
          } catch (...) {
            // submit().get() must never throw: a broken promise or an
            // exception smuggled through the future is a contract violation.
            escaped.fetch_add(1);
          }
        }
      });
    }
    for (auto& d : drivers) d.join();
  }
  accumulate();
  fail::disable_all();
  const double wall_s = wall.elapsed_seconds();

  const ServiceStats s = executor.stats();
  executor.shutdown();

  std::printf("\n%llu queries in %.2fs (%.1f qps under chaos)\n",
              static_cast<unsigned long long>(done.load()), wall_s,
              static_cast<double>(done.load()) / wall_s);
  std::printf("outcomes: ok=%llu rejected=%llu timed_out=%llu not_found=%llu"
              " failed=%llu invalid=%llu\n",
              static_cast<unsigned long long>(s.served_ok),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.timed_out),
              static_cast<unsigned long long>(s.not_found),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.invalid));
  std::printf("recovery: retries=%llu degraded=%llu watchdog_cancels=%llu\n",
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.degraded),
              static_cast<unsigned long long>(s.watchdog_cancels));
  for (const auto& [name, counts] : tally) {
    std::printf("site %-32s hits=%llu fires=%llu\n", name.c_str(),
                static_cast<unsigned long long>(counts.first),
                static_cast<unsigned long long>(counts.second));
  }

  bool ok = true;
  if (escaped.load() != 0 || untyped.load() != 0) {
    std::printf("FAIL: %llu futures threw, %llu untyped statuses\n",
                static_cast<unsigned long long>(escaped.load()),
                static_cast<unsigned long long>(untyped.load()));
    ok = false;
  }
  if (s.submitted != s.accepted + s.rejected) {
    std::printf("FAIL: submitted (%llu) != accepted (%llu) + rejected (%llu)\n",
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.rejected));
    ok = false;
  }
  const std::uint64_t resolved =
      s.served_ok + s.timed_out + s.not_found + s.failed + s.invalid;
  if (s.accepted != resolved) {
    std::printf("FAIL: accepted (%llu) != resolved outcomes (%llu)\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(resolved));
    ok = false;
  }
  if (done.load() != queries && done.load() + escaped.load() != 0) {
    // per_round rounding can overshoot by < rounds; undershoot means lost
    // queries.
    if (done.load() < queries) {
      std::printf("FAIL: only %llu of %zu queries resolved\n",
                  static_cast<unsigned long long>(done.load()), queries);
      ok = false;
    }
  }
  std::printf("\nchaos: %s\n", ok ? "PASS — zero crashes, all outcomes typed,"
                                    " stats consistent"
                                  : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ext_chaos: %s\n", e.what());
  return 1;
}
